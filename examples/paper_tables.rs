//! Regenerates the paper's Tables I and II (catalog statistics) and
//! prints them next to the published values.
//!
//! Run with: `cargo run --example paper_tables`

use slackvm::experiments::{table1, table2, table3};
use slackvm::report::TextTable;

fn main() {
    println!("Table I — average vCPU & vRAM requests per VM\n");
    let mut t1 = TextTable::new([
        "Dataset",
        "mean vCPU (ours)",
        "mean vCPU (paper)",
        "mean vRAM GiB (ours)",
        "mean vRAM GB (paper)",
    ]);
    for row in table1() {
        t1.row([
            row.provider.clone(),
            format!("{:.2}", row.mean_vcpus),
            format!("{:.2}", row.paper_vcpus),
            format!("{:.2}", row.mean_mem_gib),
            format!("{:.2}", row.paper_mem_gb),
        ]);
    }
    println!("{}", t1.render());

    println!("Table II — M/C ratio of oversubscribed VMs (GiB per physical core)\n");
    let mut t2 = TextTable::new([
        "Dataset",
        "1:1 (ours/paper)",
        "2:1 (ours/paper)",
        "3:1 (ours/paper)",
    ]);
    for row in table2() {
        t2.row([
            row.provider.clone(),
            format!("{:.1} / {:.1}", row.ratios[0], row.paper[0]),
            format!("{:.1} / {:.1}", row.ratios[1], row.paper[1]),
            format!("{:.1} / {:.1}", row.ratios[2], row.paper[2]),
        ]);
    }
    println!("{}", t2.render());

    println!("Table III — modeled IaaS worker (the paper's testbed)\n");
    println!("{}", table3());
}
