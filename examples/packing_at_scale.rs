//! The scale experiments (paper §VII-B): Fig. 3 (unallocated resources)
//! and Fig. 4 (PM savings grid) for both provider catalogs.
//!
//! Run with: `cargo run --release --example packing_at_scale [population]`

use slackvm::experiments::{run_fig3, run_fig4, PackingConfig};
use slackvm::prelude::*;
use slackvm::report::{pct, TextTable};

fn main() {
    let population: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let config = PackingConfig {
        target_population: population,
        ..PackingConfig::default()
    };
    println!(
        "Protocol: {} VMs steady-state over one week, workers {}, seed {:#x}\n",
        config.target_population, config.host, config.seed
    );

    for provider in [catalog::azure(), catalog::ovhcloud()] {
        println!(
            "=== Fig. 3 — unallocated resources at peak ({}) ===\n",
            provider.provider
        );
        let rows = run_fig3(&provider, &config);
        let mut t = TextTable::new([
            "Distribution",
            "mix (1:1/2:1/3:1)",
            "baseline CPU",
            "baseline mem",
            "slackvm CPU",
            "slackvm mem",
            "PMs (base->slack)",
        ]);
        for r in &rows {
            t.row([
                r.letter.to_string(),
                format!("{}/{}/{}", r.shares.0, r.shares.1, r.shares.2),
                pct(r.baseline_cpu),
                pct(r.baseline_mem),
                pct(r.slackvm_cpu),
                pct(r.slackvm_mem),
                format!("{} -> {}", r.baseline_pms, r.slackvm_pms),
            ]);
        }
        println!("{}", t.render());

        println!("=== Fig. 4 — PM savings grid ({}) ===\n", provider.provider);
        let grid = run_fig4(&provider, &config, 25);
        // Render as the paper's triangle: rows by 2:1 share, columns by
        // 1:1 share.
        let mut t = TextTable::new(["2:1 \\ 1:1", "0", "25", "50", "75", "100"]);
        for p2 in [100u32, 75, 50, 25, 0] {
            let mut cells = vec![format!("{p2}")];
            for p1 in [0u32, 25, 50, 75, 100] {
                cells.push(match grid.at(p1, p2) {
                    Some(c) => format!("{:+.1}%", c.savings_pct),
                    None => String::new(),
                });
            }
            t.row(cells);
        }
        println!("{}", t.render());
        if let Some(best) = grid.best() {
            println!(
                "best: {}% 1:1 / {}% 2:1 / {}% 3:1 -> {:.1}% PMs saved ({} -> {})\n",
                best.p1, best.p2, best.p3, best.savings_pct, best.baseline_pms, best.slackvm_pms
            );
        }
    }
    println!(
        "Paper anchors: up to 9.6% PMs saved on OVHcloud (distribution F:\n\
         50% 1:1 + 50% 3:1, 83 -> 75 PMs) and up to 8.8% on Azure."
    );
}
