//! Tours the canned workload scenarios through both deployment models —
//! a quick feel for where SlackVM pays and where it is neutral.
//!
//! Run with: `cargo run --release --example scenario_tour`

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::report::TextTable;
use slackvm::workload::scenarios;
use slackvm::workload::TraceStats;

fn main() {
    let population = 300;
    let seed = 0x70_u64;
    let mut table = TextTable::new([
        "scenario",
        "arrivals",
        "peak pop",
        "p50 lifetime",
        "baseline PMs",
        "slackvm PMs",
        "savings",
    ]);
    for scenario in scenarios::all(population) {
        let workload = scenario.generate(seed);
        let stats = TraceStats::of(&workload).expect("non-empty trace");

        let mut baseline = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            scenario.mix.levels(),
        ));
        let base = run_packing(&workload, &mut baseline);
        let mut shared =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
        let slack = run_packing(&workload, &mut shared);

        table.row([
            scenario.name.clone(),
            stats.arrivals.to_string(),
            stats.peak_population.to_string(),
            format!("{:.1} h", stats.lifetime_percentiles.0 as f64 / 3600.0),
            base.opened_pms.to_string(),
            slack.opened_pms.to_string(),
            format!("{:+.1}%", slack.savings_vs(&base)),
        ]);
        println!("{}: {}", scenario.name, scenario.description);
    }
    println!("\n{}", table.render());
    println!(
        "Reading: complementary mixes (paper-week-f, devtest-churn) save PMs;\n\
         premium-heavy steady load (enterprise-steady) is near-neutral — the\n\
         gain comes from pooling CPU-bound and memory-bound tiers, not from\n\
         sharing alone."
    );
}
