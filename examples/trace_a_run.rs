//! Records a fully-instrumented replay of the paper-week scenario and
//! exports all three telemetry artifacts: a JSONL event journal, a
//! Chrome trace (loadable at ui.perfetto.dev or chrome://tracing), and
//! a plain-text metrics summary.
//!
//! Run with: `cargo run --release --example trace_a_run`

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::workload::scenarios;

fn main() {
    // A seeded week of arrivals/departures at the paper's F mix.
    let scenario = scenarios::all(400)
        .into_iter()
        .find(|s| s.name == "paper-week-f")
        .expect("canned scenario");
    let workload = scenario.generate(0x5AC4);

    let mut model = DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
    let mut telemetry = Telemetry::new();
    let out = run_packing_recorded(&workload, &mut model, &mut telemetry);

    println!(
        "replayed {}: {} deployments, {} rejections, {} PMs opened",
        scenario.name, out.deployments, out.rejections, out.opened_pms
    );
    println!(
        "journal: {} events ({} placements, {} vNode creations, {} vNode resizes)",
        telemetry.journal.len(),
        telemetry.journal.count_kind("vm_placed"),
        telemetry.journal.count_kind("v_node_created"),
        telemetry.journal.count_kind("v_node_grew") + telemetry.journal.count_kind("v_node_shrunk"),
    );

    let dir = std::env::temp_dir().join("slackvm-trace-a-run");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let events = dir.join("events.jsonl");
    let chrome = dir.join("trace.json");
    telemetry
        .journal
        .write_jsonl(&events)
        .expect("write journal");
    telemetry.trace.write_chrome(&chrome).expect("write trace");
    println!("wrote {}", events.display());
    println!(
        "wrote {} — open it in Perfetto to see the hot paths",
        chrome.display()
    );
    println!("\n{}", telemetry.metrics.render_text());
}
