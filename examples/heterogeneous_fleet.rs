//! Beyond the paper's homogeneous protocol: a *heterogeneous* fleet.
//!
//! Algorithm 2 computes each PM's target ratio individually, so a
//! cluster can mix memory-rich and CPU-rich hardware. This example
//! builds such a fleet by alternating two worker shapes and shows the
//! progress scorer steering memory-heavy VMs towards the CPU-rich
//! (low-M/C) workers and vice versa.
//!
//! Run with: `cargo run --release --example heterogeneous_fleet`

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::report::TextTable;

fn main() {
    // Two hardware generations: a CPU-rich worker (2 GiB/core) and a
    // memory-rich one (8 GiB/core).
    let cpu_rich = PmConfig::of(48, gib(96)); // M/C 2
    let mem_rich = PmConfig::of(16, gib(128)); // M/C 8
    println!("fleet shapes: {cpu_rich} and {mem_rich}\n");

    // Build a shared pool whose factory alternates the two shapes.
    // (SharedDeployment assumes homogeneous workers, so for this demo we
    // drive the Cluster directly with the progress policy.)
    let topo_cpu = Arc::new(flat(48));
    let topo_mem = Arc::new(flat(16));
    let mut cluster: Cluster<PhysicalMachine> = Cluster::new(move |id: PmId| {
        if id.0.is_multiple_of(2) {
            PhysicalMachine::with_topology_policy(id, Arc::clone(&topo_cpu), gib(96))
        } else {
            PhysicalMachine::with_topology_policy(id, Arc::clone(&topo_mem), gib(128))
        }
    });
    let policy = PlacementPolicy::scored(ProgressScorer::paper());

    // Open one worker of each shape with a seed VM so the scorer has
    // real candidates to compare.
    cluster
        .deploy(
            VmId(1000),
            VmSpec::of(2, gib(4), OversubLevel::of(1)),
            &policy,
        )
        .unwrap();
    cluster
        .deploy(
            VmId(1001),
            VmSpec::of(14, gib(14), OversubLevel::of(1)),
            &policy,
        )
        .unwrap();

    // Now deploy a stream of strongly-typed VMs and record where they go.
    let mut t = TextTable::new(["VM", "shape", "chosen worker", "worker M/C"]);
    let mut cpu_heavy_on_mem_rich = 0;
    let mut mem_heavy_on_cpu_rich = 0;
    for i in 0..24u64 {
        let (label, spec) = if i % 2 == 0 {
            ("cpu-heavy", VmSpec::of(4, gib(4), OversubLevel::of(1))) // ratio 1
        } else {
            ("mem-heavy", VmSpec::of(1, gib(12), OversubLevel::of(1))) // ratio 12
        };
        let pm = cluster.deploy(VmId(i), spec, &policy).unwrap();
        let host = cluster.hosts().iter().find(|h| h.id() == pm).unwrap();
        let target = host.config().target_ratio().gib_per_core();
        if label == "cpu-heavy" && target > 4.0 {
            cpu_heavy_on_mem_rich += 1;
        }
        if label == "mem-heavy" && target < 4.0 {
            mem_heavy_on_cpu_rich += 1;
        }
        t.row([
            format!("{spec}"),
            label.to_string(),
            format!("{pm}"),
            format!("{target:.0} GiB/core"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "steering: {cpu_heavy_on_mem_rich}/12 cpu-heavy VMs went to memory-rich workers, \
         {mem_heavy_on_cpu_rich}/12 mem-heavy VMs to cpu-rich workers"
    );
    println!(
        "\nworkers opened: {} (the scorer fills complementary slots before \
         opening new hardware)",
        cluster.opened()
    );
    for host in cluster.hosts() {
        let a = host.alloc();
        println!(
            "  {}: {} vms, M/C {:.1} vs target {:.1}",
            host.id(),
            host.num_vms(),
            a.mc_ratio().gib_per_core(),
            host.config().target_ratio().gib_per_core()
        );
    }
}
