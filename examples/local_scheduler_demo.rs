//! The physical experiment (paper §VII-A): reproduce Table IV and the
//! Fig. 2 response-time distributions on the modeled dual-EPYC testbed.
//!
//! Run with: `cargo run --release --example local_scheduler_demo`

use slackvm::experiments::physical::{render_fig2, render_table4};
use slackvm::prelude::*;

fn main() {
    println!("Testbed (paper Table III):\n{}\n", experiments::table3());

    let scenario = Fig2Scenario::default();
    println!(
        "Scenario: base latency {} ms, {} s steps over {} h, pooling {}\n",
        scenario.base_latency_ms,
        scenario.step_secs,
        scenario.duration_secs / 3600,
        scenario.pooling,
    );
    let outcome = scenario.run();

    println!(
        "SlackVM machine co-hosts {} VMs across {} execution span(s):",
        outcome.slackvm_total_vms,
        outcome.slackvm_span_threads.len()
    );
    for (label, threads) in &outcome.slackvm_span_threads {
        println!("  {label}: {threads} thread(s)");
    }

    println!("\nTable IV — median of per-VM p90 response times\n");
    println!("{}", render_table4(&outcome));

    println!("Fig. 2 — distribution of per-VM p90s (textual form)\n");
    println!("{}", render_fig2(&outcome));

    println!(
        "Reading: premium (1:1) VMs are preserved (factor ~1), while the\n\
         most oversubscribed tier absorbs the co-hosting overhead — the\n\
         paper's isolation result."
    );
}
