//! Capacity planning with the SlackVM stack: how many VMs fits a fixed
//! fleet, and what could migration reclaim afterwards?
//!
//! Three questions an operator asks, answered with the public API:
//! 1. *sizing*: smallest SlackVM fleet absorbing a target workload
//!    (binary search over capped clusters);
//! 2. *admission*: behaviour at the capacity wall (rejection counts);
//! 3. *compaction*: after a week of churn, how many machines could live
//!    migration drain (the paper's future-work knob, quantified).
//!
//! Run with: `cargo run --release --example capacity_planner`

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::report::TextTable;

fn workload(population: u32) -> Workload {
    WorkloadGenerator::new(WorkloadSpec {
        catalog: catalog::ovhcloud(),
        mix: DistributionPoint::by_letter('F').unwrap().mix(),
        arrivals: ArrivalModel::paper_week(population).with_lognormal_lifetimes(1.0),
        seed: 0xCAFE,
    })
    .generate()
}

fn run_with_fleet(w: &Workload, fleet: u32) -> PackingOutcome {
    let shared = SharedDeployment::with_capped_cluster(Arc::new(flat(32)), gib(128), fleet);
    let mut model = DeploymentModel::Shared(shared);
    run_packing(w, &mut model)
}

fn main() {
    let population = 400;
    let w = workload(population);
    println!(
        "workload: {} arrivals over one week (peak population {}), OVHcloud mix F,\n\
         log-normal lifetimes (heavy tail)\n",
        w.num_arrivals(),
        w.peak_population()
    );

    // 1. Sizing: smallest fleet with zero rejections.
    let unbounded = {
        let mut model =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
        run_packing(&w, &mut model)
    };
    let (mut lo, mut hi) = (1u32, unbounded.opened_pms);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if run_with_fleet(&w, mid).rejections == 0 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    println!(
        "sizing: {} workers absorb the workload with zero rejections\n\
         (open-on-demand run used {})\n",
        lo, unbounded.opened_pms
    );

    // 2. Admission at the wall: shrink the fleet and watch rejections.
    let mut t = TextTable::new(["fleet size", "rejections", "rejection rate"]);
    for fleet in [lo, lo * 9 / 10, lo * 3 / 4, lo / 2] {
        let out = run_with_fleet(&w, fleet.max(1));
        t.row([
            fleet.to_string(),
            out.rejections.to_string(),
            format!(
                "{:.1}%",
                out.rejections as f64 / out.deployments as f64 * 100.0
            ),
        ]);
    }
    println!(
        "admission behaviour under shrinking fleets:\n{}",
        t.render()
    );

    // 3. Compaction: stop the replay at mid-week and analyze.
    let shared = SharedDeployment::new(Arc::new(flat(32)), gib(128));
    let mut model = DeploymentModel::Shared(shared);
    let mut alive = 0u32;
    for (time, event) in &w.events {
        if *time > 4 * 86_400 {
            break;
        }
        match event {
            slackvm::workload::WorkloadEvent::Arrival(vm) => {
                if let DeploymentModel::Shared(s) = &mut model {
                    s.deploy(vm.id, vm.spec).unwrap();
                    alive += 1;
                }
            }
            slackvm::workload::WorkloadEvent::Departure { id } => {
                if let DeploymentModel::Shared(s) = &mut model {
                    if s.cluster.location_of(*id).is_some() {
                        s.remove(*id).unwrap();
                        alive -= 1;
                    }
                }
            }
            slackvm::workload::WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                if let DeploymentModel::Shared(s) = &mut model {
                    let _ = s.resize(*id, *vcpus, *mem_mib);
                }
            }
        }
    }
    if let DeploymentModel::Shared(s) = &model {
        let snapshots: Vec<MachineSnapshot> =
            s.cluster.hosts().iter().map(|h| h.snapshot()).collect();
        let plan = plan_compaction(&snapshots);
        println!(
            "mid-week state: {} VMs on {} opened workers ({} active)",
            alive,
            s.cluster.opened(),
            s.cluster.active()
        );
        println!(
            "compaction analysis: {} migrations would drain {} worker(s) \
             ({:.1}% of the fleet) — the headroom live migration (paper \
             future work) could reclaim",
            plan.moves.len(),
            plan.reclaimed_pms(),
            plan.reclaimed_pms() as f64 / s.cluster.opened().max(1) as f64 * 100.0
        );
        // Show the guest-visible topology of one worker's vNodes.
        if let Some(host) = s.cluster.hosts().iter().find(|h| !h.is_idle()) {
            println!("\nvirtual topologies on {}:", host.id());
            for vnode in host.vnodes() {
                let vt = host.virtual_topology(vnode.level()).unwrap();
                println!("  {}: {}", vnode.level(), vt);
            }
        }
    }
}
