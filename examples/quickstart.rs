//! Quickstart: co-host VMs of three oversubscription levels on one
//! SlackVM worker and watch the vNodes resize.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use slackvm::prelude::*;

fn main() {
    // A worker with the paper's simulation-scale hardware: 32 cores,
    // 128 GiB, hence a target Memory-per-Core ratio of 4 GiB/core.
    let topology = Arc::new(flat(32));
    let mut machine = PhysicalMachine::with_topology_policy(PmId(0), topology, gib(128));
    println!("worker: {}", machine.config());

    // Deploy three VMs at three different oversubscription levels.
    let deployments = [
        (VmId(0), VmSpec::of(4, gib(8), OversubLevel::of(1))), // premium
        (VmId(1), VmSpec::of(4, gib(8), OversubLevel::of(2))),
        (VmId(2), VmSpec::of(6, gib(8), OversubLevel::of(3))),
    ];
    for (id, spec) in deployments {
        machine
            .deploy(id, spec)
            .expect("the empty worker fits all three");
        println!("deployed {id}: {spec}");
    }

    println!("\nvNodes after deployment:");
    for vnode in machine.vnodes() {
        println!(
            "  {} -> {} core(s) {:?}, {} vCPUs exposed, {:.1} GiB",
            vnode.level(),
            vnode.num_cores(),
            vnode.core_vec(),
            vnode.total_vcpus(),
            vnode.total_mem_mib() as f64 / 1024.0,
        );
    }
    let alloc = machine.alloc();
    println!(
        "\nallocation: {} / {} cores, {:.0} / 128 GiB, workload M/C {:.2} (target {:.2})",
        alloc.cpu.ceil_cores(),
        machine.config().cores,
        alloc.mem_mib as f64 / 1024.0,
        alloc.mc_ratio().gib_per_core(),
        machine.config().target_ratio().gib_per_core(),
    );

    // Score a candidate VM with the paper's Algorithm 2: a memory-heavy
    // VM gets a positive progress score on this CPU-heavy machine.
    let memory_heavy = VmSpec::of(1, gib(16), OversubLevel::of(1));
    let cpu_heavy = VmSpec::of(8, gib(4), OversubLevel::of(1));
    let knobs = ProgressConfig::default();
    println!(
        "\nAlgorithm 2 progress scores on this worker:\n  {} -> {:+.3}\n  {} -> {:+.3}",
        memory_heavy,
        progress_score(&machine.config(), &alloc, &memory_heavy, knobs),
        cpu_heavy,
        progress_score(&machine.config(), &alloc, &cpu_heavy, knobs),
    );

    // Departures shrink the vNodes back.
    machine.remove(VmId(2)).unwrap();
    machine.remove(VmId(1)).unwrap();
    println!(
        "\nafter two departures: {} vNode(s), {} free core(s), churn {:?}",
        machine.vnodes().count(),
        machine.free_core_count(),
        machine.churn(),
    );
}
