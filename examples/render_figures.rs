//! Renders every paper figure as an SVG under `./figures/`.
//!
//! Run with: `cargo run --release --example render_figures [population]`

use std::sync::Arc;

use slackvm::experiments::{run_fig3, run_fig4, PackingConfig};
use slackvm::prelude::*;
use slackvm_viz::{fig2_svg, fig3_svg, fig4_svg, occupancy_svg};

fn main() -> std::io::Result<()> {
    let population: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let out_dir = std::path::Path::new("figures");
    std::fs::create_dir_all(out_dir)?;
    let config = PackingConfig {
        target_population: population,
        ..PackingConfig::default()
    };

    // Fig. 2 — response times on the modeled testbed.
    let fig2 = Fig2Scenario::default().run();
    std::fs::write(out_dir.join("fig2_response_times.svg"), fig2_svg(&fig2))?;

    // Fig. 3 + Fig. 4 per provider.
    for provider in [catalog::azure(), catalog::ovhcloud()] {
        let rows = run_fig3(&provider, &config);
        std::fs::write(
            out_dir.join(format!("fig3_unallocated_{}.svg", provider.provider)),
            fig3_svg(&rows, &provider.provider),
        )?;
        let grid = run_fig4(&provider, &config, 25);
        std::fs::write(
            out_dir.join(format!("fig4_savings_{}.svg", provider.provider)),
            fig4_svg(&grid),
        )?;
    }

    // Occupancy time series of the headline workload (steady-state view).
    let workload = slackvm::workload::scenarios::paper_week_f(population).generate(config.seed);
    let mut model = DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
    let mut samples = Vec::new();
    slackvm::sim::run_packing_with_samples(&workload, &mut model, Some(&mut samples));
    std::fs::write(
        out_dir.join("occupancy_paper_week_f.svg"),
        occupancy_svg(
            &samples,
            "SlackVM pool occupancy — paper week, distribution F",
        ),
    )?;
    if let Some(steady) = slackvm::sim::analyze_steady_state(&samples) {
        println!(
            "steady state from t={:.1} d: population {:.0}, unallocated cpu {:.1}% mem {:.1}%",
            steady.warmup_end_secs as f64 / 86_400.0,
            steady.mean_population,
            steady.mean_unallocated_cpu * 100.0,
            steady.mean_unallocated_mem * 100.0,
        );
    }

    for entry in std::fs::read_dir(out_dir)? {
        let entry = entry?;
        println!(
            "wrote {} ({} bytes)",
            entry.path().display(),
            entry.metadata()?.len()
        );
    }
    Ok(())
}
