//! Property-based tests of the local scheduler: arbitrary deploy/remove
//! interleavings must preserve every vNode invariant.

use std::sync::Arc;

use proptest::prelude::*;

use slackvm::prelude::*;

/// A random operation against one machine.
#[derive(Debug, Clone)]
enum Op {
    Deploy {
        vcpus: u32,
        mem_gib: u64,
        level: u32,
    },
    RemoveOldest,
    RemoveNewest,
    ResizeOldest {
        vcpus: u32,
        mem_gib: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u32..8, 1u64..16, 1u32..=3).prop_map(|(vcpus, mem_gib, level)| Op::Deploy {
            vcpus,
            mem_gib,
            level
        }),
        1 => Just(Op::RemoveOldest),
        1 => Just(Op::RemoveNewest),
        1 => (1u32..8, 1u64..16).prop_map(|(vcpus, mem_gib)| Op::ResizeOldest {
            vcpus,
            mem_gib
        }),
    ]
}

fn run_ops(machine: &mut PhysicalMachine, ops: &[Op]) {
    let mut alive: Vec<VmId> = Vec::new();
    let mut next = 0u64;
    for op in ops {
        match op {
            Op::Deploy {
                vcpus,
                mem_gib,
                level,
            } => {
                let spec = VmSpec::of(*vcpus, gib(*mem_gib), OversubLevel::of(*level));
                let id = VmId(next);
                next += 1;
                let could = machine.can_host(&spec);
                match machine.deploy(id, spec) {
                    Ok(()) => {
                        assert!(could, "deploy succeeded though can_host said no");
                        alive.push(id);
                    }
                    Err(_) => assert!(!could, "can_host said yes but deploy failed"),
                }
            }
            Op::RemoveOldest => {
                if !alive.is_empty() {
                    let id = alive.remove(0);
                    machine.remove(id).expect("alive VM removes cleanly");
                }
            }
            Op::RemoveNewest => {
                if let Some(id) = alive.pop() {
                    machine.remove(id).expect("alive VM removes cleanly");
                }
            }
            Op::ResizeOldest { vcpus, mem_gib } => {
                if let Some(&id) = alive.first() {
                    // Resize may legitimately fail on a full machine;
                    // either way the invariants must hold afterwards.
                    let _ = machine.resize_vm(id, *vcpus, gib(*mem_gib));
                }
            }
        }
        machine
            .check_invariants()
            .expect("invariants after every op");
    }
    // Drain and re-check.
    for id in alive {
        machine.remove(id).unwrap();
    }
    machine.check_invariants().unwrap();
    assert!(machine.is_idle());
    assert_eq!(machine.alloc(), AllocView::EMPTY);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sim_host_survives_arbitrary_interleavings(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut machine =
            PhysicalMachine::with_topology_policy(PmId(0), Arc::new(flat(32)), gib(128));
        run_ops(&mut machine, &ops);
    }

    #[test]
    fn execution_spans_always_honour_their_guarantees(
        ops in prop::collection::vec(op_strategy(), 1..80),
        pooling in proptest::bool::ANY,
    ) {
        use slackvm::hypervisor::pooling::execution_spans;
        let mut machine = PhysicalMachine::with_topology_policy(
            PmId(0),
            Arc::new(dual_epyc_7662()),
            gib(1024),
        );
        // Deploy-only run (ignore removals) to reach a random state.
        let mut next = 0u64;
        for op in &ops {
            if let Op::Deploy { vcpus, mem_gib, level } = op {
                let spec = VmSpec::of(*vcpus, gib(*mem_gib), OversubLevel::of(*level));
                if machine.can_host(&spec) {
                    machine.deploy(VmId(next), spec).unwrap();
                    next += 1;
                }
            }
        }
        let spans = execution_spans(&machine, pooling);
        let mut seen_vms = std::collections::BTreeSet::new();
        for span in &spans {
            prop_assert!(span.is_valid(), "span violates {}", span.guarantee);
            // Spans never share a VM.
            for id in &span.vm_ids {
                prop_assert!(seen_vms.insert(*id), "VM {id} in two spans");
            }
            // The guarantee is the strictest pooled level.
            for level in &span.levels {
                prop_assert!(span.guarantee.satisfies(*level));
            }
        }
        // Every hosted VM appears in exactly one span.
        prop_assert_eq!(seen_vms.len(), machine.num_vms());
    }

    #[test]
    fn epyc_host_survives_arbitrary_interleavings(
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let mut machine = PhysicalMachine::with_topology_policy(
            PmId(0),
            Arc::new(dual_epyc_7662()),
            gib(1024),
        );
        run_ops(&mut machine, &ops);
    }

    #[test]
    fn uniform_host_capacity_is_exact(
        vcpus in prop::collection::vec(1u32..8, 1..200),
        level in 1u32..=3,
    ) {
        let level = OversubLevel::of(level);
        let mut host = UniformMachine::new(PmId(0), PmConfig::simulation_host(), level);
        let mut total = 0u32;
        for (i, v) in vcpus.iter().enumerate() {
            let spec = VmSpec::of(*v, 1, level); // 1 MiB: memory never binds
            match host.deploy(VmId(i as u64), spec) {
                Ok(()) => total += v,
                Err(_) => {
                    // Exactly the vCPU capacity wall.
                    prop_assert!(total + v > level.vcpu_capacity(32));
                }
            }
        }
        prop_assert!(total <= level.vcpu_capacity(32));
    }

    #[test]
    fn progress_score_never_rewards_moving_away(
        acores in 0u32..=32, amem in 0u64..=128,
        vcpus in 1u32..8, vmem in 1u64..32, level in 1u32..=3,
    ) {
        // If the post-deployment ratio is farther from the target than
        // the pre-deployment ratio, the score must not be positive.
        let cfg = PmConfig::simulation_host();
        let alloc = AllocView::new(Millicores::from_cores(acores), gib(amem));
        let vm = VmSpec::of(vcpus, gib(vmem), OversubLevel::of(level));
        let score = progress_score(&cfg, &alloc, &vm, ProgressConfig::default());
        let target = cfg.target_ratio().gib_per_core();
        let before = if alloc.cpu.is_zero() {
            target
        } else {
            alloc.mc_ratio().gib_per_core()
        };
        let after = alloc.with_vm(&vm).mc_ratio().gib_per_core();
        let moved_away = (after - target).abs() > (before - target).abs() + 1e-12;
        if moved_away {
            prop_assert!(score <= 1e-12, "score {score} rewards moving away");
        } else {
            prop_assert!(score >= -1e-12, "score {score} punishes an improvement");
        }
    }
}
