//! The paper's headline numbers, asserted end-to-end.
//!
//! We do not chase the authors' absolute values (our substrate is a
//! simulator); these tests pin the *shape*: who wins, by roughly what
//! factor, and where the crossovers fall.

use slackvm::experiments::{compare_packing, run_fig3, table1, table2, PackingConfig};
use slackvm::perf::Fig2Scenario;
use slackvm::prelude::*;

fn paper_config() -> PackingConfig {
    PackingConfig::default() // 500 VMs, 32c/128GiB hosts — the paper protocol
}

#[test]
fn tables_1_and_2_match_paper_within_5pct() {
    for row in table1() {
        assert!((row.mean_vcpus - row.paper_vcpus).abs() / row.paper_vcpus < 0.05);
        assert!((row.mean_mem_gib - row.paper_mem_gb).abs() / row.paper_mem_gb < 0.05);
    }
    for row in table2() {
        for (got, want) in row.ratios.iter().zip(row.paper) {
            assert!((got - want).abs() / want < 0.05, "{got} vs {want}");
        }
    }
}

#[test]
fn headline_f_ovh_savings_lands_near_9_6_pct() {
    // Paper: distribution F on OVHcloud saves 9.6% of PMs (83 -> 75).
    let point = DistributionPoint::by_letter('F').unwrap();
    let cmp = compare_packing(&catalog::ovhcloud(), &point.mix(), &paper_config());
    let savings = cmp.savings_pct();
    assert!(
        (5.0..=15.0).contains(&savings),
        "F/OVH savings {savings:.1}% ({} -> {})",
        cmp.baseline.opened_pms,
        cmp.slackvm.opened_pms
    );
}

#[test]
fn azure_gains_exist_with_limited_premium_share() {
    // Paper: Azure reaches up to 8.8%, "especially in distributions
    // with a limited ratio of 1:1 VMs".
    let low_premium = DistributionPoint::by_letter('I').unwrap(); // 25/25/50
    let cmp = compare_packing(&catalog::azure(), &low_premium.mix(), &paper_config());
    assert!(
        cmp.savings_pct() > 2.0,
        "expected gains on Azure I, got {:.1}%",
        cmp.savings_pct()
    );
}

#[test]
fn no_level3_distributions_gain_at_most_marginally() {
    // Paper: "gains remain limited in scenarios where no 3:1 VMs are
    // deployed, as observed in distributions A, B, D, G, and K".
    let config = paper_config();
    for letter in ['A', 'B', 'D', 'G', 'K'] {
        let point = DistributionPoint::by_letter(letter).unwrap();
        let cmp = compare_packing(&catalog::ovhcloud(), &point.mix(), &config);
        let savings = cmp.savings_pct();
        assert!(
            savings < 8.0,
            "{letter} should gain only marginally, got {savings:.1}%"
        );
        assert!(
            savings > -5.0,
            "{letter} should not regress materially, got {savings:.1}%"
        );
    }
}

#[test]
fn fig3_bias_shifts_from_memory_stranding_to_cpu_stranding() {
    // Paper Fig. 3: baseline strands memory on low-oversubscription
    // distributions (CPU-bound) and CPU on high ones (memory-bound),
    // and SlackVM reduces combined stranding on most mixed points.
    let rows = run_fig3(&catalog::ovhcloud(), &paper_config());
    let get = |l: char| rows.iter().find(|r| r.letter == l).unwrap();
    assert!(get('A').baseline_mem > get('A').baseline_cpu);
    assert!(get('O').baseline_cpu > get('O').baseline_mem);
    // Mixed complementary points: SlackVM strands less in total.
    for letter in ['F', 'H', 'I', 'J', 'M'] {
        let r = get(letter);
        assert!(
            r.slackvm_total() < r.baseline_total() + 1e-9,
            "{letter}: slackvm {:.3} vs baseline {:.3}",
            r.slackvm_total(),
            r.baseline_total()
        );
    }
}

#[test]
fn fig2_shape_premium_preserved_and_3to1_degraded() {
    let out = Fig2Scenario {
        step_secs: 600,
        ..Fig2Scenario::default()
    }
    .run();
    let rows = &out.levels;
    // Ordering within each scenario.
    assert!(rows[0].baseline_ms <= rows[1].baseline_ms);
    assert!(rows[1].baseline_ms <= rows[2].baseline_ms);
    assert!(rows[0].slackvm_ms <= rows[1].slackvm_ms);
    assert!(rows[1].slackvm_ms <= rows[2].slackvm_ms);
    // Premium preserved (paper: <10% at p90), 3:1 pays the bill
    // (paper: x2.21).
    assert!(
        rows[0].overhead < 1.15,
        "premium overhead {}",
        rows[0].overhead
    );
    assert!(rows[2].overhead > 1.3, "3:1 overhead {}", rows[2].overhead);
    assert!(rows[2].overhead > rows[0].overhead);
}
