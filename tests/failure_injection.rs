//! Failure injection: host crashes mid-replay, evicted VMs re-place on
//! the surviving pool, accounting stays consistent.

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::sim::run_packing_with_failures;
use slackvm_suite::test_workload;

fn pool() -> SharedDeployment {
    SharedDeployment::new(Arc::new(flat(32)), gib(128))
}

fn workload(seed: u64) -> Workload {
    test_workload(
        catalog::azure(),
        LevelMix::three_level(40.0, 30.0, 30.0).unwrap(),
        80,
        3,
        seed,
    )
}

#[test]
fn failures_evict_and_replace_on_an_unbounded_pool() {
    let w = workload(1);
    let mut deployment = pool();
    // Fail the first two workers on day 1 and day 2.
    let failures = vec![(86_400u64, PmId(0)), (2 * 86_400, PmId(1))];
    let (out, stats) = run_packing_with_failures(&w, &mut deployment, &failures);
    assert_eq!(stats.hosts_failed, 2);
    assert!(stats.vms_evicted > 0, "day-1 workers host VMs");
    // Unbounded pool: every evicted VM finds a new home.
    assert_eq!(stats.vms_lost, 0);
    assert_eq!(stats.vms_replaced, stats.vms_evicted);
    assert_eq!(out.rejections, 0);
    // Failed hosts take no further VMs.
    assert!(deployment.cluster.is_failed(PmId(0)));
    assert_eq!(deployment.cluster.failed_count(), 2);
    let failed_host = &deployment.cluster.hosts()[0];
    assert!(failed_host.is_idle(), "failed host must stay drained");
    // Everything placed eventually departed.
    for host in deployment.cluster.hosts() {
        host.check_invariants().unwrap();
        assert!(host.is_idle());
    }
}

#[test]
fn capped_pool_loses_vms_when_capacity_vanishes() {
    let w = workload(2);
    // First find how many hosts the unbounded run needs, then cap
    // exactly there and fail one: some evictions cannot re-place.
    let mut probe = pool();
    let baseline = slackvm::sim::run_packing(
        &w,
        &mut DeploymentModel::Shared(std::mem::replace(&mut probe, pool())),
    );
    let cap = baseline.opened_pms;
    let mut deployment = SharedDeployment::with_capped_cluster(Arc::new(flat(32)), gib(128), cap);
    // Fail a host mid-week at peak-ish occupancy.
    let failures = vec![(4 * 86_400u64, PmId(0))];
    let (_, stats) = run_packing_with_failures(&w, &mut deployment, &failures);
    assert_eq!(stats.hosts_failed, 1);
    assert_eq!(stats.vms_replaced + stats.vms_lost, stats.vms_evicted);
}

#[test]
fn failing_unknown_or_empty_hosts_is_harmless() {
    let w = workload(3);
    let mut deployment = pool();
    let failures = vec![
        (10u64, PmId(99)), // never opened
        (20u64, PmId(0)),  // likely empty this early
        (20u64, PmId(0)),  // repeated failure: idempotent
    ];
    let (out, stats) = run_packing_with_failures(&w, &mut deployment, &failures);
    assert_eq!(stats.hosts_failed, 3, "each injection is counted");
    assert_eq!(out.rejections, 0);
}

#[test]
fn repair_returns_a_host_to_service() {
    let mut deployment = pool();
    deployment
        .deploy(VmId(0), VmSpec::of(2, gib(4), OversubLevel::of(1)))
        .unwrap();
    let evicted = deployment.fail_host(PmId(0));
    assert_eq!(evicted.len(), 1);
    // While failed, deployments open a new host instead.
    let pm = deployment
        .deploy(VmId(1), VmSpec::of(2, gib(4), OversubLevel::of(1)))
        .unwrap();
    assert_eq!(pm, PmId(1));
    deployment.cluster.repair_host(PmId(0));
    assert!(!deployment.cluster.is_failed(PmId(0)));
    // Repaired host 0 is eligible again (composite scorer may pick
    // either; just assert placement succeeds and invariants hold).
    deployment
        .deploy(VmId(2), VmSpec::of(2, gib(4), OversubLevel::of(1)))
        .unwrap();
    for host in deployment.cluster.hosts() {
        host.check_invariants().unwrap();
    }
}

#[test]
fn migration_to_failed_host_is_refused() {
    let mut deployment = pool();
    deployment
        .deploy(VmId(0), VmSpec::of(2, gib(4), OversubLevel::of(1)))
        .unwrap();
    // Open a second host by force-failing the first after placing.
    deployment.fail_host(PmId(0));
    deployment
        .deploy(VmId(1), VmSpec::of(2, gib(4), OversubLevel::of(1)))
        .unwrap();
    let err = deployment.cluster.migrate(VmId(1), PmId(0)).unwrap_err();
    assert!(matches!(err, slackvm::sim::SimError::DeploymentFailed(_)));
    // VM 1 is still placed on its original host.
    assert_eq!(deployment.cluster.location_of(VmId(1)), Some(PmId(1)));
}
