//! Cross-crate integration: full workload replays through both
//! deployment models with invariant auditing.

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm_suite::{paper_levels, test_workload};

fn mixed_workload(seed: u64) -> Workload {
    test_workload(
        catalog::azure(),
        LevelMix::three_level(40.0, 30.0, 30.0).unwrap(),
        80,
        3,
        seed,
    )
}

#[test]
fn dedicated_replay_conserves_everything() {
    let w = mixed_workload(1);
    let mut model = DeploymentModel::Dedicated(DedicatedDeployment::new(
        PmConfig::simulation_host(),
        paper_levels(),
    ));
    let out = run_packing(&w, &mut model);
    assert_eq!(out.rejections, 0);
    assert_eq!(out.deployments as usize, w.num_arrivals());
    let (alloc, cap) = model.totals();
    assert!(alloc.is_empty(), "all VMs departed, alloc {alloc}");
    assert!(cap.cpu.0 > 0, "capacity remains provisioned");
}

#[test]
fn shared_replay_keeps_machine_invariants() {
    let w = mixed_workload(2);
    let shared = SharedDeployment::new(Arc::new(flat(32)), gib(128));
    let mut model = DeploymentModel::Shared(shared);
    let out = run_packing(&w, &mut model);
    assert_eq!(out.rejections, 0);
    // Audit every opened worker's internal invariants post-replay.
    if let DeploymentModel::Shared(s) = &model {
        for host in s.cluster.hosts() {
            host.check_invariants()
                .unwrap_or_else(|e| panic!("{}: {e}", host.id()));
            assert!(host.is_idle(), "{} still hosts VMs", host.id());
            assert_eq!(host.free_core_count(), 32);
        }
        // Churn bookkeeping balances on a fully-drained cluster.
        let churn = s.total_churn();
        assert_eq!(churn.cores_added, churn.cores_released);
        assert_eq!(churn.vnodes_created, churn.vnodes_dissolved);
    } else {
        unreachable!();
    }
}

#[test]
fn mid_replay_interruption_leaves_consistent_state() {
    // Replay only the arrivals (no departures) by deploying directly;
    // the cluster must stay consistent at an arbitrary cut point.
    let w = mixed_workload(3);
    let mut shared = SharedDeployment::new(Arc::new(flat(32)), gib(128));
    let mut deployed = Vec::new();
    for vm in w.instances().take(60) {
        shared.deploy(vm.id, vm.spec).unwrap();
        deployed.push(vm.id);
    }
    for host in shared.cluster.hosts() {
        host.check_invariants().unwrap();
    }
    // The vClusters agree with the machines.
    for level in paper_levels() {
        let from_hosts: u32 = shared
            .cluster
            .hosts()
            .iter()
            .filter_map(|h| h.vnode(level))
            .map(|v| v.total_vcpus())
            .sum();
        let from_vcluster = shared.vcluster(level).map_or(0, |vc| vc.total_vcpus());
        assert_eq!(from_hosts, from_vcluster, "vCluster drift at {level}");
    }
}

#[test]
fn capped_cluster_reports_rejections_but_survives() {
    let w = mixed_workload(4);
    let shared = SharedDeployment::with_capped_cluster(
        Arc::new(flat(32)),
        gib(128),
        3, // far too small for the workload
    );
    let mut model = DeploymentModel::Shared(shared);
    let out = run_packing(&w, &mut model);
    assert!(
        out.rejections > 0,
        "a 3-host cap must reject part of the load"
    );
    assert_eq!(out.opened_pms, 3);
    assert_eq!(
        out.deployments,
        w.num_arrivals() as u32,
        "every arrival was at least attempted"
    );
}

#[test]
fn baseline_and_shared_agree_on_peak_population() {
    let w = mixed_workload(5);
    let mut a = DeploymentModel::Dedicated(DedicatedDeployment::new(
        PmConfig::simulation_host(),
        paper_levels(),
    ));
    let mut b = DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
    let out_a = run_packing(&w, &mut a);
    let out_b = run_packing(&w, &mut b);
    assert_eq!(out_a.peak_alive_vms, out_b.peak_alive_vms);
    assert_eq!(out_a.deployments, out_b.deployments);
}
