//! Differential proof that the online service is the offline engine.
//!
//! A single-shard `PlacementService` in deterministic mode, driven by
//! `serve_replay`, must make exactly the decisions of the offline
//! `run_packing` loop — the same VMs placed on the same PMs, the same
//! VMs rejected, in the same order. Both sides are built from the same
//! `ModelSpec`, so any divergence is a service bug, not a config skew.

use slackvm::prelude::*;
use slackvm::sim::run_packing_recorded;
use slackvm::telemetry::{Event, Telemetry};
use slackvm::workload::scenarios;
use slackvm_serve::{serve_replay, ModelSpec, PlacementService, ServeConfig};

/// The offline decision sequence: `(vm, Some(pm))` per placement,
/// `(vm, None)` per rejection, in journal order.
fn offline_decisions(
    workload: &slackvm::workload::Workload,
    spec: &ModelSpec,
) -> (Vec<(VmId, Option<PmId>)>, slackvm::sim::PackingOutcome) {
    let mut model = spec.build(1).expect("offline model");
    let mut telemetry = Telemetry::new();
    let outcome = run_packing_recorded(workload, &mut model, &mut telemetry);
    let decisions = telemetry
        .journal
        .iter()
        .filter_map(|record| match record.event {
            Event::VmPlaced { vm, pm, .. } => Some((vm, Some(pm))),
            Event::VmRejected { vm, .. } => Some((vm, None)),
            _ => None,
        })
        .collect();
    (decisions, outcome)
}

fn online_decisions(
    workload: &slackvm::workload::Workload,
    spec: &ModelSpec,
) -> (Vec<(VmId, Option<PmId>)>, slackvm_serve::ServiceReport) {
    let service = PlacementService::start(ServeConfig {
        shards: 1,
        deterministic: true,
        model: spec.clone(),
        ..ServeConfig::default()
    })
    .expect("service start");
    let summary = serve_replay(workload, &service).expect("serve replay");
    let decisions = summary.decisions.iter().map(|d| (d.vm, d.pm)).collect();
    (decisions, service.stop())
}

#[test]
fn deterministic_serve_reproduces_offline_packing_event_for_event() {
    let workload = scenarios::paper_week_f(120).generate(42);
    let spec = ModelSpec::default_shared();
    let (offline, outcome) = offline_decisions(&workload, &spec);
    let (online, report) = online_decisions(&workload, &spec);

    assert_eq!(online.len(), outcome.deployments as usize);
    assert_eq!(online, offline, "decision sequences diverged");
    assert_eq!(
        report.admitted() + report.rejected(),
        outcome.deployments as u64
    );
    assert_eq!(report.rejected(), outcome.rejections as u64);
    assert_eq!(report.opened_pms(), outcome.opened_pms);
    report.check_invariants().expect("final state invariants");
}

#[test]
fn capped_fleet_rejections_match_offline_too() {
    // A deliberately small fleet forces rejections, so the equality
    // also covers the rejected path and the post-rejection state.
    let workload = scenarios::devtest_churn(150).generate(7);
    let spec = ModelSpec::Shared {
        topology: "cores=16".into(),
        mem_mib: gib(64),
        policy: "best-fit".into(),
        fleet_cap: Some(6),
    };
    let (offline, outcome) = offline_decisions(&workload, &spec);
    assert!(outcome.rejections > 0, "scenario must exercise rejections");
    let (online, report) = online_decisions(&workload, &spec);
    assert_eq!(online, offline, "decision sequences diverged");
    assert_eq!(report.rejected(), outcome.rejections as u64);
    assert_eq!(report.opened_pms(), outcome.opened_pms);
    report.check_invariants().expect("final state invariants");
}

#[test]
fn every_policy_round_trips_through_the_service() {
    // Cheap smoke across the whole policy registry: online equals
    // offline for each policy on a small trace.
    let workload = scenarios::paper_week_f(40).generate(3);
    for policy in slackvm::sched::POLICY_NAMES {
        let spec = ModelSpec::Shared {
            topology: "cores=32".into(),
            mem_mib: gib(128),
            policy: (*policy).into(),
            fleet_cap: None,
        };
        let (offline, _) = offline_decisions(&workload, &spec);
        let (online, report) = online_decisions(&workload, &spec);
        assert_eq!(online, offline, "policy {policy} diverged");
        report.check_invariants().expect("invariants");
    }
}
