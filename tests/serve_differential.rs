//! Differential proof that the online service is the offline engine.
//!
//! A single-shard `PlacementService` in deterministic mode, driven by
//! `serve_replay`, must make exactly the decisions of the offline
//! `run_packing` loop — the same VMs placed on the same PMs, the same
//! VMs rejected, in the same order. Both sides are built from the same
//! `ModelSpec`, so any divergence is a service bug, not a config skew.

use slackvm::prelude::*;
use slackvm::sim::{run_packing_recorded, EventQueue, SimEvent};
use slackvm::telemetry::{Event, Telemetry};
use slackvm::workload::scenarios;
use slackvm_serve::{serve_replay, ModelSpec, Op, Outcome, PlacementService, ServeConfig};

/// The offline decision sequence: `(vm, Some(pm))` per placement,
/// `(vm, None)` per rejection, in journal order.
fn offline_decisions(
    workload: &slackvm::workload::Workload,
    spec: &ModelSpec,
) -> (Vec<(VmId, Option<PmId>)>, slackvm::sim::PackingOutcome) {
    let mut model = spec.build(1).expect("offline model");
    let mut telemetry = Telemetry::new();
    let outcome = run_packing_recorded(workload, &mut model, &mut telemetry);
    let decisions = telemetry
        .journal
        .iter()
        .filter_map(|record| match record.event {
            Event::VmPlaced { vm, pm, .. } => Some((vm, Some(pm))),
            Event::VmRejected { vm, .. } => Some((vm, None)),
            _ => None,
        })
        .collect();
    (decisions, outcome)
}

fn online_decisions(
    workload: &slackvm::workload::Workload,
    spec: &ModelSpec,
) -> (Vec<(VmId, Option<PmId>)>, slackvm_serve::ServiceReport) {
    let service = PlacementService::start(ServeConfig {
        shards: 1,
        deterministic: true,
        model: spec.clone(),
        ..ServeConfig::default()
    })
    .expect("service start");
    let summary = serve_replay(workload, &service).expect("serve replay");
    let decisions = summary.decisions.iter().map(|d| (d.vm, d.pm)).collect();
    (decisions, service.stop())
}

#[test]
fn deterministic_serve_reproduces_offline_packing_event_for_event() {
    let workload = scenarios::paper_week_f(120).generate(42);
    let spec = ModelSpec::default_shared();
    let (offline, outcome) = offline_decisions(&workload, &spec);
    let (online, report) = online_decisions(&workload, &spec);

    assert_eq!(online.len(), outcome.deployments as usize);
    assert_eq!(online, offline, "decision sequences diverged");
    assert_eq!(
        report.admitted() + report.rejected(),
        outcome.deployments as u64
    );
    assert_eq!(report.rejected(), outcome.rejections as u64);
    assert_eq!(report.opened_pms(), outcome.opened_pms);
    report.check_invariants().expect("final state invariants");
}

#[test]
fn capped_fleet_rejections_match_offline_too() {
    // A deliberately small fleet forces rejections, so the equality
    // also covers the rejected path and the post-rejection state.
    let workload = scenarios::devtest_churn(150).generate(7);
    let spec = ModelSpec::Shared {
        topology: "cores=16".into(),
        mem_mib: gib(64),
        policy: "best-fit".into(),
        fleet_cap: Some(6),
    };
    let (offline, outcome) = offline_decisions(&workload, &spec);
    assert!(outcome.rejections > 0, "scenario must exercise rejections");
    let (online, report) = online_decisions(&workload, &spec);
    assert_eq!(online, offline, "decision sequences diverged");
    assert_eq!(report.rejected(), outcome.rejections as u64);
    assert_eq!(report.opened_pms(), outcome.opened_pms);
    report.check_invariants().expect("final state invariants");
}

/// Drives arrivals and synthesized departures through a single-shard
/// deterministic service, injecting `FailPm` control ops at the same
/// `(time, pm)` points the offline engine would, with the offline
/// engine's exact event discipline (failures due at or before an
/// event's time fire first). Returns the arrival decision sequence,
/// the summed `(hosts_failed, evicted, replaced, lost)` from the
/// `PmFailed` acks, and the final service report.
#[allow(clippy::type_complexity)]
fn online_decisions_with_failures(
    workload: &slackvm::workload::Workload,
    spec: &ModelSpec,
    failures: &[(u64, PmId)],
) -> (
    Vec<(VmId, Option<PmId>)>,
    (u32, u32, u32, u32),
    slackvm_serve::ServiceReport,
) {
    let service = PlacementService::start(ServeConfig {
        shards: 1,
        deterministic: true,
        model: spec.clone(),
        ..ServeConfig::default()
    })
    .expect("service start");

    let mut queue = EventQueue::new();
    for (t, event) in &workload.events {
        if let slackvm::workload::WorkloadEvent::Arrival(vm) = event {
            queue.push(*t, SimEvent::Arrival(vm.clone()));
        }
    }
    let mut failure_queue = failures.to_vec();
    failure_queue.sort_by_key(|(t, pm)| (*t, *pm));
    let mut failure_idx = 0usize;

    let mut decisions = Vec::new();
    let (mut hosts_failed, mut evicted, mut replaced, mut lost) = (0u32, 0u32, 0u32, 0u32);
    while let Some((t, event)) = queue.pop() {
        while failure_idx < failure_queue.len() && failure_queue[failure_idx].0 <= t {
            let (_, pm) = failure_queue[failure_idx];
            failure_idx += 1;
            let reply = service.call(Op::FailPm { shard: 0, pm }).expect("fail-pm");
            let Outcome::PmFailed {
                evicted: e,
                replaced: r,
                lost: l,
            } = reply.outcome
            else {
                panic!("fail-pm answered {:?}", reply.outcome);
            };
            hosts_failed += 1;
            evicted += e;
            replaced += r;
            lost += l;
        }
        match event {
            SimEvent::Arrival(vm) => {
                let reply = service
                    .call(Op::Place {
                        id: vm.id,
                        spec: vm.spec,
                    })
                    .expect("place");
                match reply.outcome {
                    Outcome::Placed(pm) => {
                        decisions.push((vm.id, Some(pm)));
                        queue.push(vm.departure_secs.max(t + 1), SimEvent::Departure(vm.id));
                    }
                    Outcome::Rejected => decisions.push((vm.id, None)),
                    other => panic!("placement answered {other:?}"),
                }
            }
            SimEvent::Departure(id) => {
                let reply = service.call(Op::Remove { id }).expect("remove");
                // A departure finds its VM unless evacuation lost it.
                assert!(
                    matches!(reply.outcome, Outcome::Removed(_) | Outcome::UnknownVm),
                    "departure answered {:?}",
                    reply.outcome
                );
            }
            SimEvent::Resize { .. } => {
                unreachable!("the offline failure engine replays arrivals only")
            }
        }
    }
    (decisions, (hosts_failed, evicted, replaced, lost), service.stop())
}

#[test]
fn online_failpm_evacuation_matches_offline_failure_injection() {
    // A capped fleet sized from an unbounded probe run, so failing
    // hosts mid-trace makes some evictions genuinely unplaceable —
    // the equality must cover the lost path, not just re-placements.
    let workload = scenarios::devtest_churn(150).generate(7);
    let spec_probe = ModelSpec::Shared {
        topology: "cores=16".into(),
        mem_mib: gib(64),
        policy: "best-fit".into(),
        fleet_cap: None,
    };
    let mut probe = spec_probe.build(1).expect("probe model");
    let cap = slackvm::sim::run_packing(&workload, &mut probe).opened_pms;
    let spec = ModelSpec::Shared {
        topology: "cores=16".into(),
        mem_mib: gib(64),
        policy: "best-fit".into(),
        fleet_cap: Some(cap),
    };
    // Fail two-thirds of the fleet mid-trace: the survivors cannot
    // absorb the evictions (the cap forbids opening replacements), so
    // some VMs are genuinely lost, plus one early single-host failure
    // whose evictions all re-place.
    let mut failures = vec![(86_400u64, PmId(0))];
    failures.extend((0..cap * 2 / 3).map(|i| (3 * 86_400, PmId(i))));

    // Offline oracle: the real failure-injection engine, recorded so
    // the per-arrival decisions and per-VM evacuation outcomes are
    // both visible.
    let DeploymentModel::Shared(mut pool) = spec.build(1).expect("offline model") else {
        panic!("shared spec builds a shared model");
    };
    let mut telemetry = Telemetry::new();
    let (outcome, stats) = slackvm::sim::run_packing_with_failures_recorded(
        &workload,
        &mut pool,
        &failures,
        &mut telemetry,
    );
    let offline: Vec<(VmId, Option<PmId>)> = telemetry
        .journal
        .iter()
        .filter_map(|record| match record.event {
            Event::VmPlaced { vm, pm, .. } => Some((vm, Some(pm))),
            Event::VmRejected { vm, .. } => Some((vm, None)),
            _ => None,
        })
        .collect();
    let mut offline_lost: Vec<VmId> = telemetry
        .journal
        .iter()
        .filter_map(|record| match record.event {
            Event::VmLost { vm } => Some(vm),
            _ => None,
        })
        .collect();
    offline_lost.sort();

    let (online, (hosts_failed, evicted, replaced, lost), report) =
        online_decisions_with_failures(&workload, &spec, &failures);

    assert_eq!(online, offline, "decision sequences diverged");
    assert_eq!(hosts_failed, stats.hosts_failed);
    assert_eq!(evicted, stats.vms_evicted);
    assert_eq!(replaced, stats.vms_replaced);
    assert_eq!(lost, stats.vms_lost);
    assert!(lost > 0, "the capped fleet must actually lose VMs");
    assert_eq!(report.rejected(), outcome.rejections as u64 + lost as u64,
        "online rejections = offline arrival rejections + evacuation losses (each loss is a rejected re-placement)");

    let mut online_lost = report.lost_vms.clone();
    online_lost.sort();
    assert_eq!(online_lost, offline_lost, "lost VM identities diverged");

    // The final states are bit-identical modulo ordering: evictions,
    // re-placements, departures of survivors, and the failed set.
    assert_eq!(
        report.shards[0].model.capture_state().normalized(),
        DeploymentModel::Shared(pool).capture_state().normalized(),
        "final cluster states diverged"
    );
    report.check_invariants().expect("final state invariants");
}

#[test]
fn every_policy_round_trips_through_the_service() {
    // Cheap smoke across the whole policy registry: online equals
    // offline for each policy on a small trace.
    let workload = scenarios::paper_week_f(40).generate(3);
    for policy in slackvm::sched::POLICY_NAMES {
        let spec = ModelSpec::Shared {
            topology: "cores=32".into(),
            mem_mib: gib(128),
            policy: (*policy).into(),
            fleet_cap: None,
        };
        let (offline, _) = offline_decisions(&workload, &spec);
        let (online, report) = online_decisions(&workload, &spec);
        assert_eq!(online, offline, "policy {policy} diverged");
        report.check_invariants().expect("invariants");
    }
}
