//! Property proofs for the consolidation planner.
//!
//! The unit tests inside `slackvm-rebalance` pin individual behaviors
//! on hand-built fixtures; this suite attacks the planner/validator/
//! executor stack with generated churn on *both* deployment models:
//! every accepted plan must preserve the capacity and oversubscription
//! invariants (checked by the models' own `check_invariants`, not by
//! trusting the planner), move VMs without losing or reshaping any,
//! stay inside its budget, and never touch a failed or draining PM —
//! while the validator must reject every invariant-violating mutation
//! of a genuine plan, and a plan computed against a stale snapshot
//! must be rejected whole, leaving the model untouched.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use slackvm::prelude::*;
use slackvm_rebalance::{
    apply_plan, plan_rebalance, plan_rebalance_avoiding, validate_plan, validate_plan_avoiding,
    Budget, RebalanceError,
};

/// A fresh model of either flavor on the paper's 32-core / 128 GiB
/// worker shape, first-fit so churn leaves real fragmentation behind.
fn model(dedicated: bool) -> DeploymentModel {
    let levels = [
        OversubLevel::of(1),
        OversubLevel::of(2),
        OversubLevel::of(3),
    ];
    if dedicated {
        DeploymentModel::Dedicated(DedicatedDeployment::new(PmConfig::of(32, gib(128)), levels))
    } else {
        DeploymentModel::Shared(SharedDeployment::with_policy(
            Arc::new(flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        ))
    }
}

/// Deterministic arrival/departure churn: a departure-heavy tail makes
/// the fleet fragment the way real fleets do (paper §VI — admission
/// only ever packs forward).
fn churn(model: &mut DeploymentModel, seed: u64, events: u64) {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut alive: Vec<VmId> = Vec::new();
    for i in 0..events {
        let r = next();
        if alive.len() > 3 && r % 3 == 0 {
            let id = alive.swap_remove((r >> 32) as usize % alive.len());
            model.remove(id).expect("alive VM removes");
        } else {
            let spec = VmSpec::of(
                1 + (r % 8) as u32,
                gib(1 + (r >> 8) % 24),
                OversubLevel::of(1 + ((r >> 16) % 3) as u32),
            );
            if model.deploy(VmId(i), spec).is_ok() {
                alive.push(VmId(i));
            }
        }
    }
}

/// Every live placement as `vm -> (spec, level)` — the conservation
/// ledger a consolidation pass must not perturb.
fn ledger(model: &DeploymentModel) -> BTreeMap<VmId, VmSpec> {
    model
        .capture_state()
        .placements()
        .map(|p| (p.vm, p.spec))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property: on both models, under arbitrary churn
    /// and an arbitrary (valid) budget, an accepted plan applies
    /// cleanly, frees exactly what it promised, conserves every VM
    /// byte-for-byte, and leaves a cluster that passes its own
    /// invariant audit.
    #[test]
    fn accepted_plans_preserve_invariants_on_both_models(
        seed in any::<u64>(),
        events in 24u64..140,
        max_migrations in 1u32..24,
        max_moved_gib in 4u64..128,
    ) {
        for dedicated in [false, true] {
            let mut live = model(dedicated);
            churn(&mut live, seed, events);
            live.check_invariants().expect("churned state is legal");
            let before = ledger(&live);
            let budget = Budget {
                max_migrations,
                max_moved_mem_mib: gib(max_moved_gib),
                max_concurrent: 4,
            };
            let plan = plan_rebalance(&live, &budget).expect("planner runs");
            prop_assert!(plan.moves.len() as u32 <= budget.max_migrations);
            prop_assert!(plan.moved_mem_mib <= budget.max_moved_mem_mib);
            validate_plan(&live, &plan).expect("fresh plan validates");

            let active_before = live.active_pms();
            let report = apply_plan(&mut live, &plan).expect("fresh plan applies");
            live.check_invariants().expect("post-apply invariants");
            prop_assert_eq!(report.active_before, active_before);
            prop_assert!(report.active_after <= active_before);
            prop_assert_eq!(report.pms_freed(), plan.pms_freed);
            prop_assert_eq!(report.migrations as usize, plan.moves.len());
            prop_assert_eq!(ledger(&live), before, "consolidation must conserve VMs");
        }
    }

    /// Mutating any single aspect of a genuine plan — endpoints, spec,
    /// duplication, budget conformance — must be caught by the
    /// validator before anything moves.
    #[test]
    fn validator_rejects_every_invariant_violating_mutation(
        seed in any::<u64>(),
        events in 40u64..140,
        kind in 0usize..5,
    ) {
        let mut live = model(false);
        churn(&mut live, seed, events);
        let plan = plan_rebalance(&live, &Budget::default()).expect("planner runs");
        prop_assume!(!plan.is_empty());

        let mut tampered = plan.clone();
        match kind {
            0 => {
                // Swapped endpoints: the VM is not at `from`.
                let mv = &mut tampered.moves[0];
                std::mem::swap(&mut mv.from, &mut mv.to);
            }
            1 => tampered.moves[0].to = tampered.moves[0].from,
            2 => tampered.moves[0].to = PmId(u32::MAX),
            3 => {
                // A spec lie: claims a different shape than the live VM.
                let mv = &mut tampered.moves[0];
                mv.spec = VmSpec::of(mv.spec.vcpus() + 1, mv.spec.mem_mib(), mv.spec.level);
            }
            _ => {
                let dup = tampered.moves[0];
                tampered.moves.push(dup);
            }
        }
        prop_assert!(
            validate_plan(&live, &tampered).is_err(),
            "mutation kind {} must be rejected",
            kind
        );
        // And because apply validates first, the model is untouched.
        let before = live.capture_state().normalized();
        prop_assert!(apply_plan(&mut live, &tampered).is_err());
        prop_assert_eq!(live.capture_state().normalized(), before);
    }
}

#[test]
fn planner_never_touches_failed_or_draining_pms() {
    let mut live = model(false);
    churn(&mut live, 0xC0FFEE, 120);
    // Knock one PM over and put another into the draining set; the
    // planner must route around both, as source and as destination.
    live.fail_host(PmId(0));
    let avoid: BTreeSet<PmId> = [PmId(1)].into();
    let plan =
        plan_rebalance_avoiding(&live, &Budget::default(), &avoid).expect("planner runs");
    for mv in &plan.moves {
        for pm in [mv.from, mv.to] {
            assert_ne!(pm, PmId(0), "failed PM touched: {mv:?}");
            assert_ne!(pm, PmId(1), "draining PM touched: {mv:?}");
        }
    }
    validate_plan_avoiding(&live, &plan, &avoid).expect("avoiding plan validates");
}

/// The stale-snapshot regression, on both models: a plan computed
/// before the cluster changed is rejected whole — never partially
/// applied — and the rejection classifies as `Stale`.
#[test]
fn a_stale_snapshot_plan_is_rejected_whole_on_both_models() {
    for dedicated in [false, true] {
        let mut live = model(dedicated);
        // Two near-full PMs, then the first drains to one straggler:
        // the canonical departure-fragmentation shape.
        let spec = |v, m| VmSpec::of(v, gib(m), OversubLevel::of(1));
        live.deploy(VmId(0), spec(20, 80)).unwrap();
        live.deploy(VmId(1), spec(20, 80)).unwrap();
        live.remove(VmId(0)).unwrap();
        live.deploy(VmId(2), spec(4, 16)).unwrap();

        let plan = plan_rebalance(&live, &Budget::default()).expect("planner runs");
        assert!(!plan.is_empty(), "fixture must fragment (dedicated={dedicated})");

        // The cluster moves on: the planned straggler departs.
        live.remove(VmId(2)).unwrap();
        let before = live.capture_state().normalized();
        let err = apply_plan(&mut live, &plan).expect_err("stale plan must be rejected");
        assert!(
            matches!(err, RebalanceError::Stale(_)),
            "expected Stale, got {err:?}"
        );
        assert_eq!(
            live.capture_state().normalized(),
            before,
            "rejection must leave the model untouched (dedicated={dedicated})"
        );
        live.check_invariants().unwrap();
    }
}
