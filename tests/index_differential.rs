//! Differential guard for the incremental placement index: replaying
//! the same trace with `IndexMode::Naive` and `IndexMode::Incremental`
//! must produce *identical decisions* — the same [`PackingOutcome`] and
//! the same per-event VM→PM placements — on every deployment model and
//! policy. Telemetry counters are explicitly out of scope (the index
//! legitimately does less scoring work).

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::workload::inject_resizes;
use slackvm_suite::paper_levels;

/// Replays `workload` through the model built by `make`, capturing the
/// packing outcome plus the full placement decision sequence
/// `(time, vm, pm)` from the event journal.
fn replay(
    workload: &Workload,
    mode: IndexMode,
    make: impl Fn() -> DeploymentModel,
) -> (PackingOutcome, Vec<(u64, VmId, PmId)>) {
    let mut model = make().with_index_mode(mode);
    let mut telemetry = Telemetry::new();
    let outcome = run_packing_recorded(workload, &mut model, &mut telemetry);
    let picks = telemetry
        .journal
        .iter()
        .filter_map(|r| match r.event {
            Event::VmPlaced { vm, pm, .. } => Some((r.time_secs, vm, pm)),
            _ => None,
        })
        .collect();
    (outcome, picks)
}

/// Asserts decision-identity of the two index modes for one model
/// constructor over one workload.
fn assert_decision_identical(workload: &Workload, make: impl Fn() -> DeploymentModel) {
    let (out_naive, picks_naive) = replay(workload, IndexMode::Naive, &make);
    let (out_incr, picks_incr) = replay(workload, IndexMode::Incremental, &make);
    assert_eq!(out_naive, out_incr, "packing outcomes diverged");
    assert_eq!(
        picks_naive.len(),
        picks_incr.len(),
        "placement counts diverged"
    );
    for (a, b) in picks_naive.iter().zip(&picks_incr) {
        assert_eq!(a, b, "placement decision diverged");
    }
}

fn week_f(seed: u64, population: u32) -> Workload {
    scenarios::paper_week_f(population).generate(seed)
}

fn dedicated() -> DeploymentModel {
    DeploymentModel::Dedicated(DedicatedDeployment::new(
        PmConfig::simulation_host(),
        paper_levels(),
    ))
}

fn shared_default() -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)))
}

fn shared_paper_pure() -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::paper_pure(Arc::new(flat(32)), gib(128)))
}

fn shared_weighted() -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::with_policy(
        Arc::new(flat(32)),
        gib(128),
        PlacementPolicy::weighted(vec![
            (1.0, Box::new(ProgressScorer::paper())),
            (0.5, Box::new(BestFitScorer)),
        ]),
    ))
}

/// Short trace, all models — fast enough for a CI smoke gate
/// (`cargo test --test index_differential smoke`).
#[test]
fn smoke_short_trace_is_decision_identical_on_every_model() {
    let scenario = scenarios::paper_week_f(30);
    let w = WorkloadGenerator::new(WorkloadSpec {
        catalog: scenario.catalog.clone(),
        mix: scenario.mix.clone(),
        arrivals: ArrivalModel::constant(30, 86_400, 86_400),
        seed: 11,
    })
    .generate();
    for make in [
        dedicated as fn() -> DeploymentModel,
        shared_default,
        shared_paper_pure,
        shared_weighted,
    ] {
        assert_decision_identical(&w, make);
    }
}

#[test]
fn dedicated_first_fit_week_is_decision_identical() {
    assert_decision_identical(&week_f(101, 120), dedicated);
}

#[test]
fn shared_default_composite_week_is_decision_identical() {
    assert_decision_identical(&week_f(102, 120), shared_default);
}

#[test]
fn shared_paper_pure_week_is_decision_identical() {
    assert_decision_identical(&week_f(103, 120), shared_paper_pure);
}

#[test]
fn shared_weighted_week_is_decision_identical() {
    assert_decision_identical(&week_f(104, 100), shared_weighted);
}

#[test]
fn resize_churn_week_is_decision_identical_on_both_models() {
    let base = week_f(105, 100);
    let w = inject_resizes(&base, &catalog::ovhcloud(), 0.6, 0xC0FFEE);
    assert_decision_identical(&w, dedicated);
    assert_decision_identical(&w, shared_default);
}

#[test]
fn compacting_replay_is_decision_identical() {
    // Compaction migrates VMs between hosts mid-replay — the index must
    // track both migration endpoints to stay coherent.
    let w = week_f(106, 80);
    let run = |mode: IndexMode| {
        let mut s = SharedDeployment::new(Arc::new(flat(32)), gib(128));
        s.cluster.set_index_mode(mode);
        run_packing_compacting(&w, &mut s, 6 * 3_600)
    };
    let (out_naive, stats_naive) = run(IndexMode::Naive);
    let (out_incr, stats_incr) = run(IndexMode::Incremental);
    assert_eq!(out_naive, out_incr);
    assert_eq!(stats_naive, stats_incr);
}

#[test]
fn failure_injected_replay_is_decision_identical() {
    // Host failures retire slots; repairs and evicted-VM re-placement
    // must see the same candidates in both modes.
    let w = week_f(107, 80);
    let failures = vec![
        (86_400, PmId(0)),
        (2 * 86_400, PmId(1)),
        (4 * 86_400, PmId(0)),
    ];
    let run = |mode: IndexMode| {
        let mut s = SharedDeployment::new(Arc::new(flat(32)), gib(128));
        s.cluster.set_index_mode(mode);
        run_packing_with_failures(&w, &mut s, &failures)
    };
    let (out_naive, stats_naive) = run(IndexMode::Naive);
    let (out_incr, stats_incr) = run(IndexMode::Incremental);
    assert_eq!(out_naive, out_incr);
    assert_eq!(stats_naive, stats_incr);
}

#[test]
fn incremental_index_does_less_scoring_work() {
    // The point of the index: `sched.candidates_scored` must drop on a
    // growing fleet (the gate pre-filters hopeless hosts), while the
    // decisions stay identical (guarded above).
    let w = week_f(108, 100);
    let scored = |mode: IndexMode| {
        let mut model = shared_default().with_index_mode(mode);
        let mut telemetry = Telemetry::new();
        run_packing_recorded(&w, &mut model, &mut telemetry);
        telemetry.metrics.counter("sched.candidates_scored")
    };
    let naive = scored(IndexMode::Naive);
    let incremental = scored(IndexMode::Incremental);
    assert!(
        incremental <= naive,
        "index must never score more than the naive scan ({incremental} > {naive})"
    );
}
