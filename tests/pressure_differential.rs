//! Differential proof that the online pressure executor is the
//! offline one, plus the crash test for a journal holding interleaved
//! admission, consolidation, and mitigation migrations.
//!
//! The offline executor (`plan_mitigation` + `apply_plan` against a
//! `DeploymentModel`) and the online executor (the per-shard pressure
//! tick inside `slackvm-serve`) share the estimator pipeline, the
//! scorer, the planner, and the validator, but execute through
//! different code paths — one borrows the model exclusively, the other
//! interleaves with live admission and journals every migration as a
//! WAL record. This suite drives both with the same churn and the same
//! synthesized usage signal and proves they converge to the *same*
//! cluster state, move for move; then delivers a real `SIGKILL` to a
//! service running *both* background planes mid-flight and requires
//! recovery and the fsck decision-replay proof to hold over a journal
//! where admission, consolidation, and mitigation records interleave.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use slackvm::prelude::*;
use slackvm_durable::{fsck_shard, recover_shard, scan_wal, shard_dir, Manifest, WalOp, WAL_FILE};
use slackvm_pressure::{
    observe_model, plan_mitigation_avoiding, score_pressure, synth_frac, EstimatorConfig,
    PressureConfig, PressureState, StateKey, UsageTracker,
};
use slackvm_rebalance::{apply_plan, Budget, PlannedMove};
use slackvm_serve::{
    DurableOptions as ServeDurableOptions, FsyncPolicy, ModelSpec, Op, Outcome, PlacementService,
    PressureOptions, RebalanceOptions, ServeConfig,
};

/// The skew both executors synthesize usage from.
const USAGE_SEED: u64 = 42;
const HOT_FRAC: f64 = 0.5;

/// A unique scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slackvm-press-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// First-fit on the paper worker shape, same as the rebalance
/// differential, so hotspots form the way fragmentation does.
fn first_fit_spec() -> ModelSpec {
    ModelSpec::Shared {
        topology: "cores=32".into(),
        mem_mib: gib(128),
        policy: "first-fit".into(),
        fleet_cap: None,
    }
}

/// One admission step, identical for both executors.
enum Step {
    Place(VmId, VmSpec),
    Remove(VmId),
}

/// Deterministic departure-heavy churn, generated once and fed to both
/// sides so any state divergence is an executor bug, not input skew.
fn steps(seed: u64, events: u64) -> Vec<Step> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut alive: Vec<VmId> = Vec::new();
    let mut out = Vec::new();
    for i in 0..events {
        let r = next();
        if alive.len() > 3 && r % 3 == 0 {
            let id = alive.swap_remove((r >> 32) as usize % alive.len());
            out.push(Step::Remove(id));
        } else {
            let spec = VmSpec::of(
                1 + (r % 8) as u32,
                gib(1 + (r >> 8) % 24),
                OversubLevel::of(1 + ((r >> 16) % 3) as u32),
            );
            alive.push(VmId(i));
            out.push(Step::Place(VmId(i), spec));
        }
    }
    out
}

/// Runs the offline executor to quiescence, mirroring the online tick
/// exactly: observe the synthesized signal through the estimator
/// pipeline, plan with the carried hysteresis memory, apply the whole
/// plan, then re-score the live model for next round's memory.
fn offline_converge(steps: &[Step], budget: &Budget) -> (Vec<PlannedMove>, DeploymentModel) {
    let config = PressureConfig::default();
    let mut model = first_fit_spec().build(1).expect("offline model");
    for step in steps {
        match step {
            Step::Place(id, spec) => {
                model.deploy(*id, *spec).expect("elastic fleet admits");
            }
            Step::Remove(id) => {
                model.remove(*id).expect("alive VM removes");
            }
        }
    }
    let mut tracker = UsageTracker::new(EstimatorConfig::default());
    let mut prev: BTreeMap<StateKey, PressureState> = BTreeMap::new();
    let mut moves = Vec::new();
    for round in 0.. {
        assert!(round < 64, "offline mitigation never quiesced");
        observe_model(&mut tracker, &model, |vm| {
            synth_frac(USAGE_SEED, vm, HOT_FRAC)
        });
        let plan = {
            let t = &tracker;
            plan_mitigation_avoiding(
                &model,
                &config,
                budget,
                &|vm| t.demand(vm),
                &Default::default(),
                &prev,
            )
            .expect("planner runs")
        };
        if plan.is_empty() {
            break;
        }
        apply_plan(&mut model, &plan.plan).expect("fresh plan applies");
        let t = &tracker;
        prev = score_pressure(&model, &config, &|vm| t.demand(vm), &prev).states();
        moves.extend(plan.plan.moves);
    }
    model.check_invariants().expect("offline invariants");
    (moves, model)
}

#[test]
fn online_pressure_tick_matches_offline_apply_move_for_move() {
    let dir = scratch("diff");
    // `max_concurrent` covers any whole plan, so one online tick
    // executes exactly one offline plan-apply round and the two
    // executors iterate in lockstep.
    let budget = Budget {
        max_migrations: 16,
        max_moved_mem_mib: gib(256),
        max_concurrent: 16,
    };
    let churn = steps(0x4, 90);
    let (offline_moves, offline_model) = offline_converge(&churn, &budget);
    assert!(
        !offline_moves.is_empty(),
        "the skew must produce hotspots or the differential proves nothing"
    );

    // Online: same churn through a single-shard durable service, then
    // explicit pressure ticks (the interval is an hour so the timer
    // never races the trigger) until the executor finds nothing.
    let svc = PlacementService::start(ServeConfig {
        shards: 1,
        model: first_fit_spec(),
        durable: Some(ServeDurableOptions {
            fsync: FsyncPolicy::Off,
            ..ServeDurableOptions::new(&dir)
        }),
        pressure: Some(PressureOptions {
            every: Duration::from_secs(3600),
            budget,
            usage_seed: USAGE_SEED,
            hot_frac: HOT_FRAC,
            ..PressureOptions::default()
        }),
        ..ServeConfig::default()
    })
    .expect("service starts");
    for step in &churn {
        let reply = match step {
            Step::Place(id, spec) => svc.call(Op::Place {
                id: *id,
                spec: *spec,
            }),
            Step::Remove(id) => svc.call(Op::Remove { id: *id }),
        }
        .expect("call");
        assert!(
            matches!(reply.outcome, Outcome::Placed(_) | Outcome::Removed(_)),
            "{reply:?}"
        );
    }
    let mut online_migrations = 0u64;
    for round in 0.. {
        assert!(round < 64, "online mitigation never quiesced");
        let tick = svc.trigger_pressure(0).expect("tick");
        assert_eq!(tick.skipped, None, "no interlock applies here");
        assert_eq!(tick.deferred, 0, "budget covers whole plans");
        if tick.migrations == 0 {
            break;
        }
        online_migrations += u64::from(tick.migrations);
    }
    assert_eq!(online_migrations as usize, offline_moves.len());
    svc.stop().check_invariants().expect("online invariants");

    // The journal proves the executors made the same moves in the same
    // order...
    let scan = scan_wal(&shard_dir(&dir, 0).join(WAL_FILE)).expect("scan");
    let journalled: Vec<(VmId, PmId, PmId)> = scan
        .records
        .iter()
        .filter_map(|r| match r.op {
            WalOp::Migrate { id, from, to } => Some((id, from, to)),
            _ => None,
        })
        .collect();
    let planned: Vec<(VmId, PmId, PmId)> = offline_moves
        .iter()
        .map(|mv| (mv.vm, mv.from, mv.to))
        .collect();
    assert_eq!(journalled, planned, "executors diverged");

    // ...and recovery replays that journal onto the exact state the
    // offline executor reached.
    let manifest = Manifest::load(&dir).expect("manifest");
    let mut recovered = first_fit_spec().build(manifest.shards).expect("model");
    recover_shard(&dir, 0, &mut recovered).expect("recovery");
    assert_eq!(
        recovered.capture_state().normalized(),
        offline_model.capture_state().normalized(),
        "online and offline executors reached different states"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Child half of the crash test: a durable single-shard service running
/// *both* background planes on aggressive timers, churned so that the
/// canonical fragmentation pattern (consolidation fodder) and hot
/// 16-core pairs (mitigation fodder, with every VM synthesized hot)
/// interleave — so the journal fills with admission, consolidation,
/// and mitigation records mixed together. A no-op unless
/// `SLACKVM_CRASH_PRESS_DIR` is set.
#[test]
fn crash_victim_pressure() {
    let Ok(dir) = std::env::var("SLACKVM_CRASH_PRESS_DIR") else {
        return;
    };
    let config = ServeConfig {
        shards: 1,
        queue_depth: 256,
        batch_max: 32,
        model: first_fit_spec(),
        durable: Some(ServeDurableOptions {
            fsync: FsyncPolicy::Every,
            snapshot_every: 512,
            retain: 2,
            ..ServeDurableOptions::new(&dir)
        }),
        rebalance: Some(RebalanceOptions {
            every: Duration::from_millis(1),
            budget: Budget::default(),
        }),
        pressure: Some(PressureOptions {
            every: Duration::from_millis(1),
            usage_seed: USAGE_SEED,
            hot_frac: 1.0,
            ..PressureOptions::default()
        }),
        ..ServeConfig::default()
    };
    let svc = PlacementService::start(config).expect("victim starts");
    let spec = |v, m| VmSpec::of(v, gib(m), OversubLevel::of(1));
    for round in 0..1_000_000u64 {
        let base = round * 6;
        // Consolidation fodder: two big VMs, one departs, a straggler
        // lands in the hole.
        svc.call(Op::Place {
            id: VmId(base),
            spec: spec(20, 80),
        })
        .expect("big A");
        svc.call(Op::Place {
            id: VmId(base + 1),
            spec: spec(20, 80),
        })
        .expect("big B");
        svc.call(Op::Remove { id: VmId(base) }).expect("drain A");
        svc.call(Op::Place {
            id: VmId(base + 2),
            spec: spec(4, 16),
        })
        .expect("straggler");
        // Mitigation fodder: a hot 16-core pair fills one PM to a
        // score the pressure plane must spread out.
        svc.call(Op::Place {
            id: VmId(base + 3),
            spec: spec(16, 16),
        })
        .expect("hot A");
        svc.call(Op::Place {
            id: VmId(base + 4),
            spec: spec(16, 16),
        })
        .expect("hot B");
        // Keep the fleet bounded: retire the previous round's leftovers.
        if round > 16 {
            let old = (round - 16) * 6;
            for id in [VmId(old + 1), VmId(old + 2), VmId(old + 3), VmId(old + 4)] {
                svc.call(Op::Remove { id }).expect("retire");
            }
        }
    }
    svc.stop();
}

#[test]
fn kill_nine_mid_mitigation_recovers_and_passes_fsck() {
    let dir = scratch("kill9-press");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "crash_victim_pressure", "--nocapture"])
        .env("SLACKVM_CRASH_PRESS_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim");

    // Kill only after the journal demonstrably contains migration
    // records — the whole point is crashing mid-mitigation.
    let wal = shard_dir(&dir, 0).join(WAL_FILE);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let has_migrate = std::fs::metadata(&wal)
            .map(|m| m.len() > 16 * 1024)
            .unwrap_or(false)
            && scan_wal(&wal)
                .map(|scan| {
                    scan.records
                        .iter()
                        .any(|r| matches!(r.op, WalOp::Migrate { .. }))
                })
                .unwrap_or(false);
        if has_migrate {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("victim exited on its own: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "victim never journalled a migration"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // Recovery replays the committed history — admissions and directed
    // migrations from both planes interleaved — and fsck proves the
    // replay from genesis lands on the exact recovered state.
    let manifest = Manifest::load(&dir).expect("manifest survives");
    let build = || {
        let spec = ModelSpec::from_manifest_model(&manifest.model);
        let mut model = spec.build(manifest.shards).expect("manifest model");
        model.set_index_mode(IndexMode::parse(&manifest.index).expect("manifest index"));
        model
    };
    let mut model = build();
    let report = recover_shard(&dir, 0, &mut model).expect("recovery");
    model.check_invariants().expect("recovered invariants");
    let mut fresh = build();
    let fsck = fsck_shard(&dir, 0, &model, &mut fresh).expect("fsck runs");
    assert!(fsck.ok(), "post-SIGKILL divergence: {:?}", fsck.mismatches);
    assert_eq!(fsck.records_checked, report.records_total);

    // And the service restarts cleanly against the directory, ready to
    // keep mitigating.
    let svc = PlacementService::start(ServeConfig {
        shards: 1,
        model: first_fit_spec(),
        durable: Some(ServeDurableOptions::new(&dir)),
        pressure: Some(PressureOptions::default()),
        ..ServeConfig::default()
    })
    .expect("restart");
    let recovered: u64 = svc.recovery_reports().iter().map(|r| r.records_total).sum();
    assert_eq!(recovered, report.records_total);
    svc.stop()
        .check_invariants()
        .expect("post-restart invariants");
    std::fs::remove_dir_all(&dir).ok();
}
