//! Full-stack fuzzing: randomly structured (but valid) traces replayed
//! through both deployment models, checking conservation invariants the
//! engine must uphold regardless of workload shape.

use std::sync::Arc;

use proptest::prelude::*;

use slackvm::prelude::*;
use slackvm::workload::WorkloadEvent;

/// A compact random trace description: per VM, an arrival slot, a
/// lifetime, a size, a level, and optionally a resize.
#[derive(Debug, Clone)]
struct FuzzVm {
    arrival: u64,
    lifetime: u64,
    vcpus: u32,
    mem_gib: u64,
    level: u32,
    resize: Option<(u32, u64)>,
}

fn fuzz_vm() -> impl Strategy<Value = FuzzVm> {
    (
        0u64..86_400,
        600u64..86_400,
        1u32..8,
        1u64..16,
        1u32..=3,
        prop::option::of((1u32..8, 1u64..16)),
    )
        .prop_map(
            |(arrival, lifetime, vcpus, mem_gib, level, resize)| FuzzVm {
                arrival,
                lifetime,
                vcpus,
                mem_gib,
                level,
                resize,
            },
        )
}

fn build_trace(vms: &[FuzzVm]) -> Workload {
    let mut events: Vec<(u64, WorkloadEvent)> = Vec::new();
    for (i, vm) in vms.iter().enumerate() {
        let id = VmId(i as u64);
        let spec = VmSpec::of(vm.vcpus, gib(vm.mem_gib), OversubLevel::of(vm.level));
        let instance = VmInstance {
            id,
            spec,
            class: UsageClass::Stress,
            usage: CpuUsageModel::Constant { base: 0.5 },
            seed: i as u64,
            arrival_secs: vm.arrival,
            departure_secs: vm.arrival + vm.lifetime,
        };
        events.push((vm.arrival, WorkloadEvent::Arrival(Box::new(instance))));
        events.push((vm.arrival + vm.lifetime, WorkloadEvent::Departure { id }));
        if let Some((vcpus, mem_gib)) = vm.resize {
            events.push((
                vm.arrival + vm.lifetime / 2,
                WorkloadEvent::Resize {
                    id,
                    vcpus,
                    mem_mib: gib(mem_gib),
                },
            ));
        }
    }
    events.sort_by_key(|(t, e)| {
        let class = match e {
            WorkloadEvent::Departure { .. } => 0u8,
            WorkloadEvent::Resize { .. } => 1,
            WorkloadEvent::Arrival(_) => 2,
        };
        (*t, class)
    });
    Workload { events }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_traces_replay_cleanly_through_both_models(
        vms in prop::collection::vec(fuzz_vm(), 1..60),
    ) {
        let w = build_trace(&vms);
        prop_assert!(w.validate().is_ok(), "fuzz builder must emit valid traces");

        // Dedicated model.
        let mut dedicated = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            [OversubLevel::of(1), OversubLevel::of(2), OversubLevel::of(3)],
        ));
        let base = run_packing(&w, &mut dedicated);
        prop_assert_eq!(base.rejections, 0, "unbounded clusters never reject");
        prop_assert_eq!(base.deployments as usize, vms.len());
        let (alloc, _) = dedicated.totals();
        prop_assert!(alloc.is_empty(), "dedicated drains clean");

        // Shared model.
        let mut shared = DeploymentModel::Shared(SharedDeployment::new(
            Arc::new(flat(32)),
            gib(128),
        ));
        let slack = run_packing(&w, &mut shared);
        prop_assert_eq!(slack.rejections, 0);
        prop_assert_eq!(slack.peak_alive_vms, base.peak_alive_vms);
        if let DeploymentModel::Shared(s) = &shared {
            for host in s.cluster.hosts() {
                prop_assert!(host.check_invariants().is_ok());
                prop_assert!(host.is_idle());
            }
            // Churn bookkeeping balances on a drained pool.
            let churn = s.total_churn();
            prop_assert_eq!(churn.cores_added, churn.cores_released);
        }
        // Peak stranding shares are proper fractions for both.
        for out in [&base, &slack] {
            prop_assert!((0.0..=1.0).contains(&out.at_peak.unallocated_cpu));
            prop_assert!((0.0..=1.0).contains(&out.at_peak.unallocated_mem));
        }
    }

    #[test]
    fn compacting_replays_of_random_traces_conserve_vms(
        vms in prop::collection::vec(fuzz_vm(), 1..40),
    ) {
        let w = build_trace(&vms);
        let mut pool = SharedDeployment::new(Arc::new(flat(32)), gib(128));
        let (out, _) = slackvm::sim::run_packing_compacting(&w, &mut pool, 6 * 3600);
        prop_assert_eq!(out.rejections, 0);
        for host in pool.cluster.hosts() {
            prop_assert!(host.check_invariants().is_ok());
            prop_assert!(host.is_idle());
        }
    }
}
