//! Property proofs for the hotspot-mitigation planner.
//!
//! The unit tests inside `slackvm-pressure` pin individual behaviors
//! on hand-built fixtures; this suite attacks the planner with
//! generated churn and a generated usage skew on *both* deployment
//! models, reusing the conservation harness the rebalance suite
//! established: a mitigation plan must only ever move VMs *off* PMs
//! the pressure report classified hot, only ever *onto* PMs it
//! classified cold, stay inside its migration budget, conserve every
//! VM byte-for-byte when applied, and leave a cluster that passes its
//! own invariant audit — and it must route around failed and avoided
//! PMs entirely.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use slackvm::prelude::*;
use slackvm_pressure::{
    plan_mitigation, plan_mitigation_avoiding, synth_frac, PressureConfig, PressureState,
};
use slackvm_rebalance::{apply_plan, validate_plan, Budget};

/// A fresh model of either flavor on the paper's 32-core / 128 GiB
/// worker shape, first-fit so churn leaves real skew behind.
fn model(dedicated: bool) -> DeploymentModel {
    let levels = [
        OversubLevel::of(1),
        OversubLevel::of(2),
        OversubLevel::of(3),
    ];
    if dedicated {
        DeploymentModel::Dedicated(DedicatedDeployment::new(PmConfig::of(32, gib(128)), levels))
    } else {
        DeploymentModel::Shared(SharedDeployment::with_policy(
            Arc::new(flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        ))
    }
}

/// Deterministic arrival/departure churn — same generator the
/// rebalance property suite uses, so the fleets fragment identically.
fn churn(model: &mut DeploymentModel, seed: u64, events: u64) {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut alive: Vec<VmId> = Vec::new();
    for i in 0..events {
        let r = next();
        if alive.len() > 3 && r % 3 == 0 {
            let id = alive.swap_remove((r >> 32) as usize % alive.len());
            model.remove(id).expect("alive VM removes");
        } else {
            let spec = VmSpec::of(
                1 + (r % 8) as u32,
                gib(1 + (r >> 8) % 24),
                OversubLevel::of(1 + ((r >> 16) % 3) as u32),
            );
            if model.deploy(VmId(i), spec).is_ok() {
                alive.push(VmId(i));
            }
        }
    }
}

/// Every live placement as `vm -> spec` — the conservation ledger a
/// mitigation pass must not perturb.
fn ledger(model: &DeploymentModel) -> BTreeMap<VmId, VmSpec> {
    model
        .capture_state()
        .placements()
        .map(|p| (p.vm, p.spec))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property: under arbitrary churn, an arbitrary
    /// usage skew, and an arbitrary (valid) budget, every planned move
    /// leaves a PM the before-report called hot and lands on one it
    /// called cold; the plan validates, applies cleanly, conserves
    /// every VM, and the audited invariants hold afterwards.
    #[test]
    fn mitigation_moves_only_hot_to_cold_and_conserves_vms(
        seed in any::<u64>(),
        events in 24u64..140,
        hot_frac in 0.0f64..1.0,
        max_migrations in 1u32..24,
    ) {
        for dedicated in [false, true] {
            let mut live = model(dedicated);
            churn(&mut live, seed, events);
            live.check_invariants().expect("churned state is legal");
            let before_ledger = ledger(&live);
            let budget = Budget {
                max_migrations,
                max_moved_mem_mib: gib(256),
                max_concurrent: 4,
            };
            let config = PressureConfig::default();
            let usage = |vm: VmId| synth_frac(seed, vm, hot_frac);
            let plan =
                plan_mitigation(&live, &config, &budget, &usage).expect("planner runs");
            prop_assert!(plan.len() as u32 <= budget.max_migrations);
            prop_assert!(plan.plan.moved_mem_mib <= budget.max_moved_mem_mib);
            prop_assert!(plan.hot_after <= plan.hot_before);

            let states = plan.before.states();
            for mv in &plan.plan.moves {
                let level = if dedicated { mv.spec.level.ratio() } else { 0 };
                prop_assert_eq!(
                    states.get(&(level, mv.from)).copied(),
                    Some(PressureState::Hot),
                    "victim pulled off a non-hot PM: {:?}",
                    mv
                );
                // Destinations classify cold before any move lands on
                // them (empty opened PMs score 0.0 and are cold too).
                prop_assert_eq!(
                    states.get(&(level, mv.to)).copied().unwrap_or(PressureState::Cold),
                    PressureState::Cold,
                    "spread onto a non-cold PM: {:?}",
                    mv
                );
            }

            validate_plan(&live, &plan.plan).expect("fresh plan validates");
            let report = apply_plan(&mut live, &plan.plan).expect("fresh plan applies");
            prop_assert_eq!(report.migrations as usize, plan.len());
            live.check_invariants().expect("post-apply invariants");
            prop_assert_eq!(ledger(&live), before_ledger, "mitigation must conserve VMs");
        }
    }

    /// Mitigation never resurrects the consolidation objective: a plan
    /// can only grow or hold the active-PM count — it spreads load, it
    /// never stacks VMs onto fewer machines.
    #[test]
    fn mitigation_never_shrinks_the_active_fleet(
        seed in any::<u64>(),
        events in 24u64..140,
        hot_frac in 0.0f64..1.0,
    ) {
        let mut live = model(false);
        churn(&mut live, seed, events);
        let usage = |vm: VmId| synth_frac(seed, vm, hot_frac);
        let active_before = live.active_pms();
        let plan = plan_mitigation(&live, &PressureConfig::default(), &Budget::default(), &usage)
            .expect("planner runs");
        apply_plan(&mut live, &plan.plan).expect("applies");
        prop_assert!(
            live.active_pms() >= active_before,
            "mitigation consolidated: {} -> {}",
            active_before,
            live.active_pms()
        );
    }
}

#[test]
fn planner_never_touches_failed_or_avoided_pms() {
    let mut live = model(false);
    churn(&mut live, 0xC0FFEE, 120);
    live.fail_host(PmId(0));
    let avoid: BTreeSet<PmId> = [PmId(1)].into();
    // Every VM runs hot so the planner wants to touch everything it may.
    let usage = |vm: VmId| synth_frac(7, vm, 1.0);
    let plan = plan_mitigation_avoiding(
        &live,
        &PressureConfig::default(),
        &Budget::default(),
        &usage,
        &avoid,
        &BTreeMap::new(),
    )
    .expect("planner runs");
    for mv in &plan.plan.moves {
        for pm in [mv.from, mv.to] {
            assert_ne!(pm, PmId(0), "failed PM touched: {mv:?}");
            assert_ne!(pm, PmId(1), "avoided PM touched: {mv:?}");
        }
    }
}

/// Determinism across repeated runs on identical inputs: byte-equal
/// JSON plans, the property replay and the offline/online differential
/// both lean on it.
#[test]
fn planning_is_deterministic_under_replay() {
    for dedicated in [false, true] {
        let build = || {
            let mut live = model(dedicated);
            churn(&mut live, 0xBEEF, 120);
            live
        };
        let usage = |vm: VmId| synth_frac(42, vm, 0.5);
        let a = plan_mitigation(&build(), &PressureConfig::default(), &Budget::default(), &usage)
            .expect("planner runs");
        let b = plan_mitigation(&build(), &PressureConfig::default(), &Budget::default(), &usage)
            .expect("planner runs");
        assert_eq!(a.to_json(), b.to_json(), "dedicated={dedicated}");
    }
}
