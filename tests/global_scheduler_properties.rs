//! Property-based tests of the global scheduler: placement policies,
//! scorers and the filter pipeline.

use proptest::prelude::*;

use slackvm::prelude::*;

fn candidate_strategy() -> impl Strategy<Value = Candidate> {
    (0u32..64, 0u32..=32, 0u64..=128, 0usize..40).prop_map(|(id, cores, mem, vms)| Candidate {
        id: PmId(id),
        config: PmConfig::simulation_host(),
        alloc: AllocView::new(Millicores::from_cores(cores), gib(mem)),
        vms,
    })
}

fn vm_strategy() -> impl Strategy<Value = VmSpec> {
    (1u32..16, 1u64..64, 1u32..=3)
        .prop_map(|(vcpus, mem, level)| VmSpec::of(vcpus, gib(mem), OversubLevel::of(level)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn selected_pm_is_always_a_candidate(
        cands in prop::collection::vec(candidate_strategy(), 0..20),
        vm in vm_strategy(),
    ) {
        for policy in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::scored(ProgressScorer::paper()),
            PlacementPolicy::scored(BestFitScorer),
            PlacementPolicy::scored(WorstFitScorer),
            PlacementPolicy::scored(DotProductScorer),
            PlacementPolicy::scored(NormBasedGreedyScorer),
            PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15)),
            PlacementPolicy::weighted(vec![
                (1.0, Box::new(ProgressScorer::paper())),
                (0.5, Box::new(BestFitScorer)),
            ]),
        ] {
            match policy.select(&cands, &vm) {
                Some(pm) => prop_assert!(cands.iter().any(|c| c.id == pm)),
                None => prop_assert!(cands.is_empty()),
            }
        }
    }

    #[test]
    fn first_fit_is_minimum_id(
        cands in prop::collection::vec(candidate_strategy(), 1..20),
        vm in vm_strategy(),
    ) {
        let expected = cands.iter().map(|c| c.id).min();
        prop_assert_eq!(PlacementPolicy::FirstFit.select(&cands, &vm), expected);
    }

    #[test]
    fn every_scorer_is_finite(
        cand in candidate_strategy(),
        vm in vm_strategy(),
    ) {
        let scorers: Vec<Box<dyn Scorer>> = vec![
            Box::new(ProgressScorer::paper()),
            Box::new(BestFitScorer),
            Box::new(WorstFitScorer),
            Box::new(DotProductScorer),
            Box::new(NormBasedGreedyScorer),
            Box::new(CompositeScorer::progress_with_consolidation(0.15)),
        ];
        for s in scorers {
            let score = s.score(&cand.config, &cand.alloc, &vm);
            prop_assert!(score.is_finite(), "{} produced {score}", s.name());
        }
    }

    #[test]
    fn scored_selection_is_permutation_invariant(
        mut cands in prop::collection::vec(candidate_strategy(), 1..12),
        vm in vm_strategy(),
    ) {
        // Distinct ids required for a well-defined winner.
        cands.sort_by_key(|c| c.id);
        cands.dedup_by_key(|c| c.id);
        let policy = PlacementPolicy::scored(ProgressScorer::paper());
        let sorted = policy.select(&cands, &vm);
        cands.reverse();
        let reversed = policy.select(&cands, &vm);
        prop_assert_eq!(sorted, reversed);
    }

    #[test]
    fn selection_is_permutation_invariant_even_with_nan_scores(
        mut cands in prop::collection::vec(candidate_strategy(), 1..12),
        vm in vm_strategy(),
        nan_mask in prop::collection::vec(any::<bool>(), 12),
    ) {
        // A scorer that emits NaN for a subset of candidates. Before
        // selection ordering went total, one NaN poisoned `max_by`
        // (`partial_cmp(..).unwrap_or(Equal)`) and the winner depended
        // on iteration order; this property fails on that revert.
        struct NanFor(std::collections::BTreeSet<u32>);
        impl Scorer for NanFor {
            fn score(&self, _: &PmConfig, alloc: &AllocView, _: &VmSpec) -> f64 {
                let key = (alloc.mem_mib / gib(1)) as u32;
                if self.0.contains(&key) {
                    f64::NAN
                } else {
                    -(alloc.mem_mib as f64) // best-fit-ish real score
                }
            }
            fn name(&self) -> &'static str {
                "nan-for"
            }
        }
        cands.sort_by_key(|c| c.id);
        cands.dedup_by_key(|c| c.id);
        let poisoned: std::collections::BTreeSet<u32> = cands
            .iter()
            .zip(&nan_mask)
            .filter(|(_, &nan)| nan)
            .map(|(c, _)| (c.alloc.mem_mib / gib(1)) as u32)
            .collect();
        for policy in [
            PlacementPolicy::scored(NanFor(poisoned.clone())),
            PlacementPolicy::weighted(vec![
                (1.0, Box::new(NanFor(poisoned.clone()))),
                (0.25, Box::new(BestFitScorer)),
            ]),
        ] {
            let baseline = policy.select(&cands, &vm);
            // Every rotation and the reversal must agree.
            for rot in 0..cands.len() {
                let mut perm = cands.clone();
                perm.rotate_left(rot);
                prop_assert_eq!(policy.select(&perm, &vm), baseline);
            }
            let mut rev = cands.clone();
            rev.reverse();
            prop_assert_eq!(policy.select(&rev, &vm), baseline);
        }
        // A NaN score never wins while any candidate scored a real
        // number (NaN ranks lowest by contract). Checked on the plain
        // scored policy only: the weighted policy may legitimately skip
        // a negligible-span component, NaNs and all.
        let scored = PlacementPolicy::scored(NanFor(poisoned.clone()));
        if let Some(pm) = scored.select(&cands, &vm) {
            let is_poisoned = |c: &Candidate| poisoned.contains(&((c.alloc.mem_mib / gib(1)) as u32));
            let winner_nan = cands.iter().find(|c| c.id == pm).map(|c| is_poisoned(c)).unwrap_or(false);
            if cands.iter().any(|c| !is_poisoned(c)) {
                prop_assert!(!winner_nan, "NaN-scored {pm} beat a real score");
            }
        }
    }

    #[test]
    fn filters_only_shrink_the_choice(
        cands in prop::collection::vec(candidate_strategy(), 0..20),
        vm in vm_strategy(),
        ceiling in 0.0f64..=1.0,
    ) {
        let plain = Scheduler::new(PlacementPolicy::FirstFit);
        let filtered = Scheduler::new(PlacementPolicy::FirstFit)
            .with_filter(CpuCeilingFilter { ceiling });
        let all = plain.place(&cands, &vm);
        let some = filtered.place(&cands, &vm);
        // A filtered winner must also be eligible without filters...
        if let Some(pm) = some {
            prop_assert!(cands.iter().any(|c| c.id == pm));
            prop_assert!(all.is_some());
        }
        // ...and filtering never invents candidates.
        if all.is_none() {
            prop_assert!(some.is_none());
        }
    }

    #[test]
    fn composite_score_is_linear_in_weights(
        cand in candidate_strategy(),
        vm in vm_strategy(),
        w in 0.0f64..10.0,
    ) {
        let single = BestFitScorer.score(&cand.config, &cand.alloc, &vm);
        let composite = CompositeScorer::new(
            "w-bestfit",
            vec![(w, Box::new(BestFitScorer))],
        );
        let got = composite.score(&cand.config, &cand.alloc, &vm);
        prop_assert!((got - w * single).abs() < 1e-9 * (1.0 + got.abs()));
    }
}

#[test]
fn progress_scorer_beats_first_fit_on_a_constructed_complementarity_case() {
    // PM 0 is memory-saturated but CPU-rich (hosting 3:1 VMs); PM 1 is
    // fresh. First-Fit sends a CPU-heavy premium VM to PM 0 (it fits),
    // wasting the fresh PM's balance; the progress scorer sends it to
    // PM 0 as well *only if* that improves the ratio — here it does
    // (PM 0 ratio 6 > target 4, a CPU-heavy VM pulls it down).
    let cands = vec![
        Candidate {
            id: PmId(0),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(16), gib(96)), // ratio 6
            vms: 10,
        },
        Candidate {
            id: PmId(1),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(8), gib(32)), // ratio 4
            vms: 4,
        },
    ];
    let cpu_heavy = VmSpec::of(8, gib(8), OversubLevel::PREMIUM); // ratio 1
    let progress = PlacementPolicy::scored(ProgressScorer::paper());
    assert_eq!(progress.select(&cands, &cpu_heavy), Some(PmId(0)));
    // A strongly memory-heavy VM also lands on PM 0 — counterintuitive
    // but exactly Algorithm 2: PM 0 is already far from its target, so
    // the *marginal* degradation (|6.59−4| − |6−4| ≈ 0.59, load-scaled)
    // is smaller than knocking the balanced PM 1 off its target
    // (|5.33−4| ≈ 1.33). The algorithm concentrates unavoidable
    // imbalance where imbalance already lives.
    let mem_heavy = VmSpec::of(1, gib(16), OversubLevel::PREMIUM); // ratio 16
    assert_eq!(progress.select(&cands, &mem_heavy), Some(PmId(0)));
    // A *moderately* memory-heavy VM (ratio 6 < PM 0's ratio... equal,
    // keeps PM 0 at 6) scores 0 there but negative on PM 1: PM 0 again.
    // The preference flips only when the VM would rebalance PM 1 —
    // i.e. a VM slightly CPU-side of PM 1's ratio with PM 0 saturated
    // in CPU terms is steered by the load factor:
    let slightly_cpu = VmSpec::of(4, gib(12), OversubLevel::PREMIUM); // ratio 3
                                                                      // PM 0: next (96+12)/20 = 5.4, Δ 2->1.4: +0.6. PM 1: next 44/12 ≈
                                                                      // 3.67, Δ 0->0.33: −0.33·factor. PM 0 wins on genuine progress.
    assert_eq!(progress.select(&cands, &slightly_cpu), Some(PmId(0)));
}
