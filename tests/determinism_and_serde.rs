//! Full-stack determinism and serialization round-trips.

use std::sync::Arc;

use slackvm::experiments::{compare_packing, PackingConfig};
use slackvm::prelude::*;
use slackvm_suite::{paper_levels, test_workload};

fn quick_config(seed: u64) -> PackingConfig {
    PackingConfig {
        target_population: 100,
        seed,
        ..PackingConfig::default()
    }
}

#[test]
fn identical_seeds_reproduce_identical_outcomes() {
    let mix = DistributionPoint::by_letter('E').unwrap().mix();
    let a = compare_packing(&catalog::azure(), &mix, &quick_config(11));
    let b = compare_packing(&catalog::azure(), &mix, &quick_config(11));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_workload_but_not_the_shape() {
    let mix = DistributionPoint::by_letter('F').unwrap().mix();
    let a = compare_packing(&catalog::ovhcloud(), &mix, &quick_config(1));
    let b = compare_packing(&catalog::ovhcloud(), &mix, &quick_config(2));
    assert_ne!(a, b, "different seeds should differ somewhere");
    // ... but both replays keep the structural guarantees.
    for cmp in [&a, &b] {
        assert_eq!(cmp.baseline.rejections, 0);
        assert_eq!(cmp.slackvm.rejections, 0);
        assert_eq!(cmp.baseline.peak_alive_vms, cmp.slackvm.peak_alive_vms);
    }
}

#[test]
fn fig2_outcome_serializes() {
    let out = Fig2Scenario {
        step_secs: 2400,
        ..Fig2Scenario::default()
    }
    .run();
    let json = serde_json::to_string(&out).unwrap();
    let back: Fig2Outcome = serde_json::from_str(&json).unwrap();
    assert_eq!(out, back);
}

#[test]
fn packing_outcome_serializes() {
    let mix = LevelMix::three_level(50.0, 25.0, 25.0).unwrap();
    let cmp = compare_packing(&catalog::azure(), &mix, &quick_config(3));
    let json = serde_json::to_string(&cmp).unwrap();
    let back: slackvm::experiments::PackingComparison = serde_json::from_str(&json).unwrap();
    assert_eq!(cmp, back);
}

#[test]
fn workload_trace_roundtrips_through_json_and_replays_identically() {
    let w = test_workload(
        catalog::ovhcloud(),
        LevelMix::three_level(1.0, 1.0, 1.0).unwrap(),
        60,
        2,
        42,
    );
    let json = serde_json::to_string(&w).unwrap();
    let back: Workload = serde_json::from_str(&json).unwrap();
    assert_eq!(w, back);

    let run = |w: &Workload| {
        let mut model = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            paper_levels(),
        ));
        run_packing(w, &mut model)
    };
    assert_eq!(run(&w), run(&back));
}

#[test]
fn shared_pool_replay_is_independent_of_history() {
    // Replaying the same trace on a fresh pool twice in the same
    // process (allocator state, hash seeds, etc.) must not leak in.
    let w = test_workload(
        catalog::azure(),
        LevelMix::three_level(1.0, 0.0, 1.0).unwrap(),
        70,
        2,
        9,
    );
    let run = || {
        let mut model =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
        run_packing(&w, &mut model)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
}
