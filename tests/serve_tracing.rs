//! End-to-end checks of the request-scoped tracing plane and the
//! dedicated observability listener.
//!
//! - Every reply carries a nonzero, unique trace ID and stage
//!   timestamps that are mutually consistent (a request cannot leave
//!   the queue before the batch that drained it started).
//! - Sampling every request through a durable single-shard service
//!   yields Chrome-trace JSON whose five lifecycle stages all appear
//!   and whose child spans nest inside their `serve.request` parent on
//!   the same track.
//! - Wedging a shard flips `/healthz` to 503 naming the stalled shard,
//!   and the endpoint recovers once the worker resumes heartbeating.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use slackvm_model::{gib, OversubLevel, VmId, VmSpec};
use slackvm_serve::{
    DurableOptions, ModelSpec, ObsServer, Op, Outcome, PlacementService, ServeConfig, TraceLevel,
};

fn shared_config(shards: u32) -> ServeConfig {
    ServeConfig {
        shards,
        model: ModelSpec::Shared {
            topology: "cores=16".into(),
            mem_mib: gib(64),
            policy: "progress+bestfit".into(),
            fleet_cap: None,
        },
        ..ServeConfig::default()
    }
}

fn place(id: u64) -> Op {
    Op::Place {
        id: VmId(id),
        spec: VmSpec::of(2, gib(2), OversubLevel::of(2)),
    }
}

#[test]
fn every_reply_carries_a_unique_trace_id_and_monotone_stages() {
    let service = PlacementService::start(shared_config(1)).unwrap();
    let mut traces = std::collections::HashSet::new();
    for id in 0..200u64 {
        let reply = service.call(place(id)).unwrap();
        assert!(
            matches!(reply.outcome, Outcome::Placed(_)),
            "{:?}",
            reply.outcome
        );
        assert_ne!(reply.trace, 0, "reply {id} has no trace ID");
        assert!(reply.trace < 1 << 48, "trace IDs must stay JSON-safe");
        assert!(traces.insert(reply.trace), "trace ID collision at {id}");
        // The default level stamps stages: the dequeue happens at or
        // after the batch start the worker derives `latency_us` from,
        // and the decision comes after the dequeue.
        assert!(
            reply.queue_us >= reply.latency_us,
            "queue_us {} < latency_us {}",
            reply.queue_us,
            reply.latency_us
        );
        assert_eq!(reply.commit_us, 0, "no WAL on a non-durable service");
    }
    // Front-door answers (unknown VM) are traced too: an operator
    // grepping a trace ID out of an error reply must find it.
    let reply = service.call(Op::Remove { id: VmId(999_999) }).unwrap();
    assert_eq!(reply.outcome, Outcome::UnknownVm);
    assert_ne!(reply.trace, 0);
    assert!(traces.insert(reply.trace));
    service.stop().check_invariants().unwrap();
}

#[test]
fn trace_level_off_zeroes_the_stage_fields() {
    let service = PlacementService::start(ServeConfig {
        trace: TraceLevel::Off,
        ..shared_config(1)
    })
    .unwrap();
    let reply = service.call(place(1)).unwrap();
    assert_ne!(reply.trace, 0, "IDs are minted even with timing off");
    assert_eq!((reply.queue_us, reply.place_us, reply.commit_us), (0, 0, 0));
    let report = service.stop();
    assert!(report.trace_json.is_none(), "no sink without sampling");
    report.check_invariants().unwrap();
}

/// One parsed event from the hand-rolled Chrome trace rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Span {
    name: String,
    ts: u64,
    dur: u64,
    tid: u64,
}

/// Parses the exporter's deterministic output shape (each event is
/// `{"name":"...","cat":"slackvm","ph":"X","ts":N,"dur":N,"pid":1,"tid":N}`)
/// without a JSON library, so the check runs in every build flavour.
fn parse_chrome(json: &str) -> Vec<Span> {
    let field = |obj: &str, key: &str| -> String {
        let tagged = format!("\"{key}\":");
        let at = obj.find(&tagged).unwrap_or_else(|| panic!("{key} in {obj}"));
        let rest = &obj[at + tagged.len()..];
        rest.trim_start_matches('"')
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
            .collect()
    };
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    let body = &json["{\"traceEvents\":[".len()..];
    let end = body.rfind(']').expect("closing bracket");
    body[..end]
        .split("},{")
        .filter(|chunk| !chunk.trim().is_empty())
        .map(|chunk| Span {
            name: field(chunk, "name"),
            ts: field(chunk, "ts").parse().unwrap(),
            dur: field(chunk, "dur").parse().unwrap(),
            tid: field(chunk, "tid").parse().unwrap(),
        })
        .collect()
}

#[test]
fn sampled_lifecycles_render_all_five_stages_and_nest() {
    let dir = std::env::temp_dir().join(format!("slackvm-it-tracing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = PlacementService::start(ServeConfig {
        trace: TraceLevel::Sampled { every: 1 },
        durable: Some(DurableOptions::new(&dir)),
        ..shared_config(1)
    })
    .unwrap();
    for id in 0..50u64 {
        let reply = service.call(place(id)).unwrap();
        assert!(matches!(reply.outcome, Outcome::Placed(_)));
        assert!(reply.commit_us > 0, "durable replies carry the commit wall");
        // Close the lifecycle the way the TCP frontend does once the
        // reply bytes are written.
        service.note_reply_write(&reply, Instant::now());
    }
    let report = service.stop();
    let json = report.trace_json.as_deref().expect("sampling was on");
    let spans = parse_chrome(json);
    for stage in [
        "serve.request",
        "serve.door",
        "serve.queue_wait",
        "serve.placement",
        "serve.wal_commit",
        "serve.reply",
    ] {
        assert!(
            spans.iter().any(|s| s.name == stage),
            "stage {stage} missing from {} spans",
            spans.len()
        );
    }
    // Children nest: on each track, the queue/placement/commit spans
    // sit inside their `serve.request` parent's [ts, ts+dur] window.
    let mut nested = 0usize;
    for parent in spans.iter().filter(|s| s.name == "serve.request") {
        for child in spans.iter().filter(|s| {
            s.tid == parent.tid
                && matches!(
                    s.name.as_str(),
                    "serve.door" | "serve.queue_wait" | "serve.placement" | "serve.wal_commit"
                )
        }) {
            assert!(
                child.ts >= parent.ts && child.ts + child.dur <= parent.ts + parent.dur,
                "{child:?} escapes {parent:?}"
            );
            nested += 1;
        }
    }
    assert!(nested >= 50, "only {nested} nested stage spans");
    // A real JSON parser (when the build has one) must agree the
    // document is well-formed.
    if let Ok(doc) = serde_json::from_str::<serde_json::Value>(json) {
        assert!(doc["traceEvents"].as_array().unwrap().len() >= spans.len());
    }
    // Sampling fed the slow-request digest too.
    assert!(
        report.render_slow_requests().contains("slowest operations"),
        "{}",
        report.render_slow_requests()
    );
    report.check_invariants().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

fn probe(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn healthz_flips_to_503_while_a_shard_is_wedged_and_recovers() {
    let service = PlacementService::start(ServeConfig {
        stall_threshold: Duration::from_millis(50),
        ..shared_config(2)
    })
    .unwrap();
    let obs = ObsServer::start("127.0.0.1:0", service.obs_handle()).unwrap();
    let addr = obs.local_addr();

    // Warm traffic so both the health and SLO planes have data.
    for id in 0..20u64 {
        service.call(place(id)).unwrap();
    }
    let healthy = probe(addr, "/healthz");
    assert!(healthy.starts_with("HTTP/1.1 200 OK"), "{healthy}");
    assert!(healthy.contains("\"healthy\":true"), "{healthy}");

    // Wedge shard 0 long enough for several watchdog periods, then
    // poll until the flip is visible (the worker sleeps mid-batch
    // without heartbeating, exactly like a pathological placement).
    service.inject_stall(0, Duration::from_millis(400)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let sick = loop {
        let response = probe(addr, "/healthz");
        if response.starts_with("HTTP/1.1 503") {
            break response;
        }
        assert!(Instant::now() < deadline, "503 never arrived: {response}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(sick.contains("\"healthy\":false"), "{sick}");
    assert!(
        sick.contains("\"shard\":0,\"queued\""),
        "report must name the shard: {sick}"
    );
    assert!(sick.contains("\"stalled\":true"), "{sick}");

    // The worker wakes up, heartbeats, and the endpoint recovers.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let response = probe(addr, "/healthz");
        if response.starts_with("HTTP/1.1 200 OK") {
            break;
        }
        assert!(Instant::now() < deadline, "recovery never came: {response}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The other two planes answer on the same listener.
    let metrics = probe(addr, "/metrics");
    assert!(metrics.contains("Content-Length:"), "{metrics}");
    assert!(metrics.contains("slackvm_serve_admitted"), "{metrics}");
    assert!(
        metrics.contains("slackvm_serve_queue_wait_us"),
        "stage histograms must be exposed: {metrics}"
    );
    let slo = probe(addr, "/slo");
    assert!(slo.starts_with("HTTP/1.1 200 OK"), "{slo}");
    assert!(slo.contains("\"error_budget_remaining\""), "{slo}");
    assert!(slo.contains("\"shed_rate\""), "{slo}");

    assert!(obs.stop() >= 4);
    service.stop().check_invariants().unwrap();
}
