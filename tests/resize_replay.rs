//! Vertical-scaling replays: traces with resize churn through both
//! deployment models.

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::workload::inject_resizes;
use slackvm_suite::{paper_levels, test_workload};

fn resized_workload(seed: u64, fraction: f64) -> Workload {
    let base = test_workload(
        catalog::azure(),
        LevelMix::three_level(40.0, 30.0, 30.0).unwrap(),
        80,
        3,
        seed,
    );
    inject_resizes(&base, &catalog::azure(), fraction, seed ^ 0xFEED)
}

#[test]
fn both_models_absorb_resize_churn_and_drain_clean() {
    let w = resized_workload(1, 0.5);
    w.validate().unwrap();
    let mut dedicated = DeploymentModel::Dedicated(DedicatedDeployment::new(
        PmConfig::simulation_host(),
        paper_levels(),
    ));
    let base = run_packing(&w, &mut dedicated);
    assert_eq!(base.rejections, 0);

    let mut shared = DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
    let slack = run_packing(&w, &mut shared);
    assert_eq!(slack.rejections, 0);
    if let DeploymentModel::Shared(s) = &shared {
        for host in s.cluster.hosts() {
            host.check_invariants().unwrap();
            assert!(host.is_idle(), "fully drained after the replay");
        }
    }
    // Both models end fully drained.
    let (alloc, _) = dedicated.totals();
    assert!(alloc.is_empty());
}

#[test]
fn resize_churn_changes_the_packing() {
    // Same arrivals; with resizes, occupancy evolves differently, so
    // the outcome differs from the resize-free replay somewhere.
    let base = test_workload(
        catalog::ovhcloud(),
        LevelMix::three_level(50.0, 0.0, 50.0).unwrap(),
        100,
        4,
        2,
    );
    let resized = inject_resizes(&base, &catalog::ovhcloud(), 0.8, 3);
    let run = |w: &Workload| {
        let mut model =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
        run_packing(w, &mut model)
    };
    let plain = run(&base);
    let churned = run(&resized);
    assert_eq!(plain.deployments, churned.deployments, "same arrivals");
    assert_ne!(
        (plain.at_peak.unallocated_cpu, plain.at_peak.unallocated_mem),
        (
            churned.at_peak.unallocated_cpu,
            churned.at_peak.unallocated_mem
        ),
        "resize churn should move the occupancy profile"
    );
}

#[test]
fn direct_resize_api_round_trips_on_both_models() {
    let spec = VmSpec::of(2, gib(4), OversubLevel::of(2));
    // Shared.
    let mut shared = DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
    shared.deploy(VmId(0), spec).unwrap();
    shared.resize(VmId(0), 6, gib(12)).unwrap();
    let (alloc, _) = shared.totals();
    assert_eq!(alloc.cpu, Millicores::from_cores(3)); // 6 vCPUs @ 2:1
    assert_eq!(alloc.mem_mib, gib(12));
    assert!(shared.resize(VmId(9), 1, gib(1)).is_err());
    // Dedicated.
    let mut dedicated = DeploymentModel::Dedicated(DedicatedDeployment::new(
        PmConfig::simulation_host(),
        paper_levels(),
    ));
    dedicated.deploy(VmId(0), spec).unwrap();
    dedicated.resize(VmId(0), 6, gib(12)).unwrap();
    let (alloc, _) = dedicated.totals();
    assert_eq!(alloc.cpu, Millicores::from_cores(3));
    assert_eq!(alloc.mem_mib, gib(12));
    // Oversized resize rejected, state preserved.
    assert!(dedicated.resize(VmId(0), 100, gib(4)).is_err());
    let (after, _) = dedicated.totals();
    assert_eq!(after, alloc);
}
