//! End-to-end: SLO attainment and steady-state analysis through the
//! public API.

use std::collections::BTreeMap;
use std::sync::Arc;

use slackvm::perf::{Slo, SloPolicy};
use slackvm::prelude::*;
use slackvm::sim::{analyze_steady_state, run_packing_with_samples};
use slackvm_suite::test_workload;

#[test]
fn tiered_slo_policy_judges_the_fig2_run() {
    let out = Fig2Scenario {
        step_secs: 1200,
        ..Fig2Scenario::default()
    }
    .run();
    // A tiered policy scaled off the premium baseline with generous
    // slack: every tier's SlackVM median p90 passes.
    let levels = [
        OversubLevel::of(1),
        OversubLevel::of(2),
        OversubLevel::of(3),
    ];
    let policy = SloPolicy::scaled(out.levels[0].baseline_ms, 6.0, levels);
    for row in &out.levels {
        let slo = policy.get(row.level).expect("declared tier");
        assert!(
            row.slackvm_ms <= slo.threshold_ms,
            "{}: {:.2} ms vs SLO {:.2} ms",
            row.level,
            row.slackvm_ms,
            slo.threshold_ms
        );
    }
    // A flat premium-grade SLO applied to every tier fails on 3:1 under
    // co-hosting — the quantitative form of "oversubscribed tiers are
    // less prone to enforcing strict SLOs".
    let strict = Slo::new(out.levels[0].baseline_ms * 1.5, 0.9);
    assert!(
        out.levels[2].slackvm_ms > strict.threshold_ms,
        "3:1 co-hosted should violate a premium-grade SLO"
    );
}

#[test]
fn slo_attainment_report_over_synthetic_series() {
    let mut samples: BTreeMap<VmId, (OversubLevel, Vec<f64>)> = BTreeMap::new();
    // Premium VMs: tight latencies. 3:1 VMs: one meets, one violates.
    samples.insert(VmId(0), (OversubLevel::of(1), vec![1.0; 50]));
    samples.insert(VmId(1), (OversubLevel::of(1), vec![1.1; 50]));
    samples.insert(VmId(2), (OversubLevel::of(3), vec![3.0; 50]));
    let mut bad = vec![3.0; 30];
    bad.extend(vec![50.0; 20]);
    samples.insert(VmId(3), (OversubLevel::of(3), bad));
    let policy = SloPolicy::scaled(1.5, 1.0, [OversubLevel::of(1), OversubLevel::of(3)]);
    let report = policy.attainment(&samples);
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.rows[0].met, 2);
    assert_eq!(report.rows[1].met, 1);
    assert!(!report.all_met());
}

#[test]
fn steady_state_of_a_real_replay_is_sane_for_both_models() {
    let w = test_workload(
        catalog::ovhcloud(),
        LevelMix::three_level(50.0, 0.0, 50.0).unwrap(),
        120,
        6,
        17,
    );
    let mut results = Vec::new();
    for shared in [false, true] {
        let mut model = if shared {
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)))
        } else {
            DeploymentModel::Dedicated(DedicatedDeployment::new(
                PmConfig::simulation_host(),
                vec![OversubLevel::of(1), OversubLevel::of(3)],
            ))
        };
        let mut samples = Vec::new();
        run_packing_with_samples(&w, &mut model, Some(&mut samples));
        let steady = analyze_steady_state(&samples).expect("long enough");
        // The ramp from the empty cluster is detected...
        assert!(steady.warmup_samples > 0);
        // ...and the steady population sits near the 120-VM target.
        assert!(
            (90.0..160.0).contains(&steady.mean_population),
            "steady population {}",
            steady.mean_population
        );
        results.push(steady);
    }
    // The shared pool strands less in steady state on this
    // complementary mix.
    let (dedicated, shared) = (&results[0], &results[1]);
    let total =
        |s: &slackvm::sim::SteadyStateSummary| s.mean_unallocated_cpu + s.mean_unallocated_mem;
    assert!(
        total(shared) < total(dedicated) + 1e-9,
        "shared {:.3} vs dedicated {:.3}",
        total(shared),
        total(dedicated)
    );
}
