//! Durability edge cases, end to end.
//!
//! The unit tests inside `slackvm-durable` cover each layer (frames,
//! snapshots, manifest, replay) in isolation; this suite attacks the
//! stack the way a machine does — torn tails at arbitrary byte offsets
//! (property-based), snapshots round-tripping live model state, state
//! directories in every partial shape a crash can leave behind, and a
//! real `SIGKILL` delivered to a child process mid-batch, after which
//! recovery *and* the fsck decision-replay proof must both hold.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use slackvm::prelude::*;
use slackvm_durable::{
    fsck_shard, recover_shard, scan_wal, shard_dir, write_snapshot, DurableOptions, FsyncPolicy,
    Manifest, ShardDurable, WalOp, WalOutcome, WAL_FILE,
};
use slackvm_serve::{DurableOptions as ServeDurableOptions, ModelSpec, Op, Outcome, ServeConfig};

/// A fresh shared-pool model matching [`ModelSpec::default_shared`].
fn shared_model() -> DeploymentModel {
    ModelSpec::default_shared().build(1).expect("model builds")
}

/// A unique scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slackvm-durable-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs `ops` mixed decisions (places with a periodic remove) through a
/// journaled shard rooted at `dir` and returns the resulting WAL bytes.
fn journaled_run(dir: &Path, ops: u64) -> Vec<u8> {
    let mut model = shared_model();
    let opts = DurableOptions {
        fsync: FsyncPolicy::Off,
        ..DurableOptions::new(dir)
    };
    let (mut durable, report) = ShardDurable::open(&opts, 0, &mut model).expect("open");
    assert_eq!(report.last_seq, 0, "scratch dir starts at genesis");
    for i in 0..ops {
        let spec = VmSpec::of(
            1 + (i % 4) as u32,
            gib(2 + (i % 3)),
            OversubLevel::of(1 + (i % 3) as u32),
        );
        let pm = model.deploy(VmId(i), spec).expect("elastic fleet admits");
        durable
            .append(WalOp::Place { id: VmId(i), spec }, WalOutcome::Placed(pm))
            .expect("append");
        if i % 5 == 4 {
            let gone = VmId(i - 2);
            let pm = model.remove(gone).expect("present");
            durable
                .append(WalOp::Remove { id: gone }, WalOutcome::Removed(pm))
                .expect("append");
        }
    }
    durable.commit().expect("commit");
    drop(durable);
    std::fs::read(shard_dir(dir, 0).join(WAL_FILE)).expect("wal exists")
}

#[test]
fn snapshots_round_trip_live_model_state() {
    let root = scratch("snap");
    let mut model = shared_model();
    for i in 0..40u64 {
        model
            .deploy(
                VmId(i),
                VmSpec::of(2, gib(4), OversubLevel::of(1 + (i % 3) as u32)),
            )
            .unwrap();
    }
    let state = model.capture_state();
    let shard = shard_dir(&root, 0);
    std::fs::create_dir_all(&shard).unwrap();
    write_snapshot(&shard, 40, &state).unwrap();

    // A snapshot-only directory (no journal at all) restores the exact
    // captured state with nothing to replay.
    let mut restored = shared_model();
    let report = recover_shard(&root, 0, &mut restored).unwrap();
    assert_eq!(report.snapshot_seq, Some(40));
    assert_eq!(report.records_replayed, 0, "snapshot-only dir has no tail");
    assert_eq!(
        restored.capture_state().normalized(),
        state.normalized(),
        "restored state equals the captured one"
    );
    restored.check_invariants().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn every_partial_directory_shape_recovers() {
    // Missing root, empty root, empty shard dir: genesis.
    for (tag, prepare) in [
        ("missing", false),
        ("empty-root", true),
        ("empty-shard", true),
    ] {
        let dir = scratch(&format!("partial-{tag}"));
        if !prepare {
            std::fs::remove_dir_all(&dir).unwrap();
        } else if tag == "empty-shard" {
            std::fs::create_dir_all(shard_dir(&dir, 0)).unwrap();
        }
        let mut model = shared_model();
        let report = recover_shard(&dir, 0, &mut model).unwrap();
        assert_eq!(report.last_seq, 0, "{tag}");
        assert_eq!(report.records_total, 0, "{tag}");
        assert_eq!(model.capture_state().num_vms(), 0, "{tag}");
        std::fs::remove_dir_all(&dir).ok();
    }

    // WAL-only: the journal alone rebuilds the state.
    let dir = scratch("partial-wal-only");
    journaled_run(&dir, 25);
    let mut model = shared_model();
    let report = recover_shard(&dir, 0, &mut model).unwrap();
    assert_eq!(report.snapshot_seq, None);
    assert!(report.records_replayed == report.records_total && report.records_total >= 25);
    model.check_invariants().unwrap();
    let mut fresh = shared_model();
    let fsck = fsck_shard(&dir, 0, &model, &mut fresh).unwrap();
    assert!(fsck.ok(), "{:?}", fsck.mismatches);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chop the journal anywhere — frame boundary, mid-header,
    /// mid-payload — and recovery still lands on a valid prefix whose
    /// state passes both the model invariants and the fsck proof.
    #[test]
    fn recovery_survives_a_tail_chopped_anywhere(cut_back in 0u64..600, flip in proptest::option::of(0usize..64)) {
        let dir = scratch("chop");
        let pristine = journaled_run(&dir, 30);
        let cut = pristine.len() as u64 - cut_back.min(pristine.len() as u64);
        let mut bytes = pristine[..cut as usize].to_vec();
        if let (Some(back), true) = (flip, !bytes.is_empty()) {
            // Also flip a bit near the new tail: a torn sector, not a
            // clean chop.
            let at = bytes.len() - 1 - back.min(bytes.len() - 1);
            bytes[at] ^= 0x40;
        }
        let wal = shard_dir(&dir, 0).join(WAL_FILE);
        std::fs::write(&wal, &bytes).unwrap();

        let scan = scan_wal(&wal).unwrap();
        prop_assert!(scan.valid_len <= bytes.len() as u64);

        let mut model = shared_model();
        let report = recover_shard(&dir, 0, &mut model).unwrap();
        prop_assert_eq!(report.records_total, scan.records.len() as u64);
        prop_assert_eq!(report.wal_bytes, scan.valid_len);
        model.check_invariants().unwrap();

        let mut fresh = shared_model();
        let fsck = fsck_shard(&dir, 0, &model, &mut fresh).unwrap();
        prop_assert!(fsck.ok(), "{:?}", fsck.mismatches);
        prop_assert_eq!(fsck.records_checked, report.records_total);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Builds one shard's empty model from a recovered manifest, exactly
/// as the service and `slackvm recover` do.
fn model_from(manifest: &Manifest) -> DeploymentModel {
    let spec = ModelSpec::from_manifest_model(&manifest.model);
    let mut model = spec.build(manifest.shards).expect("manifest model");
    model.set_index_mode(IndexMode::parse(&manifest.index).expect("manifest index"));
    model
}

/// Child half of the crash test: an infinite placement loop against a
/// durable single-shard service, meant to be `SIGKILL`ed by the parent.
/// A no-op unless `SLACKVM_CRASH_DIR` is set.
#[test]
fn crash_victim() {
    let Ok(dir) = std::env::var("SLACKVM_CRASH_DIR") else {
        return;
    };
    let config = ServeConfig {
        shards: 1,
        queue_depth: 256,
        batch_max: 32,
        model: ModelSpec::default_shared(),
        durable: Some(ServeDurableOptions {
            fsync: FsyncPolicy::Every,
            snapshot_every: 512,
            retain: 2,
            ..ServeDurableOptions::new(&dir)
        }),
        ..ServeConfig::default()
    };
    let svc = slackvm_serve::PlacementService::start(config).expect("victim starts");
    // A sliding window of live VMs: every iteration places one and
    // removes one 64 back, so the journal grows while the model stays
    // bounded. The bound below is a safety valve, far beyond how long
    // the parent lets this run.
    for i in 0..4_000_000u64 {
        let reply = svc
            .call(Op::Place {
                id: VmId(i),
                spec: VmSpec::of(2, gib(4), OversubLevel::of(1 + (i % 3) as u32)),
            })
            .expect("place");
        assert!(matches!(reply.outcome, Outcome::Placed(_)), "{reply:?}");
        if i >= 64 {
            svc.call(Op::Remove { id: VmId(i - 64) }).expect("remove");
        }
    }
    svc.stop();
}

/// Child half of the evacuation crash test: like [`crash_victim`], but
/// the loop also keeps failing and recovering PMs, so the journal the
/// parent kills mid-write is full of `FailPm`/`RecoverPm` records and
/// the evacuation re-placements they displaced. A no-op unless
/// `SLACKVM_CRASH_EVAC_DIR` is set.
#[test]
fn crash_victim_evac() {
    let Ok(dir) = std::env::var("SLACKVM_CRASH_EVAC_DIR") else {
        return;
    };
    let config = ServeConfig {
        shards: 1,
        queue_depth: 256,
        batch_max: 32,
        model: ModelSpec::default_shared(),
        durable: Some(ServeDurableOptions {
            fsync: FsyncPolicy::Every,
            snapshot_every: 512,
            retain: 2,
            ..ServeDurableOptions::new(&dir)
        }),
        ..ServeConfig::default()
    };
    let svc = slackvm_serve::PlacementService::start(config).expect("victim starts");
    for i in 0..4_000_000u64 {
        let reply = svc
            .call(Op::Place {
                id: VmId(i),
                spec: VmSpec::of(2, gib(4), OversubLevel::of(1 + (i % 3) as u32)),
            })
            .expect("place");
        assert!(matches!(reply.outcome, Outcome::Placed(_)), "{reply:?}");
        if i >= 64 {
            svc.call(Op::Remove { id: VmId(i - 64) }).expect("remove");
        }
        // Every 50 placements, knock a low PM over (evacuating its
        // VMs through the normal admission path) and stand the
        // previous casualty back up.
        if i % 50 == 49 {
            let pm = PmId(((i / 50) % 3) as u32);
            let prev = PmId((((i / 50) + 2) % 3) as u32);
            svc.call(Op::RecoverPm { shard: 0, pm: prev })
                .expect("recover");
            let reply = svc.call(Op::FailPm { shard: 0, pm }).expect("fail");
            assert!(
                matches!(reply.outcome, Outcome::PmFailed { lost: 0, .. }),
                "elastic fleet re-places every evicted VM: {reply:?}"
            );
        }
    }
    svc.stop();
}

#[test]
fn kill_nine_during_evacuation_recovers_and_passes_fsck() {
    let dir = scratch("kill9-evac");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "crash_victim_evac", "--nocapture"])
        .env("SLACKVM_CRASH_EVAC_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim");

    let wal = shard_dir(&dir, 0).join(WAL_FILE);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if std::fs::metadata(&wal)
            .map(|m| m.len() > 64 * 1024)
            .unwrap_or(false)
        {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("victim exited on its own: {status}");
        }
        assert!(Instant::now() < deadline, "victim never produced a journal");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // The committed history must actually contain the failure plane:
    // host-down records and the evacuation re-placements they forced.
    let manifest = Manifest::load(&dir).expect("manifest survives");
    let scan = scan_wal(&wal).expect("scan");
    assert!(
        scan.records
            .iter()
            .any(|r| matches!(r.op, WalOp::FailPm { .. })),
        "journal holds FailPm records"
    );
    assert!(
        scan.records
            .iter()
            .any(|r| matches!(r.op, WalOp::RecoverPm { .. })),
        "journal holds RecoverPm records"
    );

    // Recovery replays that history — evictions, re-placements, and
    // repairs included — and fsck proves the replay from genesis lands
    // on the exact same state.
    let mut model = model_from(&manifest);
    let report = recover_shard(&dir, 0, &mut model).expect("recovery");
    model.check_invariants().expect("recovered invariants");
    let mut fresh = model_from(&manifest);
    let fsck = fsck_shard(&dir, 0, &model, &mut fresh).expect("fsck runs");
    assert!(fsck.ok(), "post-SIGKILL divergence: {:?}", fsck.mismatches);
    assert_eq!(fsck.records_checked, report.records_total);

    // And the service restarts cleanly against the directory.
    let config = ServeConfig {
        shards: 1,
        model: ModelSpec::default_shared(),
        durable: Some(ServeDurableOptions::new(&dir)),
        ..ServeConfig::default()
    };
    let svc = slackvm_serve::PlacementService::start(config).expect("restart");
    let recovered: u64 = svc.recovery_reports().iter().map(|r| r.records_total).sum();
    assert_eq!(recovered, report.records_total);
    svc.stop()
        .check_invariants()
        .expect("post-restart invariants");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_nine_mid_batch_recovers_and_passes_fsck() {
    let dir = scratch("kill9");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "crash_victim", "--nocapture"])
        .env("SLACKVM_CRASH_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim");

    // Let the victim commit a real body of work, then kill it without
    // any chance to flush: `Child::kill` is SIGKILL on unix.
    let wal = shard_dir(&dir, 0).join(WAL_FILE);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if std::fs::metadata(&wal)
            .map(|m| m.len() > 64 * 1024)
            .unwrap_or(false)
        {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("victim exited on its own: {status}");
        }
        assert!(Instant::now() < deadline, "victim never produced a journal");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // The service got far enough to snapshot at least once under the
    // 512-record cadence, so recovery exercises snapshot + tail.
    let manifest = Manifest::load(&dir).expect("manifest survives");
    assert_eq!(manifest.shards, 1);
    let mut model = model_from(&manifest);
    let report = recover_shard(&dir, 0, &mut model).expect("recovery");
    assert!(
        report.records_total > 500,
        "journal has real work: {report:?}"
    );
    model.check_invariants().expect("recovered invariants");

    // fsck: replay every committed decision from genesis through a
    // fresh model and prove the recovered state is the committed
    // history — with fsync=every, everything acked before the kill.
    let mut fresh = model_from(&manifest);
    let fsck = fsck_shard(&dir, 0, &model, &mut fresh).expect("fsck runs");
    assert!(fsck.ok(), "post-SIGKILL divergence: {:?}", fsck.mismatches);
    assert_eq!(fsck.records_checked, report.records_total);

    // And the service itself restarts cleanly against the directory.
    let config = ServeConfig {
        shards: 1,
        queue_depth: 256,
        batch_max: 32,
        model: ModelSpec::default_shared(),
        durable: Some(ServeDurableOptions::new(&dir)),
        ..ServeConfig::default()
    };
    let svc = slackvm_serve::PlacementService::start(config).expect("restart");
    let recovered: u64 = svc.recovery_reports().iter().map(|r| r.records_total).sum();
    assert_eq!(recovered, report.records_total);
    svc.stop()
        .check_invariants()
        .expect("post-restart invariants");
    std::fs::remove_dir_all(&dir).ok();
}
