//! End-to-end telemetry capture: a recorded replay of a seeded
//! week-long scenario produces a journal that round-trips through
//! serde, a parseable Chrome trace, and metrics that agree with the
//! run's [`PackingOutcome`].

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::workload::scenarios;

fn week_scenario() -> Workload {
    scenarios::all(150)
        .into_iter()
        .find(|s| s.name == "paper-week-f")
        .expect("canned scenario")
        .generate(0x5AC4)
}

fn shared_pool() -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)))
}

#[test]
fn recorded_week_replay_round_trips_and_matches_outcome() {
    let workload = week_scenario();

    let mut plain_model = shared_pool();
    let plain = run_packing(&workload, &mut plain_model);

    let mut model = shared_pool();
    let mut telemetry = Telemetry::new();
    let out = run_packing_recorded(&workload, &mut model, &mut telemetry);

    // Recording must not perturb the simulation.
    assert_eq!(out.deployments, plain.deployments);
    assert_eq!(out.rejections, plain.rejections);
    assert_eq!(out.opened_pms, plain.opened_pms);
    assert_eq!(out.peak_alive_vms, plain.peak_alive_vms);

    // The journal round-trips through its JSONL serde representation.
    assert!(!telemetry.journal.is_empty());
    let jsonl = telemetry.journal.to_jsonl();
    let reparsed = Journal::from_jsonl(&jsonl).expect("journal parses back");
    assert_eq!(reparsed, telemetry.journal);

    // Metrics counters mirror the outcome exactly.
    assert_eq!(
        telemetry.metrics.counter("sim.deployments"),
        out.deployments as u64
    );
    assert_eq!(
        telemetry.metrics.counter("sim.rejections"),
        out.rejections as u64
    );
    assert_eq!(
        telemetry.metrics.gauge("sim.opened_pms"),
        Some(out.opened_pms as f64)
    );
    assert_eq!(
        telemetry.journal.count_kind("vm_placed") as u32,
        out.deployments - out.rejections
    );
    assert_eq!(
        telemetry.journal.count_kind("pm_opened") as u32,
        out.opened_pms
    );

    // The Chrome trace is valid JSON with non-empty traceEvents, and
    // every event is a complete ("ph":"X") slice with a name.
    let chrome: serde_json::Value =
        serde_json::from_str(&telemetry.trace.to_chrome_json()).expect("trace parses");
    let events = chrome["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for event in events {
        assert_eq!(event["ph"], "X");
        assert!(event["name"].as_str().is_some_and(|n| !n.is_empty()));
    }
}

#[test]
fn journal_timestamps_are_monotone_and_typed() {
    let workload = week_scenario();
    let mut model = shared_pool();
    let mut telemetry = Telemetry::new();
    run_packing_recorded(&workload, &mut model, &mut telemetry);

    let mut last = 0;
    for record in telemetry.journal.iter() {
        assert!(record.time_secs >= last, "journal out of order");
        last = record.time_secs;
    }
    // Every arrival resolves to exactly one placement or rejection.
    assert_eq!(
        telemetry.journal.count_kind("vm_arrival"),
        telemetry.journal.count_kind("vm_placed") + telemetry.journal.count_kind("vm_rejected")
    );
}
