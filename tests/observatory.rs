//! The simulation observatory end to end: an observed replay samples a
//! deterministic multi-series trajectory, the Prometheus exposition of
//! the same run passes the strict validator, and the self-profiling
//! digest surfaces the scheduler hot path.

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm::telemetry::prometheus;
use slackvm::workload::scenarios;

fn week_scenario() -> Workload {
    scenarios::all(150)
        .into_iter()
        .find(|s| s.name == "paper-week-f")
        .expect("canned scenario")
        .generate(0x5AC4)
}

fn shared_pool() -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)))
}

fn dedicated_pool() -> DeploymentModel {
    DeploymentModel::Dedicated(DedicatedDeployment::new(
        PmConfig::simulation_host(),
        [
            OversubLevel::of(1),
            OversubLevel::of(2),
            OversubLevel::of(3),
        ],
    ))
}

fn observed_csv(model: &mut DeploymentModel, workload: &Workload, interval: u64) -> String {
    let mut telemetry = Telemetry::new();
    let mut sampler = ClusterSampler::new(interval);
    run_packing_observed(workload, model, None, Some(&mut sampler), &mut telemetry);
    sampler.into_store().to_csv()
}

#[test]
fn observed_replay_is_deterministic_and_rich() {
    let workload = week_scenario();
    let csv_a = observed_csv(&mut shared_pool(), &workload, 3600);
    let csv_b = observed_csv(&mut shared_pool(), &workload, 3600);
    assert_eq!(csv_a, csv_b, "same seed + interval must be byte-identical");

    let store = TimeSeriesStore::from_csv(&csv_a).expect("CSV parses back");
    assert!(store.len() >= 5, "only {} series", store.len());
    for name in [
        "cluster.alive_vms",
        "cluster.active_pms",
        "cluster.cpu_utilization",
        "cluster.mem_utilization",
        "cluster.fragmentation",
        "cluster.mc_deviation_mean",
    ] {
        let series = store.series(name).unwrap_or_else(|| panic!("no {name}"));
        assert!(series.len() > 24, "{name} too sparse: {}", series.len());
    }
    assert!(
        store.iter().any(|s| s.name().starts_with("vnode.width.l")),
        "no per-level vNode width series"
    );

    // Utilization stays a fraction; population counts stay non-negative.
    let cpu = store.series("cluster.cpu_utilization").expect("cpu");
    assert!(cpu.points().all(|p| (0.0..=1.0).contains(&p.value)));
}

#[test]
fn dedicated_model_is_observable_too() {
    let workload = week_scenario();
    let csv = observed_csv(&mut dedicated_pool(), &workload, 7200);
    let store = TimeSeriesStore::from_csv(&csv).expect("CSV parses back");
    assert!(store.len() >= 5);
    // The baseline deploys each level into its own cluster, so every
    // paper level shows up as a width series.
    for level in 1..=3u32 {
        assert!(
            store.series(&format!("vnode.width.l{level}")).is_some(),
            "missing width for level {level}"
        );
    }
}

#[test]
fn interval_beyond_horizon_still_takes_the_initial_sample() {
    let workload = week_scenario();
    let mut model = shared_pool();
    let mut telemetry = Telemetry::new();
    let mut sampler = ClusterSampler::new(u64::MAX / 4);
    run_packing_observed(
        &workload,
        &mut model,
        None,
        Some(&mut sampler),
        &mut telemetry,
    );
    assert_eq!(sampler.samples_taken(), 1);
    assert!(sampler.store().len() >= 5);
}

#[test]
fn sampling_does_not_perturb_the_outcome() {
    let workload = week_scenario();
    let mut plain_model = shared_pool();
    let plain = run_packing(&workload, &mut plain_model);

    let mut model = shared_pool();
    let mut telemetry = Telemetry::new();
    let mut sampler = ClusterSampler::new(1800);
    let observed = run_packing_observed(
        &workload,
        &mut model,
        None,
        Some(&mut sampler),
        &mut telemetry,
    );
    assert_eq!(observed.opened_pms, plain.opened_pms);
    assert_eq!(observed.deployments, plain.deployments);
    assert_eq!(observed.rejections, plain.rejections);
    assert_eq!(observed.peak_alive_vms, plain.peak_alive_vms);
}

#[test]
fn prometheus_exposition_of_a_run_validates_and_profiles_the_hot_path() {
    let workload = week_scenario();
    let mut model = shared_pool();
    let mut telemetry = Telemetry::new();
    let mut sampler = ClusterSampler::new(3600);
    run_packing_observed(
        &workload,
        &mut model,
        None,
        Some(&mut sampler),
        &mut telemetry,
    );

    let exposition = prometheus::render(&telemetry.metrics, Some(sampler.store()));
    prometheus::validate(&exposition).expect("self-produced exposition is valid");
    assert!(exposition.contains("# TYPE slackvm_sched_select histogram"));
    assert!(exposition.contains("slackvm_sched_select_count"));
    assert!(exposition.contains("slackvm_timeseries"));

    // The pipeline latency histograms recorded real observations.
    let select = telemetry.metrics.histogram("sched.select").expect("select");
    assert!(select.count() > 0);

    // The summary carries the top-K slowest-operations digest.
    let summary = telemetry.render_summary();
    assert!(summary.contains("slowest operations"));
    assert!(summary.contains("sched.select"));
}

#[test]
fn occupancy_samples_downsample_onto_the_grid() {
    let workload = week_scenario();
    let mut model = shared_pool();
    let mut samples = Vec::new();
    run_packing_with_samples(&workload, &mut model, Some(&mut samples));
    assert!(!samples.is_empty());

    let store = store_from_samples(&samples, 6 * 3600);
    for name in [
        "cluster.alive_vms",
        "cluster.opened_pms",
        "cluster.cpu_utilization",
        "cluster.mem_utilization",
    ] {
        let series = store.series(name).unwrap_or_else(|| panic!("no {name}"));
        assert!(series.len() <= samples.len());
        assert!(!series.is_empty());
    }
}
