//! Heterogeneous shared pools end-to-end: mixed hardware generations in
//! one SlackVM pool, per-machine target ratios steering placement.

use std::sync::Arc;

use slackvm::prelude::*;
use slackvm_suite::test_workload;

fn mixed_shapes() -> Vec<(Arc<CpuTopology>, u64)> {
    vec![
        (Arc::new(flat(32)), gib(128)), // M/C 4 — the paper's shape
        (Arc::new(flat(48)), gib(96)),  // M/C 2 — CPU-rich older gen
        (Arc::new(flat(16)), gib(128)), // M/C 8 — memory-rich
    ]
}

#[test]
fn heterogeneous_pool_absorbs_a_full_workload() {
    let w = test_workload(
        catalog::ovhcloud(),
        LevelMix::three_level(50.0, 0.0, 50.0).unwrap(),
        100,
        4,
        21,
    );
    let mut model = DeploymentModel::Shared(SharedDeployment::heterogeneous(
        mixed_shapes(),
        PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15)),
    ));
    let out = run_packing(&w, &mut model);
    assert_eq!(out.rejections, 0);
    assert!(out.opened_pms >= 3, "all three shapes get exercised");
    if let DeploymentModel::Shared(s) = &model {
        // Shapes cycle deterministically by PmId.
        let cores: Vec<u32> = s.cluster.hosts().iter().map(|h| h.config().cores).collect();
        for (i, c) in cores.iter().enumerate() {
            let expected = [32u32, 48, 16][i % 3];
            assert_eq!(*c, expected, "host {i} has {c} cores");
        }
        for host in s.cluster.hosts() {
            host.check_invariants().unwrap();
            assert!(host.is_idle(), "fully drained after the replay");
        }
    }
}

#[test]
fn per_machine_targets_shape_the_steady_allocation() {
    // Drive arrivals only (no departures) until the pool holds a
    // substantial mixed load, then check each machine's workload ratio
    // tracks its own hardware target better than the global average
    // would.
    let w = test_workload(
        catalog::ovhcloud(),
        LevelMix::three_level(50.0, 25.0, 25.0).unwrap(),
        90,
        3,
        5,
    );
    let mut pool = SharedDeployment::heterogeneous(
        mixed_shapes(),
        PlacementPolicy::scored(ProgressScorer::paper()),
    );
    for vm in w.instances().take(150) {
        pool.deploy(vm.id, vm.spec).unwrap();
    }
    let mut tracked = 0;
    let mut total = 0;
    for host in pool.cluster.hosts() {
        let alloc = host.alloc();
        if alloc.cpu.as_cores_f64() < 4.0 {
            continue; // too little signal
        }
        total += 1;
        let target = host.config().target_ratio().gib_per_core();
        let actual = alloc.mc_ratio().gib_per_core();
        // Within a factor-2 band of the machine's own target counts as
        // "tracking" (the catalog only offers ratios 1..8).
        if actual >= target / 2.0 && actual <= target * 2.0 {
            tracked += 1;
        }
    }
    assert!(total >= 2, "need at least two loaded machines, got {total}");
    assert!(
        tracked * 3 >= total * 2,
        "only {tracked}/{total} machines track their own target"
    );
}

#[test]
fn heterogeneous_compaction_respects_shapes() {
    // Fill, drain half, compact: every executed move must respect the
    // destination machine's own capacity (smaller machines can't absorb
    // what bigger ones could).
    let w = test_workload(
        catalog::azure(),
        LevelMix::three_level(1.0, 1.0, 1.0).unwrap(),
        60,
        2,
        8,
    );
    let mut pool = SharedDeployment::heterogeneous(
        mixed_shapes(),
        PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15)),
    );
    let ids: Vec<VmId> = w.instances().map(|vm| vm.id).collect();
    for vm in w.instances() {
        pool.deploy(vm.id, vm.spec).unwrap();
    }
    // Remove every other VM to fragment the pool.
    for id in ids.iter().step_by(2) {
        pool.remove(*id).unwrap();
    }
    let (migrations, drained) = pool.compact_now();
    for host in pool.cluster.hosts() {
        host.check_invariants().unwrap();
    }
    // Compaction must not lose VMs.
    let remaining: usize = pool.cluster.hosts().iter().map(|h| h.num_vms()).sum();
    assert_eq!(remaining, ids.len() - ids.iter().step_by(2).count());
    // (migrations/drained are workload-dependent; just require sanity.)
    assert!(migrations as usize <= remaining);
    assert!(drained <= pool.cluster.opened());
}
