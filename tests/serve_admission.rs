//! Concurrency property test: eight clients hammer a sharded
//! `PlacementService` with interleaved place / resize / remove traffic
//! and, whatever the interleaving, the drained fleet must satisfy the
//! deployment invariants (capacity bounds, accounting consistency) and
//! the reply ledger must balance.

use proptest::prelude::*;

use slackvm::prelude::*;
use slackvm_serve::{ModelSpec, Op, Outcome, PlacementService, ServeConfig};

const CLIENTS: u32 = 8;

/// Splitmix-style per-client shape generator (the service must hold up
/// under any traffic, so cheap pseudo-randomness is all we need).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Default)]
struct Ledger {
    placed: u64,
    rejected: u64,
    removed: u64,
    resized: u64,
    unknown: u64,
}

fn hammer(service: &PlacementService, seed: u64, ops_per_client: u64) -> Ledger {
    let mut total = Ledger::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut rng = seed ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                let mut alive: Vec<VmId> = Vec::new();
                let mut ledger = Ledger::default();
                for n in 0..ops_per_client {
                    // Disjoint per-client id bands: collisions impossible.
                    let id = VmId(client as u64 * 1_000_000 + n);
                    let roll = next(&mut rng) % 10;
                    let op = if roll < 6 || alive.is_empty() {
                        let vcpus = 1 + (next(&mut rng) % 8) as u32;
                        let mem = gib(1 + next(&mut rng) % 8);
                        let level = OversubLevel::of(1 + (next(&mut rng) % 3) as u32);
                        Op::Place {
                            id,
                            spec: VmSpec::of(vcpus, mem, level),
                        }
                    } else if roll < 8 {
                        let victim = alive[(next(&mut rng) as usize) % alive.len()];
                        Op::Remove { id: victim }
                    } else {
                        let victim = alive[(next(&mut rng) as usize) % alive.len()];
                        Op::Resize {
                            id: victim,
                            vcpus: 1 + (next(&mut rng) % 8) as u32,
                            mem_mib: gib(1 + next(&mut rng) % 8),
                        }
                    };
                    let placed_id = matches!(op, Op::Place { .. }).then_some(id);
                    let removed_id = match op {
                        Op::Remove { id } => Some(id),
                        _ => None,
                    };
                    let reply = service.call(op).expect("service alive");
                    match reply.outcome {
                        Outcome::Placed(_) => {
                            ledger.placed += 1;
                            alive.push(placed_id.expect("place op"));
                        }
                        Outcome::Rejected => ledger.rejected += 1,
                        Outcome::Removed(_) => {
                            ledger.removed += 1;
                            let gone = removed_id.expect("remove op");
                            alive.retain(|v| *v != gone);
                        }
                        Outcome::Resized { .. } => ledger.resized += 1,
                        Outcome::UnknownVm => ledger.unknown += 1,
                        Outcome::Shed => panic!("no deadlines configured, nothing may shed"),
                        Outcome::PmFailed { .. }
                        | Outcome::PmRecovered
                        | Outcome::PmDraining { .. } => {
                            panic!("no control ops issued, none may be answered")
                        }
                    }
                }
                ledger
            }));
        }
        for handle in handles {
            let ledger = handle.join().expect("client panicked");
            total.placed += ledger.placed;
            total.rejected += ledger.rejected;
            total.removed += ledger.removed;
            total.resized += ledger.resized;
            total.unknown += ledger.unknown;
        }
    });
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_admission_preserves_capacity_invariants(
        shards in 1u32..=4,
        fleet_cap in 3u32..=10,
        seed in 0u64..u64::MAX,
    ) {
        // A deliberately tight fleet so rejections and fall-through
        // forwarding actually happen under contention.
        let service = PlacementService::start(ServeConfig {
            shards,
            queue_depth: 64,
            batch_max: 16,
            model: ModelSpec::Shared {
                topology: "cores=8".into(),
                mem_mib: gib(32),
                policy: "progress+bestfit".into(),
                fleet_cap: Some(fleet_cap),
            },
            ..ServeConfig::default()
        }).expect("service start");

        let ledger = hammer(&service, seed, 120);
        let report = service.stop();

        // Every shard's final model satisfies the capacity invariants.
        prop_assert!(report.check_invariants().is_ok(),
            "{:?}", report.check_invariants());
        // The reply ledger balances against the workers' own counts.
        prop_assert_eq!(ledger.placed, report.admitted());
        prop_assert_eq!(ledger.rejected, report.rejected());
        prop_assert_eq!(report.shed(), 0);
        // Removals can't outnumber placements; whatever is still alive
        // is allocated on some shard.
        prop_assert!(ledger.removed <= ledger.placed);
        let live = ledger.placed - ledger.removed;
        let mut hosting_shards = 0u64;
        for shard in &report.shards {
            let (alloc, cap) = shard.model.totals();
            prop_assert!(alloc.cpu.0 <= cap.cpu.0,
                "shard {} over CPU capacity", shard.shard);
            if !alloc.is_empty() {
                hosting_shards += 1;
            }
        }
        if live == 0 {
            prop_assert_eq!(hosting_shards, 0, "drained fleet must hold nothing");
        }
    }
}
