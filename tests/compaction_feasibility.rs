//! Compaction plans must be *executable*: applying every planned move
//! against real partitioned machines (in order) must succeed and leave
//! the drained machines empty.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use slackvm::prelude::*;
use slackvm_suite::test_workload;

/// Builds a shared pool from the first half of a workload, returning the
/// live machines.
fn half_loaded_pool(seed: u64) -> SharedDeployment {
    let w = test_workload(
        catalog::ovhcloud(),
        LevelMix::three_level(50.0, 0.0, 50.0).unwrap(),
        60,
        3,
        seed,
    );
    let mut pool = SharedDeployment::new(Arc::new(flat(32)), gib(128));
    for (time, event) in &w.events {
        if *time > 2 * 86_400 {
            break;
        }
        match event {
            slackvm::workload::WorkloadEvent::Arrival(vm) => {
                pool.deploy(vm.id, vm.spec).unwrap();
            }
            slackvm::workload::WorkloadEvent::Departure { id } => {
                if pool.cluster.location_of(*id).is_some() {
                    pool.remove(*id).unwrap();
                }
            }
            slackvm::workload::WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                let _ = pool.resize(*id, *vcpus, *mem_mib);
            }
        }
    }
    pool
}

/// Applies a compaction plan against fresh machines rebuilt from the
/// snapshots, asserting every move succeeds.
fn apply_plan(
    snapshots: &[MachineSnapshot],
    plan: &CompactionPlan,
) -> BTreeMap<PmId, PhysicalMachine> {
    let mut machines: BTreeMap<PmId, PhysicalMachine> = snapshots
        .iter()
        .map(|s| {
            let mut m = PhysicalMachine::with_topology_policy(
                s.pm,
                Arc::new(flat(s.config.cores)),
                s.config.mem_mib,
            );
            for (id, spec) in &s.vms {
                m.deploy(*id, *spec).expect("snapshot state is feasible");
            }
            (s.pm, m)
        })
        .collect();
    for mv in &plan.moves {
        let spec = machines
            .get_mut(&mv.from)
            .expect("source exists")
            .remove(mv.vm)
            .expect("planned VM lives on its source");
        machines
            .get_mut(&mv.to)
            .expect("destination exists")
            .deploy(mv.vm, spec)
            .unwrap_or_else(|e| panic!("move of {} to {} failed: {e}", mv.vm, mv.to));
    }
    machines
}

#[test]
fn plans_from_live_pools_are_executable() {
    for seed in [1u64, 2, 3] {
        let pool = half_loaded_pool(seed);
        let snapshots: Vec<MachineSnapshot> =
            pool.cluster.hosts().iter().map(|h| h.snapshot()).collect();
        let plan = plan_compaction(&snapshots);
        let machines = apply_plan(&snapshots, &plan);
        // Drained machines are empty; everything else stays consistent.
        for pm in &plan.releasable {
            assert!(machines[pm].is_idle(), "{pm} not empty after plan");
        }
        for m in machines.values() {
            m.check_invariants().unwrap();
        }
        // VM count conserved.
        let before: usize = snapshots.iter().map(|s| s.vms.len()).sum();
        let after: usize = machines.values().map(|m| m.num_vms()).sum();
        assert_eq!(before, after);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_snapshots_produce_executable_plans(
        loads in prop::collection::vec(
            prop::collection::vec((1u32..6, 1u64..16, 1u32..=3), 0..8),
            2..6,
        ),
    ) {
        let mut next_id = 0u64;
        let snapshots: Vec<MachineSnapshot> = loads
            .iter()
            .enumerate()
            .map(|(pm, vms)| {
                let mut machine = PhysicalMachine::with_topology_policy(
                    PmId(pm as u32),
                    Arc::new(flat(32)),
                    gib(128),
                );
                for (vcpus, mem, level) in vms {
                    let spec = VmSpec::of(*vcpus, gib(*mem), OversubLevel::of(*level));
                    if machine.can_host(&spec) {
                        machine.deploy(VmId(next_id), spec).unwrap();
                        next_id += 1;
                    }
                }
                machine.snapshot()
            })
            .collect();
        let plan = plan_compaction(&snapshots);
        let machines = apply_plan(&snapshots, &plan);
        for pm in &plan.releasable {
            prop_assert!(machines[pm].is_idle());
        }
        for m in machines.values() {
            prop_assert!(m.check_invariants().is_ok());
        }
    }
}
