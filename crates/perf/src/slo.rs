//! Service-Level-Objective accounting.
//!
//! The paper frames oversubscribed tiers as "less prone to enforcing
//! performance guarantees with strict SLOs" (§VII-A) and suggests the
//! dynamic-level knob could "tune the performances of hosted services
//! according to agreed SLA" (§VIII). This module gives those statements
//! a measurable form: per-tier latency objectives, violation rates, and
//! an attainment report over a replay.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use slackvm_model::OversubLevel;

/// A latency objective for one tier: at least `target_quantile` of a
/// VM's samples must be at or below `threshold_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Latency threshold in milliseconds.
    pub threshold_ms: f64,
    /// Required attainment quantile, e.g. 0.9 for "p90 under threshold".
    pub target_quantile: f64,
}

impl Slo {
    /// Constructs an SLO.
    pub fn new(threshold_ms: f64, target_quantile: f64) -> Self {
        Slo {
            threshold_ms,
            target_quantile: target_quantile.clamp(0.0, 1.0),
        }
    }

    /// Whether a sample series meets the objective.
    pub fn met_by(&self, samples: &[f64]) -> bool {
        if samples.is_empty() {
            return true;
        }
        let within = samples.iter().filter(|&&s| s <= self.threshold_ms).count();
        within as f64 / samples.len() as f64 >= self.target_quantile
    }

    /// Fraction of samples over the threshold (the violation rate).
    pub fn violation_rate(&self, samples: &[f64]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().filter(|&&s| s > self.threshold_ms).count() as f64 / samples.len() as f64
    }
}

/// Tiered SLOs: stricter (lower) thresholds for less oversubscribed
/// tiers, as a provider's catalog would advertise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SloPolicy {
    objectives: BTreeMap<OversubLevel, Slo>,
}

impl SloPolicy {
    /// A policy scaled from a premium baseline: level `n` gets
    /// `base_ms × n × slack` as its threshold — looser guarantees for
    /// cheaper tiers.
    pub fn scaled(
        base_ms: f64,
        slack: f64,
        levels: impl IntoIterator<Item = OversubLevel>,
    ) -> Self {
        let objectives = levels
            .into_iter()
            .map(|level| (level, Slo::new(base_ms * level.ratio() as f64 * slack, 0.9)))
            .collect();
        SloPolicy { objectives }
    }

    /// Registers or replaces one tier's objective.
    pub fn set(&mut self, level: OversubLevel, slo: Slo) -> &mut Self {
        self.objectives.insert(level, slo);
        self
    }

    /// The objective for a tier, if declared.
    pub fn get(&self, level: OversubLevel) -> Option<Slo> {
        self.objectives.get(&level).copied()
    }

    /// Evaluates per-VM sample series against the tier objectives.
    /// `samples` maps each VM to `(level, its latency samples)`.
    pub fn attainment(
        &self,
        samples: &BTreeMap<slackvm_model::VmId, (OversubLevel, Vec<f64>)>,
    ) -> SloReport {
        let mut per_level: BTreeMap<OversubLevel, (usize, usize)> = BTreeMap::new();
        for (level, series) in samples.values() {
            let Some(slo) = self.get(*level) else {
                continue;
            };
            let entry = per_level.entry(*level).or_default();
            entry.0 += 1;
            if slo.met_by(series) {
                entry.1 += 1;
            }
        }
        SloReport {
            rows: per_level
                .into_iter()
                .map(|(level, (vms, met))| SloRow {
                    level,
                    slo: self.get(level).expect("only declared levels counted"),
                    vms,
                    met,
                })
                .collect(),
        }
    }
}

/// Attainment of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloRow {
    /// The tier.
    pub level: OversubLevel,
    /// Its objective.
    pub slo: Slo,
    /// VMs evaluated.
    pub vms: usize,
    /// VMs meeting the objective.
    pub met: usize,
}

impl SloRow {
    /// Attainment fraction in `[0, 1]`.
    pub fn attainment(&self) -> f64 {
        if self.vms == 0 {
            1.0
        } else {
            self.met as f64 / self.vms as f64
        }
    }
}

/// A full attainment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SloReport {
    /// One row per declared tier with evaluated VMs, ascending by level.
    pub rows: Vec<SloRow>,
}

impl SloReport {
    /// Whether every tier attains its objective for every VM.
    pub fn all_met(&self) -> bool {
        self.rows.iter().all(|r| r.met == r.vms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::VmId;

    #[test]
    fn slo_threshold_and_quantile() {
        let slo = Slo::new(2.0, 0.9);
        // 9 of 10 under threshold: met exactly.
        let mut samples = vec![1.0; 9];
        samples.push(5.0);
        assert!(slo.met_by(&samples));
        assert!((slo.violation_rate(&samples) - 0.1).abs() < 1e-12);
        // 8 of 10: violated.
        samples.push(5.0);
        assert!(!slo.met_by(&samples));
        assert!(slo.met_by(&[]));
    }

    #[test]
    fn scaled_policy_loosens_with_level() {
        let levels = [
            OversubLevel::of(1),
            OversubLevel::of(2),
            OversubLevel::of(3),
        ];
        let policy = SloPolicy::scaled(1.5, 2.0, levels);
        let t = |n: u32| policy.get(OversubLevel::of(n)).unwrap().threshold_ms;
        assert_eq!(t(1), 3.0);
        assert_eq!(t(2), 6.0);
        assert_eq!(t(3), 9.0);
        assert!(policy.get(OversubLevel::of(4)).is_none());
    }

    #[test]
    fn attainment_report_counts_per_tier() {
        let levels = [OversubLevel::of(1), OversubLevel::of(3)];
        let policy = SloPolicy::scaled(1.0, 1.0, levels);
        let mut samples = BTreeMap::new();
        samples.insert(VmId(0), (OversubLevel::of(1), vec![0.5, 0.8])); // met (thr 1.0)
        samples.insert(VmId(1), (OversubLevel::of(1), vec![2.0, 2.0])); // violated
        samples.insert(VmId(2), (OversubLevel::of(3), vec![2.5])); // met (thr 3.0)
        samples.insert(VmId(3), (OversubLevel::of(2), vec![9.9])); // undeclared tier
        let report = policy.attainment(&samples);
        assert_eq!(report.rows.len(), 2);
        let premium = &report.rows[0];
        assert_eq!((premium.vms, premium.met), (2, 1));
        assert!((premium.attainment() - 0.5).abs() < 1e-12);
        let burst = &report.rows[1];
        assert_eq!((burst.vms, burst.met), (1, 1));
        assert!(!report.all_met());
    }

    #[test]
    fn fig2_run_respects_a_realistic_tiered_slo() {
        // End-to-end: the default scenario's SlackVM latencies meet a
        // policy whose thresholds scale with the level (premium tight,
        // 3:1 loose) — the paper's "premium offers keep their relevance".
        let out = crate::Fig2Scenario {
            step_secs: 1200,
            ..crate::Fig2Scenario::default()
        }
        .run();
        for row in &out.levels {
            let slo_ms = 1.16 * row.level.ratio() as f64 * 6.0;
            assert!(
                row.slackvm_ms <= slo_ms,
                "{}: {} ms exceeds scaled SLO {} ms",
                row.level,
                row.slackvm_ms,
                slo_ms
            );
        }
    }
}
