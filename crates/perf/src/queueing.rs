//! An M/M/c queueing alternative to the convex slowdown curve.
//!
//! The default contention model uses a phenomenological `1 + c·ρ^k`
//! curve. This module provides the classical grounding: an M/M/c queue
//! with `c` servers (the span's capacity in core-units) where the mean
//! response-time factor is `1 + C(c, ρ)/(c·(1−ρ))` (Erlang-C waiting
//! probability over the residual capacity), switched to a fluid-overload
//! regime beyond saturation. Comparing the two curves (see the tests and
//! the ablation bench) shows the convex default is a close, cheaper
//! stand-in in the region the experiments exercise.

use serde::{Deserialize, Serialize};

/// The M/M/c response-time factor model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmcModel {
    /// Slowdown ceiling, matching [`crate::ContentionModel::max_slowdown`].
    pub max_slowdown: f64,
}

impl Default for MmcModel {
    fn default() -> Self {
        MmcModel { max_slowdown: 40.0 }
    }
}

/// Erlang-C: probability an arrival waits in an M/M/c queue at
/// utilization `rho` (per-server), computed with the numerically stable
/// iterative form of the Erlang-B recursion.
pub fn erlang_c(servers: u32, rho: f64) -> f64 {
    if servers == 0 || rho >= 1.0 {
        return 1.0;
    }
    if rho <= 0.0 {
        return 0.0;
    }
    let a = rho * servers as f64; // offered load in Erlangs
                                  // Erlang-B by recursion: B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1)).
    let mut b = 1.0f64;
    for k in 1..=servers {
        b = a * b / (k as f64 + a * b);
    }
    // Erlang-C from Erlang-B.
    b / (1.0 - rho * (1.0 - b))
}

impl MmcModel {
    /// Mean response-time factor (sojourn time / service time) of an
    /// M/M/c queue with `servers` servers at per-server utilization
    /// `rho`; beyond saturation the fluid backlog factor `rho` scaled
    /// into the ceiling takes over.
    pub fn slowdown(&self, servers: u32, rho: f64) -> f64 {
        if !rho.is_finite() {
            return self.max_slowdown;
        }
        if servers == 0 {
            return self.max_slowdown;
        }
        if rho < 1.0 {
            let wait = erlang_c(servers, rho) / (servers as f64 * (1.0 - rho));
            (1.0 + wait).min(self.max_slowdown)
        } else {
            // An M/M/c queue is unstable at rho >= 1: backlog (and thus
            // sojourn time) grows without bound, so sustained overload
            // saturates at the ceiling — which also keeps the curve
            // monotone across the stability boundary.
            self.max_slowdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ContentionModel;
    use proptest::prelude::*;

    #[test]
    fn erlang_c_textbook_anchors() {
        // M/M/1: C = rho.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-9);
        // M/M/2 at rho 0.5 (a = 1 Erlang): C = 1/3.
        assert!((erlang_c(2, 0.5) - 1.0 / 3.0).abs() < 1e-9);
        // Bounds.
        assert_eq!(erlang_c(4, 0.0), 0.0);
        assert_eq!(erlang_c(4, 1.0), 1.0);
    }

    #[test]
    fn pooling_economies_of_scale() {
        // At equal per-server utilization, more servers wait less — the
        // queueing-theory ground truth behind §V-B's pooling benefit.
        let m = MmcModel::default();
        let small = m.slowdown(4, 0.85);
        let large = m.slowdown(64, 0.85);
        assert!(
            large < small,
            "64 servers {large} should beat 4 servers {small}"
        );
        assert!(large < 1.05, "a large pool at 0.85 barely queues");
    }

    #[test]
    fn mmc_and_convex_default_agree_on_the_shape() {
        // Both models: ~1 below rho 0.6, knee near 0.9, multiple past 1.
        let mmc = MmcModel::default();
        let convex = ContentionModel::default();
        for servers in [16u32, 32] {
            assert!((mmc.slowdown(servers, 0.3) - 1.0).abs() < 0.02);
            assert!((convex.slowdown(0.3) - 1.0).abs() < 0.02);
            assert!(mmc.slowdown(servers, 1.3) > 2.0);
            assert!(convex.slowdown(1.3) > 2.0);
        }
    }

    #[test]
    fn degenerate_inputs_hit_the_ceiling() {
        let m = MmcModel::default();
        assert_eq!(m.slowdown(0, 0.5), 40.0);
        assert_eq!(m.slowdown(8, f64::INFINITY), 40.0);
        assert_eq!(m.slowdown(8, 10.0), 40.0);
    }

    proptest! {
        #[test]
        fn erlang_c_is_a_probability(servers in 1u32..256, rho in 0.0f64..0.999) {
            let c = erlang_c(servers, rho);
            prop_assert!((0.0..=1.0).contains(&c), "C = {c}");
        }

        #[test]
        fn slowdown_is_monotone_in_rho(servers in 1u32..128, a in 0.0f64..2.0, b in 0.0f64..2.0) {
            let m = MmcModel::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.slowdown(servers, lo) <= m.slowdown(servers, hi) + 1e-9);
        }

        #[test]
        fn more_servers_never_hurt(servers in 1u32..127, rho in 0.0f64..0.99) {
            let m = MmcModel::default();
            prop_assert!(
                m.slowdown(servers + 1, rho) <= m.slowdown(servers, rho) + 1e-9
            );
        }
    }
}
