//! # slackvm-perf
//!
//! The contention and response-time model behind the paper's physical
//! experiment (§VII-A, Table IV and Figure 2).
//!
//! The paper measures DeathStarBench p90 response times on a dual-EPYC
//! host under three deployments of VMs at 1:1, 2:1 and 3:1
//! oversubscription, either on dedicated machines (baseline) or co-hosted
//! in SlackVM vNodes. We replace the testbed with a mechanism-faithful
//! simulation:
//!
//! - every VM carries a stochastic CPU-demand process (idle / bursty
//!   benchmark / correlated-diurnal interactive, the paper's 10/60/30
//!   mix);
//! - a *span* (whole machine for the baseline, vNode execution span for
//!   SlackVM) supplies capacity `P × (1 + smt_eff)` where `P` is the
//!   span's distinct **physical** core count and `smt_eff` the marginal
//!   throughput of a second sibling thread;
//! - instantaneous load `ρ = demand / capacity` maps to a smooth convex
//!   slowdown curve ([`model::slowdown`]); interactive VMs sample
//!   response times `base × slowdown` and report p90s.
//!
//! The mechanism that differentiates the two scenarios is **statistical
//! multiplexing**: a vNode hosts ~5× fewer VMs than a whole dedicated
//! machine at the same mean load, so its demand tail is relatively
//! heavier and its p90 lands deeper into the convex region — hitting the
//! most oversubscribed tier hardest, exactly the paper's observation
//! (premium VMs preserved within ~10%, 3:1 VMs degraded the most).

#![warn(missing_docs)]

pub mod calibration;
pub mod latency;
pub mod model;
pub mod percentile;
pub mod pooling_study;
pub mod queueing;
pub mod scenario;
pub mod slo;
pub mod span;

pub use calibration::{calibrate, calibrate_grid, CalibrationResult, CalibrationTargets};
pub use latency::LatencyCollector;
pub use model::{slowdown, ContentionModel};
pub use percentile::{percentile, Percentiles, TailPercentiles};
pub use pooling_study::{pooling_benefit, PoolingOutcome};
pub use queueing::{erlang_c, MmcModel};
pub use scenario::{paper_usage_mix, Fig2Outcome, Fig2Scenario, LevelLatency, SlowdownCurve};
pub use slo::{Slo, SloPolicy, SloReport, SloRow};
pub use span::ComputeSpan;
