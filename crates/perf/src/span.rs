//! Compute spans: the sets of CPUs a group of VMs actually runs on.

use slackvm_model::OversubLevel;
use slackvm_topology::{CoreId, CpuTopology};
use slackvm_workload::VmInstance;

/// How a span's threads relate to the physical cores beneath them —
/// the input of the capacity model.
///
/// A thread whose SMT sibling is pinned to *another* span does not own
/// its physical core: at busy moments the sibling competes for the
/// core's execution resources. This is the paper's "heterogeneity
/// between cores" overhead — interleaved vNode growth splits sibling
/// pairs across vNodes, and constrained spans trigger SMT sharing long
/// before a whole, unpinned machine would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanShape {
    /// Physical cores with **both** siblings inside the span.
    pub paired_cores: u32,
    /// Span threads whose sibling is free (or absent): they own a full
    /// core.
    pub solo_threads: u32,
    /// Span threads whose sibling belongs to another span: they share
    /// their core with foreign work.
    pub shared_threads: u32,
}

impl SpanShape {
    /// Total threads described by the shape.
    pub fn threads(&self) -> u32 {
        2 * self.paired_cores + self.solo_threads + self.shared_threads
    }
}

/// A group of VMs bound to a set of CPUs, ready for demand evaluation.
#[derive(Debug, Clone)]
pub struct ComputeSpan {
    /// Label for reports (e.g. "baseline 3:1" or "vNode 2:1").
    pub label: String,
    /// Oversubscription level(s) running on the span (reporting only).
    pub levels: Vec<OversubLevel>,
    /// Hardware threads of the span.
    pub threads: u32,
    /// Distinct physical cores backing those threads.
    pub physical_cores: u32,
    /// Sibling-sharing structure of the span.
    pub shape: SpanShape,
    /// The VMs scheduled on the span.
    pub vms: Vec<VmInstance>,
}

impl ComputeSpan {
    /// Builds a span over explicit CPUs of a topology.
    ///
    /// `foreign` lists CPUs pinned to *other* spans on the same machine;
    /// span threads whose SMT sibling appears there are classified as
    /// [`SpanShape::shared_threads`].
    pub fn from_cores(
        label: impl Into<String>,
        levels: Vec<OversubLevel>,
        topology: &CpuTopology,
        cores: &[CoreId],
        foreign: &[CoreId],
        vms: Vec<VmInstance>,
    ) -> Self {
        let in_span = |c: CoreId| cores.contains(&c);
        let in_foreign = |c: CoreId| foreign.contains(&c);
        let mut shape = SpanShape::default();
        let mut counted_pairs: Vec<CoreId> = Vec::new();
        for &c in cores {
            let siblings = topology.smt_siblings(c);
            let pair_in_span = siblings.iter().any(|&s| s != c && in_span(s));
            if pair_in_span {
                // Count each fully-owned core once (via its lowest id).
                let lowest = siblings
                    .iter()
                    .copied()
                    .filter(|&s| in_span(s))
                    .min()
                    .expect("span contains c");
                if lowest == c && !counted_pairs.contains(&lowest) {
                    counted_pairs.push(lowest);
                    shape.paired_cores += 1;
                }
            } else if siblings.iter().any(|&s| s != c && in_foreign(s)) {
                shape.shared_threads += 1;
            } else {
                shape.solo_threads += 1;
            }
        }
        ComputeSpan {
            label: label.into(),
            levels,
            threads: cores.len() as u32,
            physical_cores: topology.physical_core_count(cores.iter()),
            shape,
            vms,
        }
    }

    /// Builds a span covering a whole machine (the baseline's unpinned
    /// deployment): every core is fully owned.
    pub fn whole_machine(
        label: impl Into<String>,
        level: OversubLevel,
        topology: &CpuTopology,
        vms: Vec<VmInstance>,
    ) -> Self {
        let all: Vec<CoreId> = topology.core_ids().collect();
        Self::from_cores(label, vec![level], topology, &all, &[], vms)
    }

    /// Aggregate CPU demand (in core-units) of the span's VMs at `t`.
    pub fn demand_at(&self, t_secs: u64) -> f64 {
        self.vms.iter().map(|vm| vm.cpu_demand_vcpus(t_secs)).sum()
    }

    /// Total vCPUs exposed on the span.
    pub fn total_vcpus(&self) -> u32 {
        self.vms.iter().map(|vm| vm.spec.vcpus()).sum()
    }

    /// The interactive VMs (the latency probes).
    pub fn interactive_vms(&self) -> impl Iterator<Item = &VmInstance> {
        self.vms
            .iter()
            .filter(|vm| vm.class == slackvm_workload::UsageClass::Interactive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, VmId, VmSpec};
    use slackvm_topology::builders;
    use slackvm_workload::{CpuUsageModel, UsageClass};

    fn vm(id: u64, vcpus: u32, class: UsageClass, usage: CpuUsageModel) -> VmInstance {
        VmInstance {
            id: VmId(id),
            spec: VmSpec::of(vcpus, gib(1), OversubLevel::of(1)),
            class,
            usage,
            seed: id,
            arrival_secs: 0,
            departure_secs: u64::MAX,
        }
    }

    #[test]
    fn physical_core_counting_on_epyc() {
        let topo = builders::dual_epyc_7662();
        // Four threads = two sibling pairs = two physical cores.
        let cores = vec![CoreId(0), CoreId(1), CoreId(2), CoreId(3)];
        let span = ComputeSpan::from_cores("x", vec![], &topo, &cores, &[], vec![]);
        assert_eq!(span.threads, 4);
        assert_eq!(span.physical_cores, 2);
        assert_eq!(
            span.shape,
            SpanShape {
                paired_cores: 2,
                solo_threads: 0,
                shared_threads: 0
            }
        );
        let whole = ComputeSpan::whole_machine("m", OversubLevel::of(1), &topo, vec![]);
        assert_eq!(whole.threads, 256);
        assert_eq!(whole.physical_cores, 128);
        assert_eq!(whole.shape.paired_cores, 128);
    }

    #[test]
    fn shape_classifies_solo_and_shared_threads() {
        let topo = builders::dual_epyc_7662();
        // Thread 0 alone, sibling 1 free: solo. Thread 2 alone, sibling
        // 3 pinned to a foreign span: shared.
        let span = ComputeSpan::from_cores(
            "x",
            vec![],
            &topo,
            &[CoreId(0), CoreId(2)],
            &[CoreId(3)],
            vec![],
        );
        assert_eq!(
            span.shape,
            SpanShape {
                paired_cores: 0,
                solo_threads: 1,
                shared_threads: 1
            }
        );
        assert_eq!(span.shape.threads(), 2);
    }

    #[test]
    fn non_smt_topology_is_all_solo() {
        let topo = builders::flat(8);
        let cores: Vec<CoreId> = topo.core_ids().collect();
        let span = ComputeSpan::from_cores("x", vec![], &topo, &cores, &[], vec![]);
        assert_eq!(
            span.shape,
            SpanShape {
                paired_cores: 0,
                solo_threads: 8,
                shared_threads: 0
            }
        );
    }

    #[test]
    fn demand_sums_over_vms() {
        let topo = builders::flat(8);
        let vms = vec![
            vm(
                0,
                2,
                UsageClass::Stress,
                CpuUsageModel::Constant { base: 0.5 },
            ),
            vm(
                1,
                4,
                UsageClass::Idle,
                CpuUsageModel::Constant { base: 0.25 },
            ),
        ];
        let cores: Vec<CoreId> = topo.core_ids().collect();
        let span = ComputeSpan::from_cores("x", vec![], &topo, &cores, &[], vms);
        let d = span.demand_at(1000);
        // 0.5*2 + 0.25*4 = 2.0, modulo the tiny deterministic jitter.
        assert!((d - 2.0).abs() < 0.25, "demand {d}");
        assert_eq!(span.total_vcpus(), 6);
    }

    #[test]
    fn interactive_filter() {
        let topo = builders::flat(4);
        let vms = vec![
            vm(
                0,
                1,
                UsageClass::Interactive,
                CpuUsageModel::Idle { base: 0.1 },
            ),
            vm(1, 1, UsageClass::Stress, CpuUsageModel::Idle { base: 0.1 }),
            vm(
                2,
                1,
                UsageClass::Interactive,
                CpuUsageModel::Idle { base: 0.1 },
            ),
        ];
        let cores: Vec<CoreId> = topo.core_ids().collect();
        let span = ComputeSpan::from_cores("x", vec![], &topo, &cores, &[], vms);
        assert_eq!(span.interactive_vms().count(), 2);
    }
}
