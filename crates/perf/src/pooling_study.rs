//! The §V-B pooling study: what vNode pooling buys on a *partially
//! loaded* machine.
//!
//! On a saturated machine the pooled union of oversubscribed vNodes
//! usually cannot honour the strictest level's guarantee, so the
//! conservative fallback keeps vNodes separate (see
//! `slackvm_hypervisor::pooling`). But the common case is a machine with
//! unallocated cores — and there, pooling lets oversubscribed VMs
//! schedule over the oversubscribed vNodes' union *plus the free cores*,
//! increasing statistical multiplexing exactly as the paper argues
//! ("effectively leveraging all resources that remain unallocated by the
//! non-oversubscribed vNode").

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use slackvm_hypervisor::pooling::execution_spans;
use slackvm_hypervisor::{Host, PhysicalMachine};
use slackvm_model::{gib, Millicores, OversubLevel, PmId, VmId};
use slackvm_topology::builders;
use slackvm_workload::catalog::azure;
use slackvm_workload::usage::DAY_SECS;
use slackvm_workload::VmInstance;

use crate::latency::{latency_jitter, LatencyCollector};
use crate::model::ContentionModel;
use crate::scenario::sample_vm;
use crate::span::ComputeSpan;

/// Result of one pooling-on/off comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolingOutcome {
    /// Fraction of the machine's cores assigned to vNodes.
    pub fill_fraction: f64,
    /// Median per-VM p90 latency of 3:1 VMs with pooling enabled (ms).
    pub pooled_ms: f64,
    /// Median per-VM p90 latency of 3:1 VMs without pooling (ms).
    pub unpooled_ms: f64,
    /// Threads of the pooled span covering the 3:1 VMs.
    pub pooled_span_threads: u32,
    /// Threads of the 3:1 vNode alone.
    pub vnode_threads: u32,
}

impl PoolingOutcome {
    /// Latency ratio `unpooled / pooled` — above 1 means pooling helped.
    pub fn benefit(&self) -> f64 {
        self.unpooled_ms / self.pooled_ms
    }
}

/// Runs the study: fill the Table III machine to roughly
/// `target_fill` of its cores (three levels round-robin), then replay a
/// day of demand over the execution spans with pooling on and off.
pub fn pooling_benefit(seed: u64, target_fill: f64, base_latency_ms: f64) -> PoolingOutcome {
    let topology = Arc::new(builders::dual_epyc_7662());
    let catalog = azure();
    let levels = [
        OversubLevel::of(1),
        OversubLevel::of(2),
        OversubLevel::of(3),
    ];
    let mut machine =
        PhysicalMachine::with_topology_policy(PmId(0), Arc::clone(&topology), gib(1024));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut by_id: BTreeMap<VmId, VmInstance> = BTreeMap::new();
    let mut next = 0u64;
    let capacity = Millicores::from_cores(topology.num_cores());
    'fill: loop {
        for &level in &levels {
            if machine.alloc().cpu.0 as f64 >= target_fill * capacity.0 as f64 {
                break 'fill;
            }
            let vm = sample_vm(&mut rng, &catalog, level, next);
            next += 1;
            if machine.can_host(&vm.spec) {
                machine.deploy(vm.id, vm.spec).expect("can_host checked");
                by_id.insert(vm.id, vm);
            } else {
                break 'fill;
            }
        }
    }
    let fill_fraction = machine.alloc().cpu.0 as f64 / capacity.0 as f64;

    let model = ContentionModel::default();
    let run = |pooling: bool| -> (f64, u32) {
        let exec = execution_spans(&machine, pooling);
        let mut collector = LatencyCollector::new();
        let mut span_threads = 0u32;
        let spans: Vec<ComputeSpan> = exec
            .iter()
            .enumerate()
            .map(|(i, span)| {
                if span.levels.contains(&OversubLevel::of(3)) {
                    span_threads = span.cores.len() as u32;
                }
                let foreign: Vec<_> = exec
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, s)| s.cores.iter().copied())
                    .collect();
                let vms: Vec<VmInstance> = span.vm_ids.iter().map(|id| by_id[id].clone()).collect();
                ComputeSpan::from_cores(
                    "span",
                    span.levels.clone(),
                    &topology,
                    &span.cores,
                    &foreign,
                    vms,
                )
            })
            .collect();
        let mut t = 0u64;
        while t < DAY_SECS {
            for span in &spans {
                if !span.levels.contains(&OversubLevel::of(3)) {
                    continue;
                }
                let rho = model.load_on(span.demand_at(t), &span.shape);
                let s = model.slowdown(rho);
                for vm in span.interactive_vms() {
                    if vm.spec.level == OversubLevel::of(3) {
                        let jitter = 1.0 + 0.03 * latency_jitter(vm.seed, t);
                        collector.record(vm.id, base_latency_ms * s * jitter);
                    }
                }
            }
            t += 600;
        }
        (
            collector.median_of_p90s().unwrap_or(base_latency_ms),
            span_threads,
        )
    };

    let (pooled_ms, pooled_span_threads) = run(true);
    let (unpooled_ms, vnode_threads) = run(false);
    PoolingOutcome {
        fill_fraction,
        pooled_ms,
        unpooled_ms,
        pooled_span_threads,
        vnode_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_helps_on_a_half_loaded_machine() {
        let out = pooling_benefit(0xB00, 0.55, 1.16);
        assert!(
            out.fill_fraction > 0.4 && out.fill_fraction < 0.75,
            "fill {}",
            out.fill_fraction
        );
        // The pooled span absorbs the free cores: strictly wider.
        assert!(
            out.pooled_span_threads > out.vnode_threads,
            "pooled {} vs vnode {}",
            out.pooled_span_threads,
            out.vnode_threads
        );
        // And 3:1 latency improves (or at worst matches).
        assert!(
            out.benefit() >= 1.0,
            "pooling should not hurt: pooled {:.2} unpooled {:.2}",
            out.pooled_ms,
            out.unpooled_ms
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = pooling_benefit(7, 0.5, 1.16);
        let b = pooling_benefit(7, 0.5, 1.16);
        assert_eq!(a, b);
    }
}
