//! Percentile estimation over bounded sample sets.

use serde::{Deserialize, Serialize};

/// Computes the `q`-quantile (`0.0..=1.0`) of `samples` by the
/// nearest-rank method on a sorted copy. Returns `None` on an empty set.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// A standard summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile — the paper's headline quantity.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl Percentiles {
    /// Summarizes a sample set. Returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Percentiles> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        Some(Percentiles {
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
            count: sorted.len(),
        })
    }
}

/// A serving-oriented tail summary: the quantiles an online admission
/// path is judged by (p50/p99/p99.9), alongside the observed extremes.
/// [`Percentiles`] keeps the paper's offline p90-centric shape; this
/// one exists for load generators and SLO reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailPercentiles {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the serving-tail headline.
    pub p999: f64,
    /// Maximum observed.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl TailPercentiles {
    /// Summarizes a sample set by the same nearest-rank method as
    /// [`percentile`]. Returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<TailPercentiles> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        Some(TailPercentiles {
            p50: pick(0.50),
            p99: pick(0.99),
            p999: pick(0.999),
            max: *sorted.last().expect("non-empty"),
            count: sorted.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nearest_rank_on_small_sets() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 0.5), Some(5.0));
        assert_eq!(percentile(&s, 0.9), Some(9.0));
        assert_eq!(percentile(&s, 1.0), Some(10.0));
        assert_eq!(percentile(&s, 0.0), Some(1.0)); // rank clamps to 1
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[1.0], 1.5), None);
        assert_eq!(percentile(&[1.0], -0.1), None);
        assert!(Percentiles::of(&[]).is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], q), Some(42.0));
        }
        let p = Percentiles::of(&[42.0]).unwrap();
        assert_eq!(
            (p.p50, p.p90, p.p99, p.max, p.count),
            (42.0, 42.0, 42.0, 42.0, 1)
        );
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&s, 0.5), Some(3.0));
    }

    #[test]
    fn summary_fields_are_ordered() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::of(&s).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert_eq!(p.count, 100);
    }

    #[test]
    fn tail_summary_needs_a_thousand_samples_to_split_p999() {
        // Below 1000 samples, nearest-rank p99.9 collapses onto max.
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let t = TailPercentiles::of(&s).unwrap();
        assert_eq!((t.p50, t.p99, t.p999, t.max), (50.0, 99.0, 100.0, 100.0));
        // At 10k samples the quantiles separate.
        let s: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let t = TailPercentiles::of(&s).unwrap();
        assert_eq!((t.p50, t.p99, t.p999), (5000.0, 9900.0, 9990.0));
        assert_eq!(t.max, 10_000.0);
        assert_eq!(t.count, 10_000);
        assert!(TailPercentiles::of(&[]).is_none());
    }

    proptest! {
        #[test]
        fn tail_summary_agrees_with_the_standalone_function(
            samples in prop::collection::vec(-1e6f64..1e6, 1..300),
        ) {
            let t = TailPercentiles::of(&samples).unwrap();
            prop_assert_eq!(percentile(&samples, 0.50), Some(t.p50));
            prop_assert_eq!(percentile(&samples, 0.99), Some(t.p99));
            prop_assert_eq!(percentile(&samples, 0.999), Some(t.p999));
            prop_assert!(t.p50 <= t.p99 && t.p99 <= t.p999 && t.p999 <= t.max);
        }

        #[test]
        fn percentile_is_monotone_in_q(
            samples in prop::collection::vec(0.0f64..1e6, 1..200),
            qa in 0.0f64..=1.0, qb in 0.0f64..=1.0,
        ) {
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            let a = percentile(&samples, lo).unwrap();
            let b = percentile(&samples, hi).unwrap();
            prop_assert!(a <= b);
        }

        #[test]
        fn percentile_is_an_observed_sample(
            samples in prop::collection::vec(-1e3f64..1e3, 1..100),
            q in 0.0f64..=1.0,
        ) {
            let v = percentile(&samples, q).unwrap();
            prop_assert!(samples.contains(&v));
        }

        #[test]
        fn summary_matches_exact_sorted_quantile_oracle(
            samples in prop::collection::vec(-1e6f64..1e6, 1..300),
        ) {
            // The oracle: an independent nearest-rank computation on an
            // explicitly sorted copy.
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            let oracle = |q: f64| {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            let p = Percentiles::of(&samples).unwrap();
            prop_assert_eq!(p.p50, oracle(0.50));
            prop_assert_eq!(p.p90, oracle(0.90));
            prop_assert_eq!(p.p99, oracle(0.99));
            prop_assert_eq!(p.max, *sorted.last().unwrap());
            prop_assert_eq!(p.count, samples.len());
            // And the standalone function agrees with the summary.
            prop_assert_eq!(percentile(&samples, 0.9), Some(p.p90));
            // Ordering invariant of the summary itself.
            prop_assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
        }
    }
}
