//! Response-time sampling for interactive VMs.

use slackvm_model::VmId;

use crate::percentile::Percentiles;

/// Collects per-VM latency samples and summarizes them.
#[derive(Debug, Default)]
pub struct LatencyCollector {
    samples: std::collections::BTreeMap<VmId, Vec<f64>>,
}

impl LatencyCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one response-time sample for a VM.
    pub fn record(&mut self, vm: VmId, latency_ms: f64) {
        self.samples.entry(vm).or_default().push(latency_ms);
    }

    /// Number of VMs with at least one sample.
    pub fn num_vms(&self) -> usize {
        self.samples.len()
    }

    /// Per-VM p90s, in VM-id order.
    pub fn per_vm_p90(&self) -> Vec<(VmId, f64)> {
        self.samples
            .iter()
            .filter_map(|(id, s)| Percentiles::of(s).map(|p| (*id, p.p90)))
            .collect()
    }

    /// The paper's headline statistic: the *median across VMs of each
    /// VM's p90 response time* (Table IV).
    pub fn median_of_p90s(&self) -> Option<f64> {
        let mut p90s: Vec<f64> = self.per_vm_p90().into_iter().map(|(_, p)| p).collect();
        if p90s.is_empty() {
            return None;
        }
        p90s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(p90s[(p90s.len() - 1) / 2])
    }

    /// Distribution of per-VM p90s (Figure 2's box-plot input).
    pub fn p90_distribution(&self) -> Option<Percentiles> {
        let p90s: Vec<f64> = self.per_vm_p90().into_iter().map(|(_, p)| p).collect();
        Percentiles::of(&p90s)
    }
}

/// A deterministic jitter in `[-1, 1]` for latency sampling, decorrelated
/// from the demand jitter by a different mixing constant.
pub fn latency_jitter(seed: u64, t_secs: u64) -> f64 {
    let mut z = seed ^ t_secs.wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^= z >> 33;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_p90s_is_the_middle_vm() {
        let mut c = LatencyCollector::new();
        // VM 0: constant 1ms; VM 1: constant 2ms; VM 2: constant 3ms.
        for (id, l) in [(0u64, 1.0), (1, 2.0), (2, 3.0)] {
            for _ in 0..100 {
                c.record(VmId(id), l);
            }
        }
        assert_eq!(c.num_vms(), 3);
        assert_eq!(c.median_of_p90s(), Some(2.0));
        let dist = c.p90_distribution().unwrap();
        assert_eq!(dist.count, 3);
        assert_eq!(dist.max, 3.0);
    }

    #[test]
    fn p90_catches_the_tail() {
        let mut c = LatencyCollector::new();
        // 95 fast samples, 5 slow: p90 sits in the fast bulk; p99 the tail.
        for i in 0..100 {
            c.record(VmId(0), if i < 95 { 1.0 } else { 10.0 });
        }
        let (_, p90) = c.per_vm_p90()[0];
        assert_eq!(p90, 1.0);
        // 85 fast, 15 slow: p90 lands in the tail.
        let mut c2 = LatencyCollector::new();
        for i in 0..100 {
            c2.record(VmId(0), if i < 85 { 1.0 } else { 10.0 });
        }
        assert_eq!(c2.per_vm_p90()[0].1, 10.0);
    }

    #[test]
    fn empty_collector_yields_none() {
        let c = LatencyCollector::new();
        assert_eq!(c.median_of_p90s(), None);
        assert!(c.p90_distribution().is_none());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = latency_jitter(42, 100);
        assert_eq!(a, latency_jitter(42, 100));
        assert_ne!(a, latency_jitter(42, 101));
        for t in 0..1000 {
            let j = latency_jitter(7, t);
            assert!((-1.0..=1.0).contains(&j));
        }
    }
}
