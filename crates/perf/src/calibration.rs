//! Calibration of the contention model against published latencies.
//!
//! The reproduction deliberately avoids curve-fitting its *headline*
//! claims — the Fig. 2 shape is mechanism-driven. But when a user wants
//! the absolute numbers to track a testbed (the paper's, or their own),
//! this module fits the two free constants — the base latency and the
//! convex-pressure coefficient — to a set of target medians by grid
//! search over the deterministic scenario replay.

use serde::{Deserialize, Serialize};

use crate::model::ContentionModel;
use crate::scenario::Fig2Scenario;

/// Targets to calibrate against: per-level `(baseline_ms, slackvm_ms)`
/// medians, ordered by level ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTargets {
    /// `(baseline_ms, slackvm_ms)` per level, ascending.
    pub medians: Vec<(f64, f64)>,
}

impl CalibrationTargets {
    /// The paper's Table IV.
    pub fn paper_table4() -> Self {
        CalibrationTargets {
            medians: vec![(1.16, 1.27), (1.46, 1.65), (3.47, 7.67)],
        }
    }
}

/// The fitted parameters and their residual.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// Fitted base (uncontended) latency, ms.
    pub base_latency_ms: f64,
    /// Fitted convex-pressure coefficient.
    pub pressure_coeff: f64,
    /// Sum of squared relative errors over all target cells.
    pub residual: f64,
    /// The scenario's medians under the fitted parameters.
    pub fitted_medians: Vec<(f64, f64)>,
}

/// Relative sum-of-squares distance between a scenario outcome and the
/// targets.
fn residual_of(scenario: &Fig2Scenario, targets: &CalibrationTargets) -> (f64, Vec<(f64, f64)>) {
    let outcome = scenario.run();
    let mut residual = 0.0;
    let mut fitted = Vec::new();
    for (row, (tb, ts)) in outcome.levels.iter().zip(&targets.medians) {
        let eb = (row.baseline_ms - tb) / tb;
        let es = (row.slackvm_ms - ts) / ts;
        residual += eb * eb + es * es;
        fitted.push((row.baseline_ms, row.slackvm_ms));
    }
    (residual, fitted)
}

/// Grid-searches explicit candidate values for `base_latency_ms` and
/// `pressure_coeff`, minimizing the relative error against `targets`.
/// Panics on empty candidate lists.
pub fn calibrate_grid(
    targets: &CalibrationTargets,
    step_secs: u64,
    bases: &[f64],
    coeffs: &[f64],
) -> CalibrationResult {
    assert!(
        !bases.is_empty() && !coeffs.is_empty(),
        "calibration grids must be non-empty"
    );
    let mut best: Option<CalibrationResult> = None;
    for &base in bases {
        for &coeff in coeffs {
            let scenario = Fig2Scenario {
                base_latency_ms: base,
                step_secs,
                model: ContentionModel {
                    pressure_coeff: coeff,
                    ..ContentionModel::default()
                },
                ..Fig2Scenario::default()
            };
            let (residual, fitted) = residual_of(&scenario, targets);
            if best.as_ref().is_none_or(|b| residual < b.residual) {
                best = Some(CalibrationResult {
                    base_latency_ms: base,
                    pressure_coeff: coeff,
                    residual,
                    fitted_medians: fitted,
                });
            }
        }
    }
    best.expect("grid is non-empty")
}

/// Full-resolution search: base in `[0.5, 2.0] ms` (0.1 steps),
/// coefficient in `[0.4, 3.2]` (0.2 steps). The replay is deterministic,
/// so the coarse grid is stable; `step_secs` trades fidelity for speed.
pub fn calibrate(targets: &CalibrationTargets, step_secs: u64) -> CalibrationResult {
    let bases: Vec<f64> = (0..=15).map(|i| 0.5 + 0.1 * i as f64).collect();
    let coeffs: Vec<f64> = (0..=14).map(|i| 0.4 + 0.2 * i as f64).collect();
    calibrate_grid(targets, step_secs, &bases, &coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_against_the_paper_beats_the_default() {
        let targets = CalibrationTargets::paper_table4();
        // Residual of the shipped defaults.
        let (default_residual, _) = residual_of(
            &Fig2Scenario {
                step_secs: 2400,
                ..Fig2Scenario::default()
            },
            &targets,
        );
        // A small grid around the defaults keeps the test fast; the full
        // grid (`calibrate`) is exercised by the bench harness.
        let fit = calibrate_grid(&targets, 2400, &[1.0, 1.16, 1.4], &[0.8, 1.2, 2.0]);
        assert!(
            fit.residual <= default_residual + 1e-9,
            "fit {:.4} vs default {:.4}",
            fit.residual,
            default_residual
        );
        // The fitted base stays in a physically sensible band around the
        // paper's uncontended 1.16 ms.
        assert!(
            (0.5..=2.0).contains(&fit.base_latency_ms),
            "base {}",
            fit.base_latency_ms
        );
        // And the fitted medians keep the qualitative shape.
        assert!(fit.fitted_medians[0].0 <= fit.fitted_medians[2].0);
        assert!(fit.fitted_medians[2].1 > fit.fitted_medians[2].0);
    }

    #[test]
    fn calibration_is_deterministic() {
        let targets = CalibrationTargets::paper_table4();
        let grid_b = [1.0, 1.2];
        let grid_c = [1.2, 2.0];
        let a = calibrate_grid(&targets, 4800, &grid_b, &grid_c);
        let b = calibrate_grid(&targets, 4800, &grid_b, &grid_c);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grids_are_rejected() {
        calibrate_grid(&CalibrationTargets::paper_table4(), 4800, &[], &[1.0]);
    }
}
