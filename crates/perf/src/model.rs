//! The contention model: load → slowdown.

use serde::{Deserialize, Serialize};

use crate::span::SpanShape;

/// Parameters of the contention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Marginal throughput of a second SMT sibling thread relative to a
    /// full core (literature puts Zen 2 around 0.2–0.3).
    pub smt_eff: f64,
    /// Capacity of a thread whose SMT sibling is busy in *another*
    /// span, in core-units: a fair split of the core's `1 + smt_eff`
    /// throughput minus cross-span cache interference.
    pub shared_core_share: f64,
    /// Coefficient of the convex slowdown term.
    pub pressure_coeff: f64,
    /// Exponent of the convex slowdown term: higher = sharper knee near
    /// saturation.
    pub pressure_exp: f64,
    /// Slowdown ceiling (a real system sheds or times out beyond this).
    pub max_slowdown: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            smt_eff: 0.25,
            shared_core_share: 0.5,
            pressure_coeff: 1.2,
            pressure_exp: 8.0,
            max_slowdown: 40.0,
        }
    }
}

impl ContentionModel {
    /// Compute capacity of a span that *fully owns* its physical cores:
    /// the first thread of each core contributes 1.0, each extra
    /// sibling `smt_eff`.
    pub fn span_capacity(&self, physical_cores: u32, threads: u32) -> f64 {
        let extra = threads.saturating_sub(physical_cores) as f64;
        physical_cores as f64 + extra * self.smt_eff
    }

    /// Compute capacity of a span from its sibling-sharing shape:
    /// fully-paired cores deliver `1 + smt_eff`, solo threads a full
    /// core, and threads sharing their core with a foreign span only
    /// `shared_core_share`.
    pub fn capacity_of(&self, shape: &SpanShape) -> f64 {
        shape.paired_cores as f64 * (1.0 + self.smt_eff)
            + shape.solo_threads as f64
            + shape.shared_threads as f64 * self.shared_core_share
    }

    /// Normalized load of a span: `demand / capacity_of(shape)`.
    pub fn load_on(&self, demand_cores: f64, shape: &SpanShape) -> f64 {
        let cap = self.capacity_of(shape);
        if cap <= 0.0 {
            return f64::INFINITY;
        }
        demand_cores / cap
    }

    /// Normalized load of a fully-owned span: `demand / capacity`.
    pub fn load(&self, demand_cores: f64, physical_cores: u32, threads: u32) -> f64 {
        let cap = self.span_capacity(physical_cores, threads);
        if cap <= 0.0 {
            return f64::INFINITY;
        }
        demand_cores / cap
    }

    /// The slowdown a task on the span experiences at load `rho`.
    pub fn slowdown(&self, rho: f64) -> f64 {
        slowdown_with(
            rho,
            self.pressure_coeff,
            self.pressure_exp,
            self.max_slowdown,
        )
    }
}

/// The default model's slowdown curve.
///
/// ```
/// use slackvm_perf::slowdown;
/// assert!(slowdown(0.3) < 1.01);            // uncontended
/// assert!((1.3..1.8).contains(&slowdown(0.95))); // near the knee
/// assert!(slowdown(1.2) > 4.0);             // saturated
/// ```
pub fn slowdown(rho: f64) -> f64 {
    ContentionModel::default().slowdown(rho)
}

/// `1 + c·ρ^k`, clamped to `[1, max]`.
///
/// A smooth, convex stand-in for the queueing knee: negligible below
/// ρ≈0.7, noticeable around ρ≈0.9, and exploding past saturation — the
/// shape that makes demand-tail differences between large and small
/// pools visible at the 90th percentile.
fn slowdown_with(rho: f64, coeff: f64, exp: f64, max: f64) -> f64 {
    if !rho.is_finite() {
        return max;
    }
    let rho = rho.max(0.0);
    (1.0 + coeff * rho.powf(exp)).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capacity_counts_smt_marginally() {
        let m = ContentionModel::default();
        assert_eq!(m.span_capacity(128, 256), 160.0); // the EPYC testbed
        assert_eq!(m.span_capacity(32, 32), 32.0); // no SMT
        assert_eq!(m.span_capacity(28, 56), 35.0); // a 3:1 vNode span
                                                   // Degenerate: more cores than threads behaves as thread count
                                                   // equal to cores (extra = 0).
        assert_eq!(m.span_capacity(4, 2), 4.0);
    }

    #[test]
    fn slowdown_anchors() {
        // Negligible at low load, mild near 0.9, multiples past 1.
        assert!((slowdown(0.0) - 1.0).abs() < 1e-12);
        assert!(slowdown(0.3) < 1.01);
        assert!(slowdown(0.7) < 1.08);
        assert!((1.3..1.8).contains(&slowdown(0.95)));
        assert!((2.0..2.5).contains(&slowdown(1.0)));
        assert!(slowdown(1.2) > 4.0);
        assert_eq!(slowdown(100.0), 40.0); // clamped
        assert_eq!(slowdown(f64::INFINITY), 40.0);
    }

    #[test]
    fn load_handles_zero_capacity() {
        let m = ContentionModel::default();
        assert!(m.load(1.0, 0, 0).is_infinite());
        assert!((m.load(80.0, 128, 256) - 0.5).abs() < 1e-12);
        assert!(m.load_on(1.0, &SpanShape::default()).is_infinite());
    }

    #[test]
    fn shape_capacity_penalizes_foreign_siblings() {
        let m = ContentionModel::default();
        // A whole-machine shape: 128 paired cores -> 160.
        let whole = SpanShape {
            paired_cores: 128,
            solo_threads: 0,
            shared_threads: 0,
        };
        assert_eq!(m.capacity_of(&whole), 160.0);
        assert_eq!(whole.threads(), 256);
        // A fragmented vNode: 3 paired cores, 35 threads whose siblings
        // belong to other vNodes.
        let frag = SpanShape {
            paired_cores: 3,
            solo_threads: 0,
            shared_threads: 35,
        };
        assert_eq!(m.capacity_of(&frag), 3.0 * 1.25 + 35.0 * 0.5);
        assert_eq!(frag.threads(), 41);
        // The same 41 threads fully owned would deliver far more.
        let owned = SpanShape {
            paired_cores: 3,
            solo_threads: 35,
            shared_threads: 0,
        };
        assert!(m.capacity_of(&owned) > m.capacity_of(&frag) * 1.8);
    }

    proptest! {
        #[test]
        fn slowdown_is_monotone_and_bounded(a in 0.0f64..5.0, b in 0.0f64..5.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(slowdown(lo) <= slowdown(hi) + 1e-12);
            prop_assert!(slowdown(hi) >= 1.0);
            prop_assert!(slowdown(hi) <= 40.0);
        }

        #[test]
        fn capacity_increases_with_threads(p in 1u32..256, extra in 0u32..256) {
            let m = ContentionModel::default();
            prop_assert!(m.span_capacity(p, p + extra) >= m.span_capacity(p, p));
            // ... but each sibling is worth less than a core.
            prop_assert!(m.span_capacity(p, 2 * p) <= 2.0 * p as f64);
        }
    }
}
