//! The Fig. 2 / Table IV experiment: baseline vs SlackVM response times.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use slackvm_hypervisor::pooling::execution_spans;
use slackvm_hypervisor::{Host, PhysicalMachine, UniformMachine};
use slackvm_model::{gib, OversubLevel, PmConfig, PmId, VmId, VmSpec};
use slackvm_topology::builders;
use slackvm_workload::catalog::{azure, Catalog};
use slackvm_workload::usage::DAY_SECS;
use slackvm_workload::{CpuUsageModel, UsageClass, VmInstance};

use crate::latency::{latency_jitter, LatencyCollector};
use crate::model::ContentionModel;
use crate::percentile::Percentiles;
use crate::queueing::MmcModel;
use crate::span::ComputeSpan;

/// Configuration of the physical-experiment reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Scenario {
    /// RNG seed for VM sampling.
    pub seed: u64,
    /// Base (uncontended) p90 response time of the interactive app, in
    /// ms. The paper's 1:1 baseline measures 1.16 ms.
    pub base_latency_ms: f64,
    /// Contention-model parameters.
    pub model: ContentionModel,
    /// Demand-sampling period (seconds).
    pub step_secs: u64,
    /// Simulated duration (seconds); one day captures a full diurnal
    /// cycle of the interactive load.
    pub duration_secs: u64,
    /// Whether SlackVM pools oversubscribed vNodes for execution.
    pub pooling: bool,
    /// Which load→slowdown curve to use.
    pub curve: SlowdownCurve,
}

/// The contention curve the replay applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SlowdownCurve {
    /// The phenomenological convex curve (`ContentionModel`) — cheap and
    /// close; the default.
    #[default]
    Convex,
    /// The classical M/M/c response-time factor (`MmcModel`) with the
    /// span's core-unit capacity as the server count.
    Mmc,
}

impl Default for Fig2Scenario {
    fn default() -> Self {
        Fig2Scenario {
            seed: 0xF162,
            base_latency_ms: 1.16,
            model: ContentionModel::default(),
            step_secs: 120,
            duration_secs: DAY_SECS,
            pooling: true,
            curve: SlowdownCurve::default(),
        }
    }
}

/// Per-level result row (one line of Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelLatency {
    /// Oversubscription level.
    pub level: OversubLevel,
    /// Median of per-VM p90s on the dedicated machine (ms).
    pub baseline_ms: f64,
    /// Median of per-VM p90s under SlackVM co-hosting (ms).
    pub slackvm_ms: f64,
    /// `slackvm_ms / baseline_ms` — Table IV's parenthesized factor.
    pub overhead: f64,
    /// Distribution of per-VM p90s, baseline (Fig. 2's box input).
    pub baseline_dist: Percentiles,
    /// Distribution of per-VM p90s, SlackVM.
    pub slackvm_dist: Percentiles,
    /// VMs hosted on the dedicated machine.
    pub baseline_vms: usize,
    /// VMs of this level co-hosted under SlackVM.
    pub slackvm_vms: usize,
}

/// The full experiment outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Outcome {
    /// One row per level, ascending.
    pub levels: Vec<LevelLatency>,
    /// Total VMs co-hosted on the single SlackVM machine.
    pub slackvm_total_vms: usize,
    /// Thread count of each SlackVM execution span, by label.
    pub slackvm_span_threads: Vec<(String, u32)>,
}

impl Fig2Scenario {
    /// Runs the experiment with the paper's levels (1:1, 2:1, 3:1) and
    /// the Azure size distribution on the Table III testbed.
    pub fn run(&self) -> Fig2Outcome {
        let levels = [
            OversubLevel::of(1),
            OversubLevel::of(2),
            OversubLevel::of(3),
        ];
        let catalog = azure();
        let topology = Arc::new(builders::dual_epyc_7662());
        let mem = gib(1024);

        // ---- Baseline: one dedicated, unpinned machine per level. ----
        let mut baseline_spans = Vec::new();
        for (i, &level) in levels.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (i as u64 + 1));
            let mut host = UniformMachine::new(PmId(i as u32), PmConfig::of(256, mem), level);
            let mut vms = Vec::new();
            let mut next = 0u64;
            loop {
                let vm = sample_vm(&mut rng, &catalog, level, (i as u64) << 32 | next);
                next += 1;
                if host.deploy(vm.id, vm.spec).is_err() {
                    break;
                }
                vms.push(vm);
            }
            baseline_spans.push(ComputeSpan::whole_machine(
                format!("baseline {level}"),
                level,
                &topology,
                vms,
            ));
        }

        // ---- SlackVM: all levels co-hosted on one partitioned machine. ----
        let mut machine =
            PhysicalMachine::with_topology_policy(PmId(9), Arc::clone(&topology), mem);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x51AC);
        let mut by_id: BTreeMap<VmId, VmInstance> = BTreeMap::new();
        let mut exhausted = [false; 3];
        let mut next = 1u64 << 48;
        while !exhausted.iter().all(|&e| e) {
            for (i, &level) in levels.iter().enumerate() {
                if exhausted[i] {
                    continue;
                }
                let vm = sample_vm(&mut rng, &catalog, level, next);
                next += 1;
                if machine.can_host(&vm.spec) {
                    machine.deploy(vm.id, vm.spec).expect("can_host checked");
                    by_id.insert(vm.id, vm);
                } else {
                    exhausted[i] = true;
                }
            }
        }
        let slackvm_total_vms = by_id.len();
        let exec = execution_spans(&machine, self.pooling);
        let mut slackvm_spans = Vec::new();
        let mut span_threads = Vec::new();
        for (i, span) in exec.iter().enumerate() {
            let label = format!(
                "vNode {}",
                span.levels
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            );
            span_threads.push((label.clone(), span.cores.len() as u32));
            let vms: Vec<VmInstance> = span.vm_ids.iter().map(|id| by_id[id].clone()).collect();
            // CPUs pinned to the *other* execution spans: their busy
            // siblings halve this span's fragmented cores.
            let foreign: Vec<_> = exec
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, s)| s.cores.iter().copied())
                .collect();
            slackvm_spans.push(ComputeSpan::from_cores(
                label,
                span.levels.clone(),
                &topology,
                &span.cores,
                &foreign,
                vms,
            ));
        }

        // ---- Replay demand and collect latencies per level. ----
        let mut base_collectors: BTreeMap<OversubLevel, LatencyCollector> = BTreeMap::new();
        let mut slack_collectors: BTreeMap<OversubLevel, LatencyCollector> = BTreeMap::new();
        self.replay(&baseline_spans, &mut base_collectors);
        self.replay(&slackvm_spans, &mut slack_collectors);

        let mut rows = Vec::new();
        for (i, &level) in levels.iter().enumerate() {
            let base = &base_collectors[&level];
            let slack = &slack_collectors[&level];
            let baseline_ms = base.median_of_p90s().unwrap_or(self.base_latency_ms);
            let slackvm_ms = slack.median_of_p90s().unwrap_or(self.base_latency_ms);
            rows.push(LevelLatency {
                level,
                baseline_ms,
                slackvm_ms,
                overhead: slackvm_ms / baseline_ms,
                baseline_dist: base
                    .p90_distribution()
                    .expect("baseline hosts interactive VMs"),
                slackvm_dist: slack
                    .p90_distribution()
                    .expect("slackvm hosts interactive VMs"),
                baseline_vms: baseline_spans[i].vms.len(),
                slackvm_vms: by_id.values().filter(|vm| vm.spec.level == level).count(),
            });
        }

        Fig2Outcome {
            levels: rows,
            slackvm_total_vms,
            slackvm_span_threads: span_threads,
        }
    }

    /// Evaluates demand over time on each span, recording interactive
    /// response times into per-level collectors.
    fn replay(
        &self,
        spans: &[ComputeSpan],
        collectors: &mut BTreeMap<OversubLevel, LatencyCollector>,
    ) {
        let mut t = 0u64;
        while t < self.duration_secs {
            for span in spans {
                let demand = span.demand_at(t);
                let rho = self.model.load_on(demand, &span.shape);
                let s = match self.curve {
                    SlowdownCurve::Convex => self.model.slowdown(rho),
                    SlowdownCurve::Mmc => {
                        let servers = self.model.capacity_of(&span.shape).round().max(1.0) as u32;
                        MmcModel {
                            max_slowdown: self.model.max_slowdown,
                        }
                        .slowdown(servers, rho)
                    }
                };
                for vm in span.interactive_vms() {
                    let jitter = 1.0 + 0.03 * latency_jitter(vm.seed, t);
                    let latency = self.base_latency_ms * s * jitter;
                    collectors
                        .entry(vm.spec.level)
                        .or_default()
                        .record(vm.id, latency);
                }
            }
            t += self.step_secs;
        }
    }
}

/// The contention model's §VII-A load mix as a pure function: maps a
/// unit-interval `roll` and a per-VM `seed` to the 10/60/30 behaviour
/// classes with CloudFactory-like utilization levels (most VMs run well
/// below their allocation; the benchmark class bursts; interactive load
/// follows a shared diurnal wave). [`Fig2Scenario`] draws through this,
/// and `slackvm-pressure` derives its replay usage signal from the same
/// mix so hotspot detection sees the load the latency model charges for.
pub fn paper_usage_mix(roll: f64, seed: u64) -> (UsageClass, CpuUsageModel) {
    if roll < 0.10 {
        (UsageClass::Idle, CpuUsageModel::Idle { base: 0.02 })
    } else if roll < 0.70 {
        (
            UsageClass::Stress,
            CpuUsageModel::Bursty {
                high: 0.90,
                low: 0.03,
                period_secs: 1800,
                duty: 0.15,
            },
        )
    } else {
        (
            UsageClass::Interactive,
            CpuUsageModel::Diurnal {
                low: 0.05,
                high: 0.40,
                // A shared macro-phase (everyone peaks together) with a
                // small per-VM offset.
                phase_secs: seed % 1800,
            },
        )
    }
}

/// Draws one VM of `level`: size from the level's catalog, behaviour
/// from [`paper_usage_mix`].
pub(crate) fn sample_vm<R: Rng>(
    rng: &mut R,
    catalog: &Catalog,
    level: OversubLevel,
    id: u64,
) -> VmInstance {
    let flavor = catalog.sample_for_level(rng, level);
    let spec = VmSpec::of(flavor.request.vcpus, flavor.request.mem_mib, level);
    let seed: u64 = rng.gen();
    let roll: f64 = rng.gen();
    let (class, usage) = paper_usage_mix(roll, seed);
    VmInstance {
        id: VmId(id),
        spec,
        class,
        usage,
        seed,
        arrival_secs: 0,
        departure_secs: u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Fig2Outcome {
        Fig2Scenario {
            step_secs: 600, // coarser sampling keeps the test fast
            ..Fig2Scenario::default()
        }
        .run()
    }

    #[test]
    fn latency_grows_with_oversubscription_in_both_scenarios() {
        let out = outcome();
        assert_eq!(out.levels.len(), 3);
        let b: Vec<f64> = out.levels.iter().map(|l| l.baseline_ms).collect();
        let s: Vec<f64> = out.levels.iter().map(|l| l.slackvm_ms).collect();
        assert!(b[0] <= b[1] && b[1] <= b[2], "baseline ordering {b:?}");
        assert!(s[0] <= s[1] && s[1] <= s[2], "slackvm ordering {s:?}");
    }

    #[test]
    fn premium_tier_is_preserved() {
        // Paper: "the least oversubscribed VMs are preserved from
        // performance degradation (less than 10% for 90th percentile)".
        let out = outcome();
        let premium = &out.levels[0];
        assert!(
            premium.overhead < 1.15,
            "premium overhead {} too high",
            premium.overhead
        );
    }

    #[test]
    fn most_oversubscribed_tier_pays_the_most() {
        let out = outcome();
        let overheads: Vec<f64> = out.levels.iter().map(|l| l.overhead).collect();
        assert!(
            overheads[2] > overheads[0],
            "3:1 overhead {} should exceed 1:1 overhead {}",
            overheads[2],
            overheads[0]
        );
        assert!(
            overheads[2] > 1.2,
            "3:1 should degrade noticeably, got {}",
            overheads[2]
        );
    }

    #[test]
    fn vm_counts_are_plausible() {
        // Paper magnitudes: dedicated machines host hundreds; the
        // co-hosted machine hosts roughly a third per level.
        let out = outcome();
        assert!(out.levels[0].baseline_vms > 60);
        assert!(out.levels[2].baseline_vms > out.levels[0].baseline_vms);
        assert!(out.slackvm_total_vms > 100);
        for row in &out.levels {
            assert!(
                row.slackvm_vms > 20,
                "{} hosts {}",
                row.level,
                row.slackvm_vms
            );
        }
    }

    #[test]
    fn mmc_curve_reproduces_the_same_shape() {
        let mmc = Fig2Scenario {
            step_secs: 1200,
            curve: SlowdownCurve::Mmc,
            ..Fig2Scenario::default()
        }
        .run();
        let rows = &mmc.levels;
        // Under M/M/c the big baseline pools are all effectively
        // uncontended (economies of scale), so allow jitter-level ties.
        assert!(rows[0].baseline_ms <= rows[1].baseline_ms * 1.02);
        assert!(rows[1].baseline_ms <= rows[2].baseline_ms * 1.02);
        assert!(
            rows[0].overhead < 1.15,
            "premium overhead {}",
            rows[0].overhead
        );
        assert!(
            rows[2].overhead > rows[0].overhead,
            "3:1 should pay the most under M/M/c too"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = outcome();
        let b = outcome();
        assert_eq!(a, b);
    }
}
