//! Per-VM demand estimators: EWMA plus a windowed percentile.
//!
//! Raw usage samples are noisy (bursts, jitter) and a planner that
//! chases instantaneous readings migrates VMs on every blip. The
//! estimator folds the sample stream into two smoothed views — an
//! exponentially weighted moving average (the trend) and a windowed
//! percentile (the recent tail) — and the planner consumes the larger
//! of the two, so a VM is sized by its bursts, not its idle valleys.
//!
//! Everything here is a pure function of the sample stream: replaying
//! the same samples into a fresh estimator reproduces the same outputs
//! bit for bit, which is what lets the offline `pressure apply` path
//! and the online serve tick agree move for move.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use slackvm_model::VmId;

/// Smoothing parameters shared by every per-VM estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// EWMA smoothing factor in `(0, 1]` — the weight of the newest
    /// sample. 1.0 disables smoothing (the EWMA *is* the last sample).
    pub alpha: f64,
    /// Number of recent samples the percentile window retains.
    pub window: usize,
    /// The quantile of the window the planner reads, in `[0, 1]`
    /// (0.9 = p90, the paper's reported tail).
    pub quantile: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            alpha: 0.3,
            window: 16,
            quantile: 0.9,
        }
    }
}

impl EstimatorConfig {
    /// Rejects degenerate configurations.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        if self.window == 0 {
            return Err("window must be >= 1 sample".into());
        }
        if !(0.0..=1.0).contains(&self.quantile) {
            return Err("quantile must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// One VM's smoothed usage signal.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageEstimator {
    ewma: f64,
    seeded: bool,
    window: VecDeque<f64>,
}

impl UsageEstimator {
    /// A fresh estimator that has seen nothing.
    pub fn new() -> UsageEstimator {
        UsageEstimator {
            ewma: 0.0,
            seeded: false,
            window: VecDeque::new(),
        }
    }

    /// Folds one usage sample (fraction of the VM's vCPU allocation,
    /// clamped to `[0, 1]`) into both views.
    pub fn observe(&mut self, config: &EstimatorConfig, sample: f64) {
        let s = if sample.is_finite() {
            sample.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.ewma = if self.seeded {
            config.alpha * s + (1.0 - config.alpha) * self.ewma
        } else {
            self.seeded = true;
            s
        };
        self.window.push_back(s);
        while self.window.len() > config.window.max(1) {
            self.window.pop_front();
        }
    }

    /// Number of samples currently retained in the window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// The exponentially weighted moving average, or `None` before the
    /// first sample.
    pub fn ewma(&self) -> Option<f64> {
        self.seeded.then_some(self.ewma)
    }

    /// The nearest-rank `q`-quantile of the retained window, or `None`
    /// before the first sample.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// The demand figure the planner consumes: the larger of the EWMA
    /// and the windowed quantile, so neither a slow trend nor a recent
    /// burst is under-counted. Zero before the first sample.
    pub fn demand(&self, config: &EstimatorConfig) -> f64 {
        let ewma = self.ewma().unwrap_or(0.0);
        let tail = self.percentile(config.quantile).unwrap_or(0.0);
        ewma.max(tail)
    }
}

impl Default for UsageEstimator {
    fn default() -> Self {
        UsageEstimator::new()
    }
}

/// The fleet's per-VM estimators, keyed by VM id.
///
/// The online executor owns one per shard and feeds it a sample per
/// pressure tick; the offline CLI builds one from a replayed trace
/// before planning. Departed VMs are pruned by [`UsageTracker::retain`]
/// so the map tracks the live population, not history.
#[derive(Debug, Clone, Default)]
pub struct UsageTracker {
    /// Smoothing parameters applied to every VM.
    pub config: EstimatorConfig,
    vms: BTreeMap<VmId, UsageEstimator>,
}

impl UsageTracker {
    /// A tracker with the given smoothing parameters.
    pub fn new(config: EstimatorConfig) -> UsageTracker {
        UsageTracker {
            config,
            vms: BTreeMap::new(),
        }
    }

    /// Folds one sample for `vm`, creating its estimator on first sight.
    pub fn observe(&mut self, vm: VmId, sample: f64) {
        let config = self.config;
        self.vms.entry(vm).or_default().observe(&config, sample);
    }

    /// The planner-facing demand fraction for `vm` (zero if unseen).
    pub fn demand(&self, vm: VmId) -> f64 {
        self.vms
            .get(&vm)
            .map_or(0.0, |est| est.demand(&self.config))
    }

    /// Number of VMs currently tracked.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True when no VM has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Drops estimators for VMs not in the live set.
    pub fn retain(&mut self, alive: impl Fn(VmId) -> bool) {
        self.vms.retain(|vm, _| alive(*vm));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn config_rejects_degenerate_values() {
        assert!(EstimatorConfig::default().validate().is_ok());
        for broken in [
            EstimatorConfig {
                alpha: 0.0,
                ..EstimatorConfig::default()
            },
            EstimatorConfig {
                alpha: 1.5,
                ..EstimatorConfig::default()
            },
            EstimatorConfig {
                window: 0,
                ..EstimatorConfig::default()
            },
            EstimatorConfig {
                quantile: 1.1,
                ..EstimatorConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }

    #[test]
    fn empty_estimator_reports_nothing() {
        let est = UsageEstimator::new();
        assert_eq!(est.ewma(), None);
        assert_eq!(est.percentile(0.9), None);
        assert_eq!(est.demand(&EstimatorConfig::default()), 0.0);
    }

    #[test]
    fn first_sample_seeds_the_ewma_exactly() {
        let config = EstimatorConfig::default();
        let mut est = UsageEstimator::new();
        est.observe(&config, 0.7);
        assert_eq!(est.ewma(), Some(0.7));
        assert_eq!(est.percentile(0.9), Some(0.7));
    }

    #[test]
    fn window_is_bounded_and_tail_tracks_bursts() {
        let config = EstimatorConfig {
            alpha: 0.1,
            window: 4,
            quantile: 0.9,
        };
        let mut est = UsageEstimator::new();
        for _ in 0..32 {
            est.observe(&config, 0.1);
        }
        est.observe(&config, 0.9); // one burst
        assert_eq!(est.samples(), 4);
        // The EWMA barely moved but the windowed tail caught the burst,
        // and demand() takes the larger.
        assert!(est.ewma().unwrap() < 0.3);
        assert_eq!(est.percentile(0.9), Some(0.9));
        assert_eq!(est.demand(&config), 0.9);
    }

    #[test]
    fn samples_are_clamped_to_the_unit_interval() {
        let config = EstimatorConfig::default();
        let mut est = UsageEstimator::new();
        est.observe(&config, 7.0);
        est.observe(&config, -3.0);
        est.observe(&config, f64::NAN);
        assert!(est.demand(&config) <= 1.0);
        assert!(est.percentile(0.0).unwrap() >= 0.0);
    }

    #[test]
    fn tracker_prunes_departed_vms() {
        let mut tracker = UsageTracker::default();
        tracker.observe(VmId(1), 0.5);
        tracker.observe(VmId(2), 0.9);
        assert_eq!(tracker.len(), 2);
        tracker.retain(|vm| vm == VmId(2));
        assert_eq!(tracker.len(), 1);
        assert_eq!(tracker.demand(VmId(1)), 0.0);
        assert!(tracker.demand(VmId(2)) > 0.8);
    }

    proptest! {
        /// Satellite property: both views are bounded by the observed
        /// extremes — the estimator can interpolate, never extrapolate.
        #[test]
        fn outputs_are_bounded_by_observed_extremes(
            samples in proptest::collection::vec(0.0f64..=1.0, 1..64),
            alpha in 0.01f64..=1.0,
            window in 1usize..32,
            q in 0.0f64..=1.0,
        ) {
            let config = EstimatorConfig { alpha, window, quantile: q };
            let mut est = UsageEstimator::new();
            for &s in &samples {
                est.observe(&config, s);
            }
            let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let max = samples.iter().copied().fold(0.0f64, f64::max);
            let ewma = est.ewma().unwrap();
            prop_assert!(ewma >= min - 1e-12 && ewma <= max + 1e-12, "ewma {ewma} outside [{min}, {max}]");
            let p = est.percentile(q).unwrap();
            prop_assert!(p >= min && p <= max, "p{q} = {p} outside [{min}, {max}]");
            let d = est.demand(&config);
            prop_assert!(d >= min - 1e-12 && d <= max + 1e-12);
        }

        /// Satellite property: replaying the same sample stream into a
        /// fresh estimator reproduces identical outputs.
        #[test]
        fn replaying_the_same_stream_is_deterministic(
            samples in proptest::collection::vec(0.0f64..=1.0, 0..64),
            alpha in 0.01f64..=1.0,
            window in 1usize..32,
        ) {
            let config = EstimatorConfig { alpha, window, quantile: 0.9 };
            let mut a = UsageEstimator::new();
            let mut b = UsageEstimator::new();
            for &s in &samples {
                a.observe(&config, s);
            }
            for &s in &samples {
                b.observe(&config, s);
            }
            prop_assert_eq!(a.ewma(), b.ewma());
            prop_assert_eq!(a.percentile(0.9), b.percentile(0.9));
            prop_assert_eq!(a.demand(&config).to_bits(), b.demand(&config).to_bits());
        }
    }
}
