//! Per-PM pressure scoring and hot/warm/cold classification.
//!
//! The paper packs by *requested* resources and bets that actual usage
//! leaves slack; pressure is the inverse of that slack — the fraction
//! of a PM's physical cores its VMs are actually demanding, with
//! demand from heavily oversubscribed VMs weighted up (the 3:1 tier is
//! where the paper's Table IV shows the bet failing first, because
//! bursts there correlate and the guarantee is thinnest).
//!
//! Classification is hysteretic: a PM becomes hot at `hot_enter`, but
//! only cools once its score drops below `hot_exit` — without the
//! band, a PM sitting on the threshold would flap between states and
//! the mitigation planner would thrash migrations. `cold_max` bounds
//! the PMs that may *receive* spread-out migrations.

use std::collections::BTreeMap;

use slackvm_hypervisor::Host;
use slackvm_model::{PmId, VmId};
use slackvm_sim::{Cluster, DeploymentModel};

/// Scoring thresholds and weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureConfig {
    /// Score at which a PM is classified hot.
    pub hot_enter: f64,
    /// Score below which a hot PM cools (hysteresis floor; also the
    /// level a destination's predicted score must stay under).
    pub hot_exit: f64,
    /// Maximum score of a PM that may receive spread-out migrations.
    pub cold_max: f64,
    /// Extra demand weight per oversubscription step above 1:1 — a VM
    /// at level L contributes `usage × vcpus × (1 + overweight×(L−1))`.
    pub overweight: f64,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            hot_enter: 0.75,
            hot_exit: 0.60,
            cold_max: 0.40,
            overweight: 0.15,
        }
    }
}

impl PressureConfig {
    /// Rejects threshold orderings that make the hysteresis vacuous.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.cold_max > 0.0) {
            return Err("cold ceiling must be positive".into());
        }
        if !(self.cold_max < self.hot_exit) {
            return Err("cold ceiling must sit below the hot exit".into());
        }
        if !(self.hot_exit < self.hot_enter) {
            return Err("hot exit must sit below hot enter (hysteresis band)".into());
        }
        if !(self.overweight >= 0.0 && self.overweight.is_finite()) {
            return Err("oversubscription overweight must be finite and >= 0".into());
        }
        Ok(())
    }

    /// Classifies a score, honouring the hysteresis band when the PM's
    /// previous state is known.
    pub fn classify(&self, score: f64, prev: Option<PressureState>) -> PressureState {
        if score >= self.hot_enter {
            PressureState::Hot
        } else if prev == Some(PressureState::Hot) && score >= self.hot_exit {
            // Inside the band a previously-hot PM stays hot.
            PressureState::Hot
        } else if score <= self.cold_max {
            PressureState::Cold
        } else {
            PressureState::Warm
        }
    }
}

/// A PM's pressure classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureState {
    /// Demand comfortably below the mitigation ceiling; may receive
    /// spread-out migrations.
    Cold,
    /// In between: neither a victim source nor a destination.
    Warm,
    /// Demand at or above the hot threshold (or cooling through the
    /// hysteresis band); the mitigation planner drains these.
    Hot,
}

impl PressureState {
    /// Lower-case label for rendering and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            PressureState::Cold => "cold",
            PressureState::Warm => "warm",
            PressureState::Hot => "hot",
        }
    }
}

/// The key pressure state is remembered under across planning rounds:
/// the oversubscription ratio of the sub-cluster (0 for the shared
/// pool, whose PM ids are a single namespace) and the PM id.
pub type StateKey = (u32, PmId);

/// One PM's pressure reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmPressure {
    /// Sub-cluster oversubscription ratio (0 for the shared pool).
    pub level: u32,
    /// The PM.
    pub pm: PmId,
    /// Weighted demanded-cores : physical-cores ratio.
    pub score: f64,
    /// Weighted demand in physical-core units.
    pub demand_cores: f64,
    /// Physical cores.
    pub cores: u32,
    /// Hosted VMs.
    pub vms: usize,
    /// Hysteresis-aware classification.
    pub state: PressureState,
    /// Whether the PM is failed (excluded from planning either way).
    pub failed: bool,
}

/// The fleet's pressure readings, one row per opened PM.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PressureReport {
    /// Per-PM readings, in (level, PM id) order.
    pub pms: Vec<PmPressure>,
}

impl PressureReport {
    /// Number of hot PMs.
    pub fn hot(&self) -> u32 {
        self.count(PressureState::Hot)
    }

    /// Number of warm PMs.
    pub fn warm(&self) -> u32 {
        self.count(PressureState::Warm)
    }

    /// Number of cold PMs.
    pub fn cold(&self) -> u32 {
        self.count(PressureState::Cold)
    }

    fn count(&self, state: PressureState) -> u32 {
        self.pms.iter().filter(|p| p.state == state).count() as u32
    }

    /// The highest score in the fleet (zero when empty).
    pub fn peak_score(&self) -> f64 {
        self.pms.iter().map(|p| p.score).fold(0.0, f64::max)
    }

    /// The classification map the online executor carries into the
    /// next round as hysteresis memory.
    pub fn states(&self) -> BTreeMap<StateKey, PressureState> {
        self.pms
            .iter()
            .map(|p| ((p.level, p.pm), p.state))
            .collect()
    }

    /// Human-readable rendering for the CLI `pressure status` action.
    pub fn render(&self) -> String {
        let mut out = format!(
            "pressure: {} PM(s) — {} hot, {} warm, {} cold (peak score {:.2})\n",
            self.pms.len(),
            self.hot(),
            self.warm(),
            self.cold(),
            self.peak_score(),
        );
        for p in &self.pms {
            let level = if p.level == 0 {
                "pool".to_string()
            } else {
                format!("{}:1 ", p.level)
            };
            out.push_str(&format!(
                "  {level} pm-{}  {:<4} score {:.2}  ({:.1}/{} cores, {} VM(s)){}\n",
                p.pm.0,
                p.state.name(),
                p.score,
                p.demand_cores,
                p.cores,
                p.vms,
                if p.failed { "  [failed]" } else { "" },
            ));
        }
        out
    }

    /// Hand-rolled JSON rendering (stable, serde-free like the
    /// rebalance plan's).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.pms.len() * 96);
        out.push_str("{\"hot\":");
        out.push_str(&self.hot().to_string());
        out.push_str(",\"warm\":");
        out.push_str(&self.warm().to_string());
        out.push_str(",\"cold\":");
        out.push_str(&self.cold().to_string());
        out.push_str(",\"pms\":[");
        for (i, p) in self.pms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{},\"pm\":{},\"score\":{:.4},\"state\":\"{}\",\"vms\":{}}}",
                p.level,
                p.pm.0,
                p.score,
                p.state.name(),
                p.vms,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The demand weight of one VM's oversubscription level: heavier the
/// thinner the guarantee behind its vCPUs.
pub(crate) fn vm_weight(config: &PressureConfig, spec: &slackvm_model::VmSpec) -> f64 {
    1.0 + config.overweight * (spec.level.ratio().saturating_sub(1)) as f64
}

/// Scores one host: weighted demanded cores and their ratio to the
/// physical core count.
pub(crate) fn score_host<H: Host>(
    host: &H,
    config: &PressureConfig,
    usage: &impl Fn(VmId) -> f64,
) -> (f64, f64) {
    let mut demand = 0.0;
    for (vm, spec) in host.placements() {
        demand += usage(vm).clamp(0.0, 1.0) * spec.vcpus() as f64 * vm_weight(config, &spec);
    }
    let cores = host.config().cores.max(1) as f64;
    (demand / cores, demand)
}

fn score_cluster<H: Host>(
    cluster: &Cluster<H>,
    level: u32,
    config: &PressureConfig,
    usage: &impl Fn(VmId) -> f64,
    prev: &BTreeMap<StateKey, PressureState>,
    out: &mut Vec<PmPressure>,
) {
    for host in cluster.hosts() {
        let (score, demand_cores) = score_host(host, config, usage);
        out.push(PmPressure {
            level,
            pm: host.id(),
            score,
            demand_cores,
            cores: host.config().cores,
            vms: host.num_vms(),
            state: config.classify(score, prev.get(&(level, host.id())).copied()),
            failed: cluster.is_failed(host.id()),
        });
    }
}

/// Scores every opened PM of the deployment, classifying with the
/// hysteresis memory in `prev` (pass an empty map for a stateless
/// snapshot — everything classifies by the enter/cold thresholds).
pub fn score_pressure(
    model: &DeploymentModel,
    config: &PressureConfig,
    usage: &impl Fn(VmId) -> f64,
    prev: &BTreeMap<StateKey, PressureState>,
) -> PressureReport {
    let mut pms = Vec::new();
    match model {
        DeploymentModel::Shared(s) => {
            score_cluster(&s.cluster, 0, config, usage, prev, &mut pms);
        }
        DeploymentModel::Dedicated(d) => {
            for (level, cluster) in d.clusters() {
                score_cluster(cluster, level.ratio(), config, usage, prev, &mut pms);
            }
        }
    }
    PressureReport { pms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, VmSpec};
    use slackvm_sched::PlacementPolicy;
    use slackvm_sim::SharedDeployment;
    use std::sync::Arc;

    fn pool() -> DeploymentModel {
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), VmSpec::of(16, gib(32), OversubLevel::of(1)))
            .unwrap();
        s.deploy(VmId(1), VmSpec::of(16, gib(32), OversubLevel::of(1)))
            .unwrap();
        DeploymentModel::Shared(s)
    }

    #[test]
    fn config_rejects_inverted_thresholds() {
        assert!(PressureConfig::default().validate().is_ok());
        for broken in [
            PressureConfig {
                cold_max: 0.0,
                ..PressureConfig::default()
            },
            PressureConfig {
                cold_max: 0.7,
                ..PressureConfig::default()
            },
            PressureConfig {
                hot_exit: 0.8,
                ..PressureConfig::default()
            },
            PressureConfig {
                overweight: -1.0,
                ..PressureConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }

    #[test]
    fn hysteresis_keeps_a_hot_pm_hot_inside_the_band() {
        let cfg = PressureConfig::default();
        assert_eq!(cfg.classify(0.8, None), PressureState::Hot);
        assert_eq!(cfg.classify(0.65, None), PressureState::Warm);
        assert_eq!(
            cfg.classify(0.65, Some(PressureState::Hot)),
            PressureState::Hot
        );
        assert_eq!(
            cfg.classify(0.55, Some(PressureState::Hot)),
            PressureState::Warm
        );
        assert_eq!(cfg.classify(0.3, Some(PressureState::Hot)), PressureState::Cold);
    }

    #[test]
    fn busy_vms_make_a_pm_hot_idle_vms_leave_it_cold() {
        let model = pool();
        let cfg = PressureConfig::default();
        let hot = score_pressure(&model, &cfg, &|_| 0.9, &BTreeMap::new());
        assert_eq!(hot.hot(), 1, "{}", hot.render());
        assert!(hot.peak_score() > 0.8);
        let cold = score_pressure(&model, &cfg, &|_| 0.05, &BTreeMap::new());
        assert_eq!(cold.hot(), 0);
        assert_eq!(cold.cold(), 1, "{}", cold.render());
    }

    #[test]
    fn oversubscribed_demand_weighs_heavier() {
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), VmSpec::of(16, gib(32), OversubLevel::of(3)))
            .unwrap();
        let model = DeploymentModel::Shared(s);
        let cfg = PressureConfig::default();
        let report = score_pressure(&model, &cfg, &|_| 1.0, &BTreeMap::new());
        // 16 demanded cores × (1 + 0.15×2) = 20.8 of 32.
        assert!((report.pms[0].score - 0.65).abs() < 1e-9, "{report:?}");
    }

    #[test]
    fn report_counts_and_json_agree() {
        let model = pool();
        let report = score_pressure(
            &model,
            &PressureConfig::default(),
            &|_| 0.9,
            &BTreeMap::new(),
        );
        let json = report.to_json();
        assert!(json.starts_with("{\"hot\":1,"), "{json}");
        assert!(json.contains("\"state\":\"hot\""), "{json}");
        assert_eq!(report.states().len(), report.pms.len());
        assert!(report.render().contains("1 hot"), "{}", report.render());
    }
}
