//! The hot-to-cold spread-out planner.
//!
//! The mirror image of `slackvm-rebalance`: where consolidation drains
//! the *least* utilized PMs to free machines, mitigation drains the
//! *hottest* PMs just far enough to get them out of the saturation
//! band. Victims are picked highest usage-per-freed-core first (moving
//! the busiest VM removes the most demand per core of churn) and
//! re-placed through the same `CandidateIndex` + `PlacementPolicy`
//! pipeline admission and rebalance use — restricted to *cold*
//! destinations whose predicted post-move score stays below the hot
//! exit, so mitigation never creates the hotspot it is curing.
//!
//! Unlike consolidation, mitigation is *not* all-or-nothing per
//! victim PM: cooling a hot PM below the hysteresis exit is a win even
//! if some of its VMs stay put. The emitted artifact is the same
//! checked [`RebalancePlan`] — validated by
//! [`slackvm_rebalance::validate_plan`] against the live model and
//! journalled as `WalOp::Migrate` by the online executor, so recovery
//! and fsck replay mitigation exactly like consolidation.

use std::collections::{BTreeMap, BTreeSet};

use slackvm_hypervisor::Host;
use slackvm_model::{PmId, VmId};
use slackvm_rebalance::{Budget, PlannedMove, RebalanceError, RebalancePlan};
use slackvm_sched::{AdmissionKey, Candidate, CandidateIndex, PlacementPolicy};
use slackvm_sim::{Cluster, DeploymentModel};

use crate::score::{
    score_host, score_pressure, vm_weight, PressureConfig, PressureReport, PressureState, StateKey,
};

/// A mitigation plan: the checked migration artifact plus the pressure
/// accounting around it.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationPlan {
    /// The migrations, as the same checked artifact rebalance emits —
    /// validate with [`slackvm_rebalance::validate_plan`], execute with
    /// [`slackvm_rebalance::apply_plan`].
    pub plan: RebalancePlan,
    /// The fleet's pressure readings before any move.
    pub before: PressureReport,
    /// Hot PMs before planning.
    pub hot_before: u32,
    /// Hot PMs predicted after the plan applies (hysteresis-aware).
    pub hot_after: u32,
    /// Hot PMs the plan cools below the hysteresis exit.
    pub cooled: u32,
    /// Predicted post-apply classification of every PM — the online
    /// executor carries this into the next tick as hysteresis memory.
    pub states_after: BTreeMap<StateKey, PressureState>,
}

impl MitigationPlan {
    /// True when no hot PM could be (or needed to be) mitigated.
    pub fn is_empty(&self) -> bool {
        self.plan.moves.is_empty()
    }

    /// Number of planned migrations.
    pub fn len(&self) -> usize {
        self.plan.moves.len()
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "pressure plan for {}: {} migration(s), hot PMs {} -> {} ({} cooled), {} MiB moved \
             (budget: {} moves / {} MiB / {} concurrent)\n",
            self.plan.model,
            self.plan.moves.len(),
            self.hot_before,
            self.hot_after,
            self.cooled,
            self.plan.moved_mem_mib,
            self.plan.budget.max_migrations,
            self.plan.budget.max_moved_mem_mib,
            self.plan.budget.max_concurrent,
        );
        for mv in &self.plan.moves {
            out.push_str(&format!(
                "  {}  pm-{} -> pm-{}  ({})\n",
                mv.vm, mv.from.0, mv.to.0, mv.spec,
            ));
        }
        out
    }

    /// Hand-rolled JSON rendering: the pressure accounting wrapping the
    /// plan's own stable JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hot_before\":{},\"hot_after\":{},\"cooled\":{},\"plan\":{}}}",
            self.hot_before,
            self.hot_after,
            self.cooled,
            self.plan.to_json(),
        )
    }
}

/// Plans a mitigation pass over the whole deployment (no avoided PMs,
/// no hysteresis memory — the offline entry point).
pub fn plan_mitigation(
    model: &DeploymentModel,
    config: &PressureConfig,
    budget: &Budget,
    usage: &impl Fn(VmId) -> f64,
) -> Result<MitigationPlan, RebalanceError> {
    plan_mitigation_avoiding(model, config, budget, usage, &BTreeSet::new(), &BTreeMap::new())
}

/// Plans a mitigation pass that never touches the PMs in `avoid`
/// (neither as victim source nor destination; failed PMs are always
/// excluded) and classifies with the hysteresis memory in `prev` — the
/// online executor passes its draining set and last tick's states.
pub fn plan_mitigation_avoiding(
    model: &DeploymentModel,
    config: &PressureConfig,
    budget: &Budget,
    usage: &impl Fn(VmId) -> f64,
    avoid: &BTreeSet<PmId>,
    prev: &BTreeMap<StateKey, PressureState>,
) -> Result<MitigationPlan, RebalanceError> {
    budget.validate().map_err(RebalanceError::Budget)?;
    config
        .validate()
        .map_err(|e| RebalanceError::Invalid(format!("pressure thresholds: {e}")))?;

    let before = score_pressure(model, config, usage, prev);
    let mut moves = Vec::new();
    let mut used_moves = 0u32;
    let mut used_mem = 0u64;
    let mut freed = 0u32;
    let mut states_after = BTreeMap::new();

    match model {
        DeploymentModel::Shared(s) => mitigate_cluster(
            &s.cluster,
            &s.policy,
            0,
            config,
            budget,
            usage,
            avoid,
            prev,
            &mut used_moves,
            &mut used_mem,
            &mut moves,
            &mut states_after,
            &mut freed,
        ),
        DeploymentModel::Dedicated(d) => {
            // The baseline packs First-Fit; spreading must not be
            // smarter than admission.
            let first_fit = PlacementPolicy::FirstFit;
            for (level, cluster) in d.clusters() {
                mitigate_cluster(
                    cluster,
                    &first_fit,
                    level.ratio(),
                    config,
                    budget,
                    usage,
                    avoid,
                    prev,
                    &mut used_moves,
                    &mut used_mem,
                    &mut moves,
                    &mut states_after,
                    &mut freed,
                );
            }
        }
    }

    let hot_before = before.hot();
    let hot_after = states_after
        .values()
        .filter(|&&s| s == PressureState::Hot)
        .count() as u32;
    let cooled = before
        .pms
        .iter()
        .filter(|p| {
            p.state == PressureState::Hot
                && states_after.get(&(p.level, p.pm)) != Some(&PressureState::Hot)
        })
        .count() as u32;
    Ok(MitigationPlan {
        plan: RebalancePlan {
            model: model.name(),
            moves,
            pms_freed: freed,
            moved_mem_mib: used_mem,
            budget: *budget,
        },
        before,
        hot_before,
        hot_after,
        cooled,
        states_after,
    })
}

/// Mitigates one (sub)cluster's hot PMs on shadow hosts.
#[allow(clippy::too_many_arguments)]
fn mitigate_cluster<H: Host + Clone>(
    cluster: &Cluster<H>,
    policy: &PlacementPolicy,
    level: u32,
    config: &PressureConfig,
    budget: &Budget,
    usage: &impl Fn(VmId) -> f64,
    avoid: &BTreeSet<PmId>,
    prev: &BTreeMap<StateKey, PressureState>,
    used_moves: &mut u32,
    used_mem: &mut u64,
    moves: &mut Vec<PlannedMove>,
    states_after: &mut BTreeMap<StateKey, PressureState>,
    freed: &mut u32,
) {
    let mut shadow: Vec<H> = cluster.hosts().to_vec();
    let blocked: Vec<bool> = shadow
        .iter()
        .map(|h| cluster.is_failed(h.id()) || avoid.contains(&h.id()))
        .collect();
    let prev_of = |pm: PmId| prev.get(&(level, pm)).copied();
    let initial: Vec<f64> = shadow
        .iter()
        .map(|h| score_host(h, config, usage).0)
        .collect();
    // Each PM's classification entering this round — the hysteresis
    // memory every in-round reclassification builds on (a hot PM that
    // only cools into the band must stay hot).
    let state0: Vec<PressureState> = shadow
        .iter()
        .zip(&initial)
        .map(|(h, &s)| config.classify(s, prev_of(h.id())))
        .collect();

    // Hottest first: the PM deepest into saturation is degrading its
    // tenants hardest right now.
    let mut hot: Vec<usize> = (0..shadow.len())
        .filter(|&i| !blocked[i] && state0[i] == PressureState::Hot)
        .collect();
    hot.sort_by(|&a, &b| {
        initial[b]
            .total_cmp(&initial[a])
            .then(shadow[a].id().cmp(&shadow[b].id()))
    });

    // Destinations: cold, unblocked PMs only (empty-but-opened PMs
    // included — spreading out *wants* headroom, unlike consolidation).
    let mut index = CandidateIndex::new();
    for (i, host) in shadow.iter().enumerate() {
        debug_assert_eq!(host.id().0 as usize, i, "hosts are dense by PmId");
        if !blocked[i] && state0[i] == PressureState::Cold {
            let (candidate, key) = index_entry(host);
            index.upsert(candidate, key);
        }
    }

    let mut buf: Vec<Candidate> = Vec::new();
    let mut budget_full = false;
    for &h in &hot {
        let victim_pm = shadow[h].id();
        // Drain the busiest VMs until the PM cools through the
        // hysteresis exit or nothing movable remains.
        loop {
            if budget_full {
                break;
            }
            let (cur, _) = score_host(&shadow[h], config, usage);
            if cur < config.hot_exit {
                break; // cooled — partial mitigation is a win.
            }
            // Highest usage-per-freed-core first: the busiest VM
            // removes the most demand for each core's worth of churn.
            let mut placements = shadow[h].placements();
            placements.sort_by(|(va, sa), (vb, sb)| {
                usage(*vb)
                    .clamp(0.0, 1.0)
                    .total_cmp(&usage(*va).clamp(0.0, 1.0))
                    .then(sb.vcpus().cmp(&sa.vcpus()))
                    .then(va.cmp(vb))
            });
            let mut moved = false;
            for (vm, spec) in &placements {
                if *used_moves >= budget.max_migrations {
                    budget_full = true;
                    break;
                }
                if *used_mem + spec.mem_mib() > budget.max_moved_mem_mib {
                    // This VM busts the memory budget; a smaller one
                    // may still fit.
                    continue;
                }
                index.gather_into(&mut buf, spec.mem_mib(), spec.vcpus());
                let add = usage(*vm).clamp(0.0, 1.0) * spec.vcpus() as f64 * vm_weight(config, spec);
                buf.retain(|c| {
                    let dest = &shadow[c.id.0 as usize];
                    if !dest.can_host(spec) {
                        return false;
                    }
                    // Still cold now (earlier moves may have warmed it),
                    // and predicted to stay out of the hot band after
                    // absorbing this VM.
                    let (now, _) = score_host(dest, config, usage);
                    config.classify(now, Some(state0[c.id.0 as usize])) == PressureState::Cold
                        && now + add / (dest.config().cores.max(1) as f64) < config.hot_exit
                });
                let Some(to) = policy.select(&buf, spec) else {
                    continue;
                };
                let lifted = shadow[h].remove(*vm).expect("victim hosts the vm");
                shadow[to.0 as usize]
                    .deploy(*vm, lifted)
                    .expect("can_host admitted the vm");
                let (entry, key) = index_entry(&shadow[to.0 as usize]);
                let (dest_score, _) = score_host(&shadow[to.0 as usize], config, usage);
                if config.classify(dest_score, Some(state0[to.0 as usize])) == PressureState::Cold {
                    index.upsert(entry, key);
                } else {
                    // The destination warmed up; it receives no more.
                    index.retire(to);
                }
                *used_moves += 1;
                *used_mem += lifted.mem_mib();
                moves.push(PlannedMove {
                    vm: *vm,
                    spec: lifted,
                    from: victim_pm,
                    to,
                });
                moved = true;
                break;
            }
            if !moved {
                break; // nothing movable — leave the PM as mitigated as it got.
            }
        }
        if shadow[h].num_vms() == 0 {
            *freed += 1;
        }
    }

    // Predicted post-apply classification, hysteresis-aware: what the
    // online executor remembers for the next tick.
    for (i, host) in shadow.iter().enumerate() {
        let (score, _) = score_host(host, config, usage);
        states_after.insert((level, host.id()), config.classify(score, Some(state0[i])));
    }
}

fn index_entry<H: Host>(host: &H) -> (Candidate, AdmissionKey) {
    let headroom = host.admission_headroom();
    (
        Candidate {
            id: host.id(),
            config: host.config(),
            alloc: host.alloc(),
            vms: host.num_vms(),
        },
        AdmissionKey {
            free_mem_mib: headroom.free_mem_mib,
            free_vcpus: headroom.free_vcpus,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, PmConfig, VmSpec};
    use slackvm_sim::{DedicatedDeployment, SharedDeployment};
    use std::sync::Arc;

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    /// pm0 stacked with four busy 8-core VMs (score ≈ 0.9), pm1 nearly
    /// idle: the canonical hotspot shape.
    fn hotspot() -> (DeploymentModel, impl Fn(VmId) -> f64 + Clone) {
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        for id in 0..4u64 {
            s.deploy(VmId(id), spec(8, 16, 1)).unwrap();
        }
        s.deploy(VmId(10), spec(4, 8, 1)).unwrap(); // lands on pm1
        s.deploy(VmId(11), spec(4, 8, 1)).unwrap();
        assert_eq!(s.cluster.active(), 2);
        let usage = |vm: VmId| if vm.0 < 4 { 0.9 } else { 0.05 };
        (DeploymentModel::Shared(s), usage)
    }

    #[test]
    fn spreads_a_hotspot_onto_the_cold_pm() {
        let (model, usage) = hotspot();
        let cfg = PressureConfig::default();
        let plan = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        assert_eq!(plan.hot_before, 1, "{}", plan.before.render());
        assert!(!plan.is_empty(), "{plan:?}");
        assert_eq!(plan.hot_after, 0, "{}", plan.render());
        assert_eq!(plan.cooled, 1);
        // Every move leaves the hot PM and lands on the cold one.
        for mv in &plan.plan.moves {
            assert_eq!(mv.from, PmId(0));
            assert_eq!(mv.to, PmId(1));
            assert!(usage(mv.vm) > 0.8, "picked an idle victim {:?}", mv.vm);
        }
        // Two busy 8c VMs must leave: 28.8/32 -> 21.6/32 -> 14.4/32.
        assert_eq!(plan.len(), 2, "{}", plan.render());
    }

    #[test]
    fn applying_the_plan_cools_the_fleet() {
        let (mut model, usage) = hotspot();
        let cfg = PressureConfig::default();
        let plan = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        slackvm_rebalance::validate_plan(&model, &plan.plan).unwrap();
        slackvm_rebalance::apply_plan(&mut model, &plan.plan).unwrap();
        model.check_invariants().unwrap();
        let after = score_pressure(&model, &cfg, &usage, &plan.states_after);
        assert_eq!(after.hot(), 0, "{}", after.render());
        // Predicted states match the replayed reality.
        assert_eq!(after.states(), plan.states_after);
    }

    #[test]
    fn cold_fleet_plans_nothing() {
        let (model, _) = hotspot();
        let cfg = PressureConfig::default();
        let plan = plan_mitigation(&model, &cfg, &Budget::default(), &|_| 0.05).unwrap();
        assert!(plan.is_empty(), "{}", plan.render());
        assert_eq!((plan.hot_before, plan.hot_after), (0, 0));
    }

    #[test]
    fn budget_caps_the_moves() {
        let (model, usage) = hotspot();
        let cfg = PressureConfig::default();
        let tight = Budget {
            max_migrations: 1,
            ..Budget::default()
        };
        let plan = plan_mitigation(&model, &cfg, &tight, &usage).unwrap();
        assert_eq!(plan.len(), 1, "{}", plan.render());
        // One move is not enough to cool the PM.
        assert_eq!(plan.hot_after, 1);
        assert_eq!(plan.cooled, 0);

        let broken = Budget {
            max_migrations: 0,
            ..Budget::default()
        };
        assert!(matches!(
            plan_mitigation(&model, &cfg, &broken, &usage),
            Err(RebalanceError::Budget(_))
        ));
    }

    #[test]
    fn avoided_and_failed_pms_are_untouchable() {
        let (model, usage) = hotspot();
        let cfg = PressureConfig::default();
        // Avoiding the only cold destination leaves nothing to plan.
        let avoid: BTreeSet<PmId> = [PmId(1)].into();
        let plan = plan_mitigation_avoiding(
            &model,
            &cfg,
            &Budget::default(),
            &usage,
            &avoid,
            &BTreeMap::new(),
        )
        .unwrap();
        assert!(plan.is_empty(), "{}", plan.render());

        // Same when the destination is failed.
        let (mut model, usage) = hotspot();
        model.fail_host(PmId(1));
        let plan = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        assert!(plan.is_empty(), "{}", plan.render());

        // Avoiding the hot source also empties the plan.
        let (model, usage) = hotspot();
        let avoid: BTreeSet<PmId> = [PmId(0)].into();
        let plan = plan_mitigation_avoiding(
            &model,
            &cfg,
            &Budget::default(),
            &usage,
            &avoid,
            &BTreeMap::new(),
        )
        .unwrap();
        assert!(plan.is_empty(), "{}", plan.render());
    }

    #[test]
    fn never_spreads_onto_a_warm_destination() {
        // pm1 warm (score between cold_max and hot_exit): no legal
        // destination exists, so the hot PM stays put.
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        for id in 0..4u64 {
            s.deploy(VmId(id), spec(8, 16, 1)).unwrap();
        }
        s.deploy(VmId(10), spec(16, 32, 1)).unwrap(); // pm1
        let usage = |vm: VmId| if vm.0 < 4 { 0.9 } else { 0.9 };
        // pm1: 0.9×16/32 = 0.45 -> warm.
        let model = DeploymentModel::Shared(s);
        let cfg = PressureConfig::default();
        let plan = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        assert!(plan.is_empty(), "{}", plan.render());
        assert_eq!(plan.hot_after, plan.hot_before);
    }

    #[test]
    fn hysteresis_memory_keeps_a_cooling_pm_off_the_destination_list() {
        let (model, usage) = hotspot();
        let cfg = PressureConfig::default();
        // Pretend pm1 was hot last tick; its low score now puts it in
        // the cold range, but a previously-hot PM inside the band
        // would stay hot. Here the score is far below the band, so it
        // cools fully and still serves as a destination.
        let prev: BTreeMap<StateKey, PressureState> = [((0, PmId(1)), PressureState::Hot)].into();
        let plan = plan_mitigation_avoiding(
            &model,
            &cfg,
            &Budget::default(),
            &usage,
            &BTreeSet::new(),
            &prev,
        )
        .unwrap();
        assert!(!plan.is_empty());
    }

    #[test]
    fn dedicated_spreads_within_each_level() {
        let mut model = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::of(32, gib(128)),
            [OversubLevel::of(1), OversubLevel::of(3)],
        ));
        // Level 1: hot pm0, cold pm1.
        for id in 0..4u64 {
            model.deploy(VmId(id), spec(8, 16, 1)).unwrap();
        }
        model.deploy(VmId(10), spec(4, 8, 1)).unwrap();
        model.deploy(VmId(11), spec(24, 16, 1)).unwrap(); // forces pm1 open
        model.remove(VmId(11)).unwrap();
        // Level 3: one idle VM.
        model.deploy(VmId(20), spec(8, 8, 3)).unwrap();
        let usage = |vm: VmId| if vm.0 < 4 { 0.9 } else { 0.05 };
        let cfg = PressureConfig::default();
        let plan = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        assert!(!plan.is_empty(), "{}", plan.before.render());
        for mv in &plan.plan.moves {
            assert_eq!(mv.spec.level, OversubLevel::of(1), "{mv:?}");
        }
        let mut model = model;
        slackvm_rebalance::apply_plan(&mut model, &plan.plan).unwrap();
        model.check_invariants().unwrap();
    }

    #[test]
    fn planning_is_deterministic() {
        let (model, usage) = hotspot();
        let cfg = PressureConfig::default();
        let a = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        let b = plan_mitigation(&model, &cfg, &Budget::default(), &usage).unwrap();
        assert_eq!(a, b);
    }
}
