//! Where per-VM usage samples come from.
//!
//! The pressure plane consumes one number per VM — the fraction of its
//! vCPU allocation it is actually demanding — and this module defines
//! the two deterministic sources of that number:
//!
//! - **Replay/sim**: a workload trace's [`VmInstance`]s already carry a
//!   [`CpuUsageModel`]; for VMs without one, [`replay_model`] derives a
//!   behaviour from the `slackvm-perf` contention model's §VII-A load
//!   mix ([`slackvm_perf::paper_usage_mix`]), seeded from the VM id —
//!   so hotspot detection sees the same load the latency model charges
//!   response time for.
//! - **Serve**: the wire protocol carries no usage field, so the online
//!   service synthesizes a per-VM profile from a seeded derivation of
//!   the VM id ([`synth_frac`]). A `hot_frac` fraction of VM ids are
//!   "hot" (benchmark-class, ~0.9 of allocation); the rest idle low.
//!   The `bombard` load generator computes the *same* derivation
//!   client-side ([`is_hot`]) to keep hot VMs alive and concentrate
//!   them into hotspots.
//!
//! Both sources are pure functions of their seeds, which is what lets
//! the offline planner and the online tick agree move for move.

use slackvm_hypervisor::Host;
use slackvm_model::VmId;
use slackvm_sim::DeploymentModel;
use slackvm_workload::CpuUsageModel;

use crate::estimator::UsageTracker;

/// SplitMix64 finalizer — the same mixer the workload jitter and the
/// serve trace-id mint use.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether the seeded serve-side derivation classifies `vm` as hot.
/// `bombard --hot-frac` uses this exact function so client and server
/// agree on which VM ids form the hot population.
pub fn is_hot(usage_seed: u64, vm: VmId, hot_frac: f64) -> bool {
    unit(splitmix64(usage_seed ^ splitmix64(vm.0))) < hot_frac.clamp(0.0, 1.0)
}

/// The synthesized serve-side usage fraction for `vm`, in `[0, 1]`.
///
/// Hot VMs demand 0.80–0.98 of their allocation (benchmark-class); the
/// rest 0.02–0.24 (idle/interactive valley). Constant per VM — the
/// online estimators converge after one sample, so an offline replay of
/// the same population computes identical demand, which the
/// differential suite relies on.
pub fn synth_frac(usage_seed: u64, vm: VmId, hot_frac: f64) -> f64 {
    let h = splitmix64(usage_seed ^ splitmix64(vm.0));
    let jitter = unit(splitmix64(h));
    if unit(h) < hot_frac.clamp(0.0, 1.0) {
        0.80 + 0.18 * jitter
    } else {
        0.02 + 0.22 * jitter
    }
}

/// Derives a usage behaviour for a VM the trace does not describe,
/// from the `slackvm-perf` §VII-A load mix (10% idle / 60% bursty
/// benchmark / 30% diurnal interactive), seeded by the VM id.
pub fn replay_model(seed: u64) -> CpuUsageModel {
    let h = splitmix64(seed);
    slackvm_perf::paper_usage_mix(unit(h), h).1
}

/// Feeds one usage sample per placed VM into the tracker and prunes
/// estimators for VMs no longer placed — one call per planning round,
/// with `sample` supplying the instantaneous usage fraction.
pub fn observe_model(
    tracker: &mut UsageTracker,
    model: &DeploymentModel,
    sample: impl Fn(VmId) -> f64,
) {
    let mut alive = std::collections::BTreeSet::new();
    let mut feed = |vm: VmId| {
        alive.insert(vm);
    };
    for_each_placed(model, &mut feed);
    for &vm in &alive {
        tracker.observe(vm, sample(vm));
    }
    tracker.retain(|vm| alive.contains(&vm));
}

/// Visits every placed VM id across both deployment models.
pub fn for_each_placed(model: &DeploymentModel, visit: &mut impl FnMut(VmId)) {
    match model {
        DeploymentModel::Shared(s) => {
            for host in s.cluster.hosts() {
                for (vm, _) in host.placements() {
                    visit(vm);
                }
            }
        }
        DeploymentModel::Dedicated(d) => {
            for (_, cluster) in d.clusters() {
                for host in cluster.hosts() {
                    for (vm, _) in host.placements() {
                        visit(vm);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_frac_is_deterministic_and_bounded() {
        for id in 0..512u64 {
            let a = synth_frac(42, VmId(id), 0.2);
            let b = synth_frac(42, VmId(id), 0.2);
            assert_eq!(a.to_bits(), b.to_bits());
            assert!((0.0..=1.0).contains(&a), "vm {id}: {a}");
        }
    }

    #[test]
    fn hot_fraction_tracks_the_requested_share() {
        let hot = (0..10_000u64)
            .filter(|&id| is_hot(7, VmId(id), 0.2))
            .count();
        assert!(
            (1_600..=2_400).contains(&hot),
            "expected ~20% hot, got {hot}/10000"
        );
        assert_eq!((0..1000).filter(|&id| is_hot(7, VmId(id), 0.0)).count(), 0);
        assert_eq!(
            (0..1000).filter(|&id| is_hot(7, VmId(id), 1.0)).count(),
            1000
        );
    }

    #[test]
    fn hot_vms_demand_high_cold_vms_low() {
        for id in 0..2_000u64 {
            let frac = synth_frac(42, VmId(id), 0.3);
            if is_hot(42, VmId(id), 0.3) {
                assert!(frac >= 0.80, "hot vm {id} demands only {frac}");
            } else {
                assert!(frac <= 0.24, "cold vm {id} demands {frac}");
            }
        }
    }

    #[test]
    fn different_usage_seeds_pick_different_hot_sets() {
        let set = |seed: u64| -> Vec<u64> {
            (0..1_000u64)
                .filter(|&id| is_hot(seed, VmId(id), 0.2))
                .collect()
        };
        assert_ne!(set(1), set(2));
    }

    #[test]
    fn replay_model_is_deterministic_and_unit_bounded() {
        for seed in 0..64u64 {
            let a = replay_model(seed);
            assert_eq!(a, replay_model(seed));
            for t in (0..86_400u64).step_by(7_200) {
                let u = a.utilization(seed, t);
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }
}
