//! # slackvm-pressure
//!
//! Usage-driven hotspot detection and spread-out mitigation for
//! oversubscribed fleets.
//!
//! Packing by *allocated* resources (the admission plane) and
//! consolidating by *allocated* resources (the rebalance plane) both
//! assume the paper's premise: most VMs leave slack between what they
//! hold and what they use. When that premise fails locally — a PM
//! accumulates VMs that actually burn their allocation — the
//! oversubscribed PM saturates and every tenant on it degrades. This
//! crate is the counterweight:
//!
//! 1. **Signal** ([`signal`]): one deterministic usage fraction per VM.
//!    Replay derives it from the workload trace's usage models (falling
//!    back to the `slackvm-perf` §VII-A load mix); the online service
//!    synthesizes it from a seeded per-VM profile that `bombard
//!    --hot-frac` reproduces client-side.
//! 2. **Estimation** ([`estimator`]): per-VM EWMA plus a windowed
//!    percentile, folded into a demand figure `max(ewma, p-tail)` that
//!    reacts to sustained load without chasing single spikes.
//! 3. **Scoring** ([`score`]): per-PM pressure = estimated used vCPUs
//!    (weighted up on more oversubscribed capacity — the inverse of the
//!    paper's slack) over physical cores, classified hot/warm/cold with
//!    hysteresis so PMs don't flap at the threshold.
//! 4. **Mitigation** ([`planner`]): drain the busiest VMs off hot PMs
//!    onto cold ones through the same `CandidateIndex` + policy
//!    pipeline admission uses, under the same [`Budget`] discipline as
//!    rebalance, emitting the same checked [`RebalancePlan`] artifact —
//!    so the durable journal, recovery, and fsck treat a mitigation
//!    migration exactly like any other.
//!
//! The spread-out direction deliberately opposes consolidation: the
//! online service interlocks the two ticks (pressure preempts
//! consolidation, never both in one tick) so they cannot fight over the
//! same VMs within a tick, and hysteresis keeps a PM that pressure just
//! cooled from being immediately re-packed into the hot band.
//!
//! [`Budget`]: slackvm_rebalance::Budget
//! [`RebalancePlan`]: slackvm_rebalance::RebalancePlan

#![warn(missing_docs)]

pub mod estimator;
pub mod planner;
pub mod score;
pub mod signal;

pub use estimator::{EstimatorConfig, UsageEstimator, UsageTracker};
pub use planner::{plan_mitigation, plan_mitigation_avoiding, MitigationPlan};
pub use score::{
    score_pressure, PmPressure, PressureConfig, PressureReport, PressureState, StateKey,
};
pub use signal::{is_hot, observe_model, replay_model, splitmix64, synth_frac};
