//! Ready-made and custom topology constructions.

use crate::topo::{CacheId, Core, CoreId, CpuTopology, TopologyError, MAX_CACHE_LEVELS};

/// Linux's conventional local NUMA distance.
pub const NUMA_LOCAL: u32 = 10;

/// A fluent builder for synthetic (but structurally faithful) topologies.
///
/// The generated layout places SMT sibling threads at *adjacent ids* —
/// cpu 0 and cpu 1 are the two threads of physical core 0 — which is one
/// of the enumeration orders real firmware uses and the one that makes
/// "closest first" growth naturally consume sibling pairs.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    sockets: u32,
    physical_cores_per_socket: u32,
    threads_per_core: u32,
    /// Physical cores per shared-L3 complex; `None` = one L3 per socket.
    ccx_size: Option<u32>,
    remote_numa_distance: u32,
    /// NUMA nodes exposed per socket (EPYC NPS1/NPS2/NPS4 modes).
    numa_per_socket: u32,
    /// Distance between sibling NUMA nodes of the same socket.
    intra_socket_numa_distance: u32,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            sockets: 1,
            physical_cores_per_socket: 8,
            threads_per_core: 1,
            ccx_size: None,
            remote_numa_distance: 21,
            numa_per_socket: 1,
            intra_socket_numa_distance: 12,
        }
    }
}

impl TopologyBuilder {
    /// Starts from the default single-socket, 8-core, non-SMT layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the socket count (each socket is one NUMA node).
    pub fn sockets(mut self, n: u32) -> Self {
        self.sockets = n.max(1);
        self
    }

    /// Sets physical cores per socket.
    pub fn physical_cores_per_socket(mut self, n: u32) -> Self {
        self.physical_cores_per_socket = n.max(1);
        self
    }

    /// Sets SMT threads per physical core (1 = no SMT).
    pub fn threads_per_core(mut self, n: u32) -> Self {
        self.threads_per_core = n.max(1);
        self
    }

    /// Segments the last-level cache into complexes of `n` physical cores
    /// (EPYC-style CCX). `None` restores a monolithic per-socket LLC.
    pub fn ccx_size(mut self, n: Option<u32>) -> Self {
        self.ccx_size = n.filter(|&v| v > 0);
        self
    }

    /// Sets the inter-socket NUMA distance (local is always 10).
    pub fn remote_numa_distance(mut self, d: u32) -> Self {
        self.remote_numa_distance = d.max(NUMA_LOCAL);
        self
    }

    /// Exposes `n` NUMA nodes per socket (EPYC NPS modes: 1, 2 or 4).
    /// Cores split contiguously; sibling nodes of a socket sit at the
    /// intra-socket distance (default 12), remote sockets at the remote
    /// distance.
    pub fn numa_per_socket(mut self, n: u32) -> Self {
        self.numa_per_socket = n.max(1);
        self
    }

    /// Sets the distance between NUMA nodes of the same socket.
    pub fn intra_socket_numa_distance(mut self, d: u32) -> Self {
        self.intra_socket_numa_distance = d.max(NUMA_LOCAL);
        self
    }

    /// Materializes the topology.
    ///
    /// Levels: 0 = L1 (per physical core, shared by SMT siblings),
    /// 1 = L2 (same sharing as L1 on the modeled parts), 2 = L3 (per CCX
    /// or per socket). Height is 3.
    pub fn build(self) -> Result<CpuTopology, TopologyError> {
        let nps = self.numa_per_socket;
        let cores_per_node = self.physical_cores_per_socket.div_ceil(nps);
        let mut cores = Vec::new();
        let mut id = 0u32;
        for socket in 0..self.sockets {
            for pcore in 0..self.physical_cores_per_socket {
                let global_pcore = socket * self.physical_cores_per_socket + pcore;
                let l3_zone = match self.ccx_size {
                    Some(ccx) => {
                        let ccx_per_socket = self.physical_cores_per_socket.div_ceil(ccx);
                        socket * ccx_per_socket + pcore / ccx
                    }
                    None => socket,
                };
                let numa = socket * nps + (pcore / cores_per_node).min(nps - 1);
                for _thread in 0..self.threads_per_core {
                    let mut caches = [None; MAX_CACHE_LEVELS];
                    caches[0] = Some(CacheId(global_pcore));
                    caches[1] = Some(CacheId(global_pcore));
                    caches[2] = Some(CacheId(l3_zone));
                    cores.push(Core {
                        id: CoreId(id),
                        socket,
                        numa,
                        caches,
                    });
                    id += 1;
                }
            }
        }
        let nodes = (self.sockets * nps) as usize;
        let numa_distances = (0..nodes)
            .map(|a| {
                (0..nodes)
                    .map(|b| {
                        if a == b {
                            NUMA_LOCAL
                        } else if a as u32 / nps == b as u32 / nps {
                            self.intra_socket_numa_distance
                        } else {
                            self.remote_numa_distance
                        }
                    })
                    .collect()
            })
            .collect();
        CpuTopology::new(cores, 3, numa_distances)
    }
}

/// The paper's Table III testbed: 2× AMD EPYC 7662 (64 physical cores,
/// SMT-2, Zen 2 CCXs of 4 cores sharing an L3 slice), 256 schedulable
/// CPUs, one NUMA node per socket.
pub fn dual_epyc_7662() -> CpuTopology {
    TopologyBuilder::new()
        .sockets(2)
        .physical_cores_per_socket(64)
        .threads_per_core(2)
        .ccx_size(Some(4))
        .remote_numa_distance(32)
        .build()
        .expect("static EPYC layout is valid")
}

/// A generic dual-capable Xeon-like host: monolithic L3 per socket.
pub fn xeon(sockets: u32, physical_cores_per_socket: u32, threads_per_core: u32) -> CpuTopology {
    TopologyBuilder::new()
        .sockets(sockets)
        .physical_cores_per_socket(physical_cores_per_socket)
        .threads_per_core(threads_per_core)
        .build()
        .expect("static xeon layout is valid")
}

/// A flat single-socket host without SMT — the shape of the paper's
/// simulation-scale workers (32 schedulable cores).
pub fn flat(cores: u32) -> CpuTopology {
    TopologyBuilder::new()
        .sockets(1)
        .physical_cores_per_socket(cores)
        .threads_per_core(1)
        .build()
        .expect("static flat layout is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epyc_shape() {
        let t = dual_epyc_7662();
        assert_eq!(t.num_cores(), 256);
        assert_eq!(t.num_sockets(), 2);
        assert_eq!(t.num_numa_nodes(), 2);
        // 8 threads (4 physical cores) per CCX share an L3 zone.
        let l3 = |i: u32| t.core(CoreId(i)).cache_at(2).unwrap();
        assert_eq!(l3(0), l3(7));
        assert_ne!(l3(0), l3(8));
        // Socket boundary at cpu 128.
        assert_eq!(t.core(CoreId(127)).socket, 0);
        assert_eq!(t.core(CoreId(128)).socket, 1);
    }

    #[test]
    fn ccx_zones_are_globally_unique() {
        let t = dual_epyc_7662();
        let l3_of = |i: u32| t.core(CoreId(i)).cache_at(2).unwrap();
        // Last CCX of socket 0 vs first CCX of socket 1.
        assert_ne!(l3_of(127), l3_of(128));
    }

    #[test]
    fn flat_has_single_shared_llc() {
        let t = flat(32);
        assert_eq!(t.num_cores(), 32);
        let l3 = |i: u32| t.core(CoreId(i)).cache_at(2).unwrap();
        assert_eq!(l3(0), l3(31));
        // And distinct L1s (no SMT).
        assert_eq!(t.smt_siblings(CoreId(0)), vec![CoreId(0)]);
    }

    #[test]
    fn xeon_smt_pairs_are_adjacent() {
        let t = xeon(2, 16, 2);
        assert_eq!(t.num_cores(), 64);
        let sib = t.smt_siblings(CoreId(10));
        assert_eq!(sib.len(), 2);
        assert!(sib.contains(&CoreId(10)) && sib.contains(&CoreId(11)));
    }

    #[test]
    fn builder_clamps_degenerate_inputs() {
        let t = TopologyBuilder::new()
            .sockets(0)
            .physical_cores_per_socket(0)
            .threads_per_core(0)
            .build()
            .unwrap();
        assert_eq!(t.num_cores(), 1);
    }

    #[test]
    fn nps2_splits_sockets_into_two_nodes() {
        let t = TopologyBuilder::new()
            .sockets(2)
            .physical_cores_per_socket(8)
            .numa_per_socket(2)
            .remote_numa_distance(32)
            .build()
            .unwrap();
        assert_eq!(t.num_numa_nodes(), 4);
        // First half of socket 0 on node 0, second half on node 1.
        assert_eq!(t.core(CoreId(0)).numa, 0);
        assert_eq!(t.core(CoreId(4)).numa, 1);
        assert_eq!(t.core(CoreId(8)).numa, 2); // socket 1 starts
                                               // Distances: local 10, intra-socket 12, remote 32.
        assert_eq!(t.numa_distance(0, 0), 10);
        assert_eq!(t.numa_distance(0, 1), 12);
        assert_eq!(t.numa_distance(0, 2), 32);
        assert_eq!(t.numa_distance(1, 3), 32);
    }

    #[test]
    fn nps_mode_feeds_algorithm1_distances() {
        use crate::distance::core_distance;
        let t = TopologyBuilder::new()
            .physical_cores_per_socket(8)
            .ccx_size(Some(2))
            .numa_per_socket(2)
            .build()
            .unwrap();
        // Cores 0 and 7: no shared cache (different CCX), different
        // intra-socket nodes -> 30 + 12.
        assert_eq!(core_distance(&t, CoreId(0), CoreId(7)), 42);
        // Cores 0 and 3: no shared cache, same node -> 30 + 10.
        assert_eq!(core_distance(&t, CoreId(0), CoreId(3)), 40);
    }

    #[test]
    fn topology_serde_roundtrip() {
        let t = dual_epyc_7662();
        let json = serde_json::to_string(&t).unwrap();
        let back: crate::topo::CpuTopology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn ccx_not_dividing_socket_still_builds() {
        // 10 cores with CCX of 4 -> complexes of 4, 4, 2.
        let t = TopologyBuilder::new()
            .physical_cores_per_socket(10)
            .ccx_size(Some(4))
            .build()
            .unwrap();
        let l3 = |i: u32| t.core(CoreId(i)).cache_at(2).unwrap();
        assert_eq!(l3(0), l3(3));
        assert_ne!(l3(3), l3(4));
        assert_eq!(l3(8), l3(9));
    }
}
