//! A compact textual topology spec.
//!
//! Operators describe machine shapes as one-liners —
//! `"sockets=2 cores=64 smt=2 ccx=4 nps=1 remote=32"` — in CLI flags and
//! config files; this module parses them into [`TopologyBuilder`]s.
//! Keys may appear in any order; unknown keys are rejected. Only
//! `cores` is required.

use thiserror::Error;

use crate::builders::TopologyBuilder;
use crate::topo::{CpuTopology, TopologyError};

/// Errors raised while parsing a topology spec.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A token that is not `key=value`.
    #[error("malformed token {0:?} (expected key=value)")]
    MalformedToken(String),

    /// An unknown key.
    #[error("unknown key {0:?} (sockets, cores, smt, ccx, nps, remote, intra)")]
    UnknownKey(String),

    /// A value that does not parse as a positive integer.
    #[error("invalid value for {key}: {value:?}")]
    BadValue {
        /// Offending key.
        key: String,
        /// Offending raw value.
        value: String,
    },

    /// A key given twice.
    #[error("duplicate key {0:?}")]
    DuplicateKey(String),

    /// The mandatory `cores` key is missing.
    #[error("missing mandatory key 'cores'")]
    MissingCores,

    /// The parsed builder produced an invalid topology.
    #[error("invalid topology: {0}")]
    Topology(#[from] TopologyError),
}

/// Parses a spec string into a builder.
pub fn parse_spec(spec: &str) -> Result<TopologyBuilder, SpecError> {
    let mut builder = TopologyBuilder::new();
    let mut seen: Vec<String> = Vec::new();
    let mut cores_given = false;
    for token in spec.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| SpecError::MalformedToken(token.to_string()))?;
        if seen.iter().any(|k| k == key) {
            return Err(SpecError::DuplicateKey(key.to_string()));
        }
        seen.push(key.to_string());
        let parse = |value: &str| -> Result<u32, SpecError> {
            value
                .parse::<u32>()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| SpecError::BadValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })
        };
        builder = match key {
            "sockets" => builder.sockets(parse(value)?),
            "cores" => {
                cores_given = true;
                builder.physical_cores_per_socket(parse(value)?)
            }
            "smt" => builder.threads_per_core(parse(value)?),
            "ccx" => builder.ccx_size(Some(parse(value)?)),
            "nps" => builder.numa_per_socket(parse(value)?),
            "remote" => builder.remote_numa_distance(parse(value)?),
            "intra" => builder.intra_socket_numa_distance(parse(value)?),
            other => return Err(SpecError::UnknownKey(other.to_string())),
        };
    }
    if !cores_given {
        return Err(SpecError::MissingCores);
    }
    Ok(builder)
}

/// Parses a spec string directly into a topology.
pub fn topology_from_spec(spec: &str) -> Result<CpuTopology, SpecError> {
    Ok(parse_spec(spec)?.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::topo::CoreId;

    #[test]
    fn epyc_spec_matches_the_builder() {
        let spec = "sockets=2 cores=64 smt=2 ccx=4 remote=32";
        let parsed = topology_from_spec(spec).unwrap();
        assert_eq!(parsed, builders::dual_epyc_7662());
    }

    #[test]
    fn minimal_spec_is_a_flat_machine() {
        let parsed = topology_from_spec("cores=32").unwrap();
        assert_eq!(parsed, builders::flat(32));
    }

    #[test]
    fn keys_in_any_order() {
        let a = topology_from_spec("smt=2 cores=16 sockets=2").unwrap();
        let b = topology_from_spec("sockets=2 cores=16 smt=2").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_cores(), 64);
    }

    #[test]
    fn nps_key_splits_numa() {
        let t = topology_from_spec("cores=8 nps=2").unwrap();
        assert_eq!(t.num_numa_nodes(), 2);
        assert_ne!(t.core(CoreId(0)).numa, t.core(CoreId(7)).numa);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            topology_from_spec("cores").unwrap_err(),
            SpecError::MalformedToken(_)
        ));
        assert!(matches!(
            topology_from_spec("cores=0").unwrap_err(),
            SpecError::BadValue { .. }
        ));
        assert!(matches!(
            topology_from_spec("cores=4 cores=8").unwrap_err(),
            SpecError::DuplicateKey(_)
        ));
        assert!(matches!(
            topology_from_spec("sockets=2").unwrap_err(),
            SpecError::MissingCores
        ));
        assert!(matches!(
            topology_from_spec("cores=4 cache=9").unwrap_err(),
            SpecError::UnknownKey(_)
        ));
        assert!(matches!(
            topology_from_spec("cores=4 smt=-1").unwrap_err(),
            SpecError::BadValue { .. }
        ));
    }

    #[test]
    fn empty_spec_misses_cores() {
        assert_eq!(topology_from_spec("").unwrap_err(), SpecError::MissingCores);
    }
}
