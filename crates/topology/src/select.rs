//! Core-selection policies for vNode resizing (paper §V-A).
//!
//! Two operations matter:
//! - **growing** an existing vNode: pick the free CPU *closest* (in
//!   Algorithm 1 distance) to the vNode's current cores, so sibling cores
//!   integrate gradually and the vNode keeps resembling a smaller CPU;
//! - **seeding** a new vNode: pick the free CPU *farthest* from every
//!   already-placed vNode, maximizing isolation (ideally a different
//!   socket).
//!
//! Ties are broken by lowest CPU id, which keeps the policies fully
//! deterministic — a requirement for reproducible simulation runs.

use crate::distance::DistanceMatrix;
use crate::topo::CoreId;

/// A deterministic core-selection strategy.
pub trait SelectionPolicy {
    /// Chooses which free CPU to add to a vNode currently holding
    /// `members`. `free` must be non-empty; `members` may be empty (a
    /// brand-new vNode growing its first core after seeding).
    fn pick_expansion(&self, members: &[CoreId], free: &[CoreId]) -> Option<CoreId>;

    /// Chooses the first CPU of a new vNode, given the CPUs already
    /// `occupied` by other vNodes.
    fn pick_seed(&self, occupied: &[CoreId], free: &[CoreId]) -> Option<CoreId>;

    /// Chooses which member CPU to release when a vNode shrinks. The
    /// default drops the highest id; topology-aware policies drop the
    /// member farthest from the rest of the span, keeping it compact.
    fn pick_release(&self, members: &[CoreId]) -> Option<CoreId> {
        members.iter().copied().max()
    }

    /// Policy name, for reports and ablation labels.
    fn name(&self) -> &'static str;
}

/// The paper's topology-driven policy backed by a precomputed distance
/// matrix.
#[derive(Debug, Clone)]
pub struct TopologySelection {
    matrix: DistanceMatrix,
}

impl TopologySelection {
    /// Wraps a distance matrix for the machine's topology.
    pub fn new(matrix: DistanceMatrix) -> Self {
        TopologySelection { matrix }
    }

    /// Access to the underlying matrix (used by isolation diagnostics).
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }
}

impl SelectionPolicy for TopologySelection {
    fn pick_expansion(&self, members: &[CoreId], free: &[CoreId]) -> Option<CoreId> {
        if members.is_empty() {
            // Nothing to be close to: lowest id keeps determinism.
            return free.iter().copied().min();
        }
        free.iter().copied().min_by_key(|&c| {
            let d = self
                .matrix
                .min_distance_to_set(c, members)
                .expect("members is non-empty");
            (d, c)
        })
    }

    fn pick_seed(&self, occupied: &[CoreId], free: &[CoreId]) -> Option<CoreId> {
        if occupied.is_empty() {
            return free.iter().copied().min();
        }
        free.iter().copied().max_by_key(|&c| {
            let d = self
                .matrix
                .min_distance_to_set(c, occupied)
                .expect("occupied is non-empty");
            // Farthest first; on equal distance prefer the LOWEST id, so
            // invert the id in the key.
            (d, u32::MAX - c.0)
        })
    }

    fn pick_release(&self, members: &[CoreId]) -> Option<CoreId> {
        if members.len() <= 1 {
            return members.first().copied();
        }
        members.iter().copied().max_by_key(|&c| {
            let rest_min = members
                .iter()
                .filter(|&&m| m != c)
                .map(|&m| self.matrix.get(c, m))
                .min()
                .unwrap_or(0);
            // Farthest from the rest first; on ties, the highest id.
            (rest_min, c)
        })
    }

    fn name(&self) -> &'static str {
        "topology"
    }
}

/// A deliberately topology-blind policy — always the lowest-indexed free
/// CPU — used as the ablation baseline ("no pinning considerations").
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveSelection;

impl SelectionPolicy for NaiveSelection {
    fn pick_expansion(&self, _members: &[CoreId], free: &[CoreId]) -> Option<CoreId> {
        free.iter().copied().min()
    }

    fn pick_seed(&self, _occupied: &[CoreId], free: &[CoreId]) -> Option<CoreId> {
        free.iter().copied().min()
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

/// Mean Algorithm 1 distance between two CPU sets — the isolation metric
/// reported by the ablation benchmarks (higher across vNodes = better
/// isolation; lower within a vNode = better locality).
pub fn mean_cross_distance(matrix: &DistanceMatrix, a: &[CoreId], b: &[CoreId]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut total = 0u64;
    for &x in a {
        for &y in b {
            total += matrix.get(x, y) as u64;
        }
    }
    total as f64 / (a.len() * b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn epyc_selection() -> TopologySelection {
        TopologySelection::new(DistanceMatrix::build(&builders::dual_epyc_7662()))
    }

    #[test]
    fn expansion_prefers_smt_sibling_then_ccx() {
        let sel = epyc_selection();
        let members = vec![CoreId(0)];
        // Sibling thread 1 is at distance 0: always first choice.
        let free: Vec<CoreId> = (1..256).map(CoreId).collect();
        assert_eq!(sel.pick_expansion(&members, &free), Some(CoreId(1)));
        // Without the sibling, the CCX mate (distance 20) wins over
        // another CCX (40) or the other socket (62).
        let free = vec![CoreId(130), CoreId(9), CoreId(2)];
        assert_eq!(sel.pick_expansion(&members, &free), Some(CoreId(2)));
    }

    #[test]
    fn expansion_tie_breaks_on_lowest_id() {
        let sel = epyc_selection();
        let members = vec![CoreId(0)];
        // CPUs 2..8 are all CCX mates at distance 20.
        let free = vec![CoreId(6), CoreId(3), CoreId(5)];
        assert_eq!(sel.pick_expansion(&members, &free), Some(CoreId(3)));
    }

    #[test]
    fn seed_flees_to_other_socket() {
        let sel = epyc_selection();
        let occupied: Vec<CoreId> = (0..8).map(CoreId).collect();
        let free: Vec<CoreId> = (8..256).map(CoreId).collect();
        let seed = sel.pick_seed(&occupied, &free).unwrap();
        // Farthest tier is the other socket (distance 62); lowest id there is 128.
        assert_eq!(seed, CoreId(128));
    }

    #[test]
    fn seed_on_empty_machine_is_lowest_id() {
        let sel = epyc_selection();
        let free: Vec<CoreId> = (0..256).map(CoreId).collect();
        assert_eq!(sel.pick_seed(&[], &free), Some(CoreId(0)));
    }

    #[test]
    fn empty_free_list_returns_none() {
        let sel = epyc_selection();
        assert_eq!(sel.pick_expansion(&[CoreId(0)], &[]), None);
        assert_eq!(sel.pick_seed(&[CoreId(0)], &[]), None);
    }

    #[test]
    fn release_drops_the_outlier() {
        let sel = epyc_selection();
        // A compact CCX pair plus one far-socket straggler: the straggler
        // goes first.
        let members = vec![CoreId(0), CoreId(1), CoreId(200)];
        assert_eq!(sel.pick_release(&members), Some(CoreId(200)));
        // Singleton and empty cases.
        assert_eq!(sel.pick_release(&[CoreId(3)]), Some(CoreId(3)));
        assert_eq!(sel.pick_release(&[]), None);
        // Naive default: highest id.
        assert_eq!(NaiveSelection.pick_release(&members), Some(CoreId(200)));
    }

    #[test]
    fn release_ties_break_on_highest_id() {
        let sel = epyc_selection();
        // Three CCX mates, all pairwise distance 20: release the highest.
        let members = vec![CoreId(2), CoreId(4), CoreId(6)];
        assert_eq!(sel.pick_release(&members), Some(CoreId(6)));
    }

    #[test]
    fn naive_ignores_topology() {
        let sel = NaiveSelection;
        let free = vec![CoreId(130), CoreId(9), CoreId(2)];
        assert_eq!(sel.pick_expansion(&[CoreId(0)], &free), Some(CoreId(2)));
        assert_eq!(sel.pick_seed(&[CoreId(0)], &free), Some(CoreId(2)));
        assert_eq!(sel.name(), "naive");
    }

    #[test]
    fn mean_cross_distance_reflects_isolation() {
        let sel = epyc_selection();
        let m = sel.matrix();
        let ccx0: Vec<CoreId> = (0..8).map(CoreId).collect();
        let ccx1: Vec<CoreId> = (8..16).map(CoreId).collect();
        let far: Vec<CoreId> = (128..136).map(CoreId).collect();
        let near = mean_cross_distance(m, &ccx0, &ccx1);
        let cross = mean_cross_distance(m, &ccx0, &far);
        assert!(cross > near, "{cross} should exceed {near}");
        assert_eq!(mean_cross_distance(m, &ccx0, &[]), 0.0);
    }
}
