//! The immutable CPU-topology description.

use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Maximum number of cache levels a topology may describe.
pub const MAX_CACHE_LEVELS: usize = 4;

/// Index of a schedulable CPU (a hardware thread on SMT machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The raw index, as `usize` for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Identifier of a cache *zone* at some level: cores reporting the same
/// `CacheId` at level `l` share that cache. Mirrors the per-level IDs Linux
/// exposes under `/sys/devices/system/cpu/cpu*/cache/index*/id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CacheId(pub u32);

/// One schedulable CPU with its placement information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Core {
    /// The CPU index.
    pub id: CoreId,
    /// Physical package (socket) index.
    pub socket: u32,
    /// NUMA node index.
    pub numa: u32,
    /// Cache-zone identifier per level, `caches[0]` being the innermost
    /// (L1). `None` marks "no cache at this level" for heterogeneous or
    /// truncated hierarchies.
    pub caches: [Option<CacheId>; MAX_CACHE_LEVELS],
}

impl Core {
    /// Cache-zone id at `level`, if the topology describes that level.
    #[inline]
    pub fn cache_at(&self, level: usize) -> Option<CacheId> {
        self.caches.get(level).copied().flatten()
    }
}

/// Errors raised while constructing or validating a topology.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology has no cores at all.
    #[error("a topology requires at least one core")]
    Empty,

    /// Core ids must be the contiguous range `0..n`.
    #[error("core ids must be contiguous 0..n; index {index} holds id {found}")]
    NonContiguousIds {
        /// Position in the core list.
        index: usize,
        /// Id found at that position.
        found: u32,
    },

    /// A NUMA node index outside the distance table.
    #[error(
        "core {core} references NUMA node {numa}, but the distance table covers {nodes} nodes"
    )]
    NumaOutOfRange {
        /// Offending core id.
        core: u32,
        /// Referenced NUMA node.
        numa: u32,
        /// Number of nodes in the distance table.
        nodes: usize,
    },

    /// The NUMA distance table is not square.
    #[error("NUMA distance table must be square; row {row} has {len} entries for {nodes} nodes")]
    RaggedNumaTable {
        /// Offending row.
        row: usize,
        /// Entries in that row.
        len: usize,
        /// Expected entries.
        nodes: usize,
    },
}

/// An immutable description of a machine's schedulable CPUs.
///
/// Built once (see [`crate::builders`]) and then shared; all queries are
/// `O(1)` or iterate the core list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuTopology {
    cores: Vec<Core>,
    /// Number of meaningful cache levels (`height` in Algorithm 1).
    height: usize,
    /// Square matrix of NUMA distances, `numa_distances[a][b]`, in the
    /// Linux convention (10 = local).
    numa_distances: Vec<Vec<u32>>,
}

impl CpuTopology {
    /// Builds a validated topology.
    pub fn new(
        cores: Vec<Core>,
        height: usize,
        numa_distances: Vec<Vec<u32>>,
    ) -> Result<Self, TopologyError> {
        if cores.is_empty() {
            return Err(TopologyError::Empty);
        }
        for (index, core) in cores.iter().enumerate() {
            if core.id.index() != index {
                return Err(TopologyError::NonContiguousIds {
                    index,
                    found: core.id.0,
                });
            }
        }
        let nodes = numa_distances.len();
        for (row, entries) in numa_distances.iter().enumerate() {
            if entries.len() != nodes {
                return Err(TopologyError::RaggedNumaTable {
                    row,
                    len: entries.len(),
                    nodes,
                });
            }
        }
        for core in &cores {
            if core.numa as usize >= nodes {
                return Err(TopologyError::NumaOutOfRange {
                    core: core.id.0,
                    numa: core.numa,
                    nodes,
                });
            }
        }
        let height = height.min(MAX_CACHE_LEVELS);
        Ok(CpuTopology {
            cores,
            height,
            numa_distances,
        })
    }

    /// Number of schedulable CPUs.
    #[inline]
    pub fn num_cores(&self) -> u32 {
        self.cores.len() as u32
    }

    /// The cache-hierarchy height used by Algorithm 1.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The core list, ordered by id.
    #[inline]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Looks up a core by id. Panics on an out-of-range id — ids come from
    /// this topology, so a miss is a logic error.
    #[inline]
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// All core ids, ascending.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.cores.len() as u32).map(CoreId)
    }

    /// NUMA distance between two nodes (Linux convention, 10 = local).
    #[inline]
    pub fn numa_distance(&self, a: u32, b: u32) -> u32 {
        self.numa_distances[a as usize][b as usize]
    }

    /// Number of distinct sockets.
    pub fn num_sockets(&self) -> u32 {
        self.cores
            .iter()
            .map(|c| c.socket)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Number of NUMA nodes in the distance table.
    pub fn num_numa_nodes(&self) -> usize {
        self.numa_distances.len()
    }

    /// The SMT *sibling group* of a CPU: all CPUs sharing its innermost
    /// (L1) cache, itself included. On non-SMT machines this is a
    /// singleton.
    pub fn smt_siblings(&self, id: CoreId) -> Vec<CoreId> {
        let me = self.core(id);
        match me.cache_at(0) {
            None => vec![id],
            Some(l1) => self
                .cores
                .iter()
                .filter(|c| c.cache_at(0) == Some(l1))
                .map(|c| c.id)
                .collect(),
        }
    }

    /// Number of *distinct physical cores* (L1 groups) covered by a set of
    /// CPUs — what bounds pre-SMT compute capacity in the perf model.
    pub fn physical_core_count<'a>(&self, cpus: impl IntoIterator<Item = &'a CoreId>) -> u32 {
        let mut groups: Vec<CacheId> = Vec::new();
        let mut singletons = 0u32;
        for &id in cpus {
            match self.core(id).cache_at(0) {
                Some(l1) => {
                    if !groups.contains(&l1) {
                        groups.push(l1);
                    }
                }
                None => singletons += 1,
            }
        }
        groups.len() as u32 + singletons
    }

    /// Cores belonging to `socket`, ascending by id.
    pub fn cores_in_socket(&self, socket: u32) -> Vec<CoreId> {
        self.cores
            .iter()
            .filter(|c| c.socket == socket)
            .map(|c| c.id)
            .collect()
    }

    /// A short human-readable summary, e.g. `2 socket(s) x 128 cpus, 3 cache levels`.
    pub fn summary(&self) -> String {
        format!(
            "{} socket(s) x {} cpus, {} cache levels, {} NUMA node(s)",
            self.num_sockets(),
            self.num_cores(),
            self.height,
            self.num_numa_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn rejects_empty_and_ragged() {
        assert_eq!(
            CpuTopology::new(vec![], 1, vec![vec![10]]).unwrap_err(),
            TopologyError::Empty
        );
        let core = Core {
            id: CoreId(0),
            socket: 0,
            numa: 0,
            caches: [None; MAX_CACHE_LEVELS],
        };
        assert!(matches!(
            CpuTopology::new(vec![core], 1, vec![vec![10, 20]]).unwrap_err(),
            TopologyError::RaggedNumaTable { .. }
        ));
    }

    #[test]
    fn rejects_non_contiguous_ids() {
        let mk = |id| Core {
            id: CoreId(id),
            socket: 0,
            numa: 0,
            caches: [None; MAX_CACHE_LEVELS],
        };
        let err = CpuTopology::new(vec![mk(0), mk(2)], 1, vec![vec![10]]).unwrap_err();
        assert_eq!(err, TopologyError::NonContiguousIds { index: 1, found: 2 });
    }

    #[test]
    fn rejects_numa_out_of_range() {
        let core = Core {
            id: CoreId(0),
            socket: 0,
            numa: 1,
            caches: [None; MAX_CACHE_LEVELS],
        };
        assert!(matches!(
            CpuTopology::new(vec![core], 1, vec![vec![10]]).unwrap_err(),
            TopologyError::NumaOutOfRange { .. }
        ));
    }

    #[test]
    fn smt_siblings_on_epyc() {
        let topo = builders::dual_epyc_7662();
        // EPYC builder lays out sibling threads adjacently: (0,1), (2,3), ...
        let sib = topo.smt_siblings(CoreId(0));
        assert_eq!(sib.len(), 2);
        assert!(sib.contains(&CoreId(0)) && sib.contains(&CoreId(1)));
        assert_eq!(topo.physical_core_count(&[CoreId(0), CoreId(1)]), 1);
        assert_eq!(topo.physical_core_count(&[CoreId(0), CoreId(2)]), 2);
    }

    #[test]
    fn summary_mentions_shape() {
        let topo = builders::dual_epyc_7662();
        assert_eq!(topo.num_cores(), 256);
        assert_eq!(topo.num_sockets(), 2);
        assert!(topo.summary().contains("2 socket(s) x 256 cpus"));
    }
}
