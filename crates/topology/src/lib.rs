//! # slackvm-topology
//!
//! A CPU-topology model for the SlackVM local scheduler.
//!
//! Modern server processors have intricate topologies: multiple sockets,
//! NUMA nodes, segmented last-level caches (EPYC CCXs) and SMT sibling
//! threads. SlackVM's local scheduler pins vNodes to groups of cores that
//! "resemble a CPU model with fewer cores" (paper §V-A), and it does so by
//! ranking cores with a *cache-aware distance metric* that extends the NUMA
//! distance notion (paper Algorithm 1).
//!
//! This crate provides:
//! - [`CpuTopology`]: an immutable description of schedulable CPUs with
//!   their per-level cache identifiers, socket and NUMA placement;
//! - [`builders`]: ready-made topologies (the paper's dual AMD EPYC 7662
//!   testbed, generic monolithic-LLC hosts, flat single-socket hosts) plus
//!   a custom [`builders::TopologyBuilder`];
//! - [`distance`]: paper Algorithm 1 and a precomputed [`distance::DistanceMatrix`];
//! - [`select`]: the core-selection policies ("closest to the vNode" for
//!   growth, "farthest from other vNodes" for seeding) and a naive policy
//!   used by the ablation benchmarks.

#![warn(missing_docs)]

pub mod builders;
pub mod distance;
pub mod select;
pub mod spec;
pub mod topo;

pub use builders::TopologyBuilder;
pub use distance::{core_distance, DistanceMatrix};
pub use select::{NaiveSelection, SelectionPolicy, TopologySelection};
pub use spec::{parse_spec, topology_from_spec, SpecError};
pub use topo::{CacheId, Core, CoreId, CpuTopology, TopologyError};
