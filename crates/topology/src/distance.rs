//! Paper Algorithm 1: cache-aware core distance.
//!
//! The distance between two schedulable CPUs is found by walking the cache
//! hierarchy from the innermost level outwards. The first shared cache
//! zone stops the walk; every level crossed without sharing adds 10 (the
//! same order of magnitude as Linux's NUMA distances). If no cache is
//! shared at any level, the NUMA distance between the cores' nodes is
//! added on top.
//!
//! Consequences on the paper's EPYC testbed:
//! - SMT siblings (shared L1) are at distance 0;
//! - cores of the same CCX (shared L3, distinct L1/L2) are at distance 20;
//! - same-socket cores of different CCXs are at 30 + 10 (local NUMA) = 40;
//! - cross-socket cores are at 30 + 32 (remote NUMA) = 62.

use crate::topo::{CoreId, CpuTopology};

/// Computes paper Algorithm 1 for a pair of CPUs.
///
/// `distance(a, a)` is 0 (a core shares its own L1). The metric is
/// symmetric by construction as long as the NUMA table is.
///
/// ```
/// use slackvm_topology::{core_distance, CoreId};
/// use slackvm_topology::builders::dual_epyc_7662;
/// let topo = dual_epyc_7662();
/// assert_eq!(core_distance(&topo, CoreId(0), CoreId(1)), 0);   // SMT siblings
/// assert_eq!(core_distance(&topo, CoreId(0), CoreId(2)), 20);  // same CCX (L3)
/// assert_eq!(core_distance(&topo, CoreId(0), CoreId(128)), 62); // other socket
/// ```
pub fn core_distance(topo: &CpuTopology, a: CoreId, b: CoreId) -> u32 {
    let ca = topo.core(a);
    let cb = topo.core(b);
    let mut distance = 0u32;
    for level in 0..topo.height() {
        match (ca.cache_at(level), cb.cache_at(level)) {
            (Some(za), Some(zb)) if za == zb => return distance,
            _ => distance += 10,
        }
    }
    distance + topo.numa_distance(ca.numa, cb.numa)
}

/// A precomputed, symmetric all-pairs distance table.
///
/// vNode resizing queries distances between every free core and every
/// vNode member on each deployment; precomputing the `n²` table (a 128 KiB
/// `u16` matrix for 256 CPUs) makes those queries branch-free lookups.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    table: Vec<u16>,
}

impl DistanceMatrix {
    /// Precomputes all pairwise distances for `topo`.
    pub fn build(topo: &CpuTopology) -> Self {
        let n = topo.num_cores() as usize;
        let mut table = vec![0u16; n * n];
        for i in 0..n {
            // Exploit symmetry: compute the upper triangle and mirror.
            for j in i..n {
                let d = core_distance(topo, CoreId(i as u32), CoreId(j as u32));
                debug_assert!(d <= u16::MAX as u32, "distance overflows u16");
                table[i * n + j] = d as u16;
                table[j * n + i] = d as u16;
            }
        }
        DistanceMatrix { n, table }
    }

    /// Number of CPUs covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers zero CPUs (never, in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between two CPUs.
    #[inline]
    pub fn get(&self, a: CoreId, b: CoreId) -> u32 {
        self.table[a.index() * self.n + b.index()] as u32
    }

    /// Smallest distance from `core` to any member of `set`.
    /// Returns `None` when `set` is empty.
    pub fn min_distance_to_set<'a>(
        &self,
        core: CoreId,
        set: impl IntoIterator<Item = &'a CoreId>,
    ) -> Option<u32> {
        set.into_iter().map(|&m| self.get(core, m)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use proptest::prelude::*;

    #[test]
    fn epyc_distance_tiers_match_hierarchy() {
        let topo = builders::dual_epyc_7662();
        // Sibling threads of the same physical core: share L1 -> 0.
        assert_eq!(core_distance(&topo, CoreId(0), CoreId(1)), 0);
        // Same CCX (cores 0..8 cover CCX 0 = 4 physical cores): share L3 only -> 20.
        assert_eq!(core_distance(&topo, CoreId(0), CoreId(2)), 20);
        // Same socket, different CCX: no shared cache -> 30 + local NUMA 10 = 40.
        assert_eq!(core_distance(&topo, CoreId(0), CoreId(8)), 40);
        // Different socket: 30 + remote NUMA 32 = 62.
        assert_eq!(core_distance(&topo, CoreId(0), CoreId(128)), 62);
    }

    #[test]
    fn self_distance_is_zero() {
        let topo = builders::xeon(2, 16, 2);
        for id in topo.core_ids() {
            assert_eq!(core_distance(&topo, id, id), 0);
        }
    }

    #[test]
    fn xeon_monolithic_llc_keeps_socket_cohesion() {
        let topo = builders::xeon(2, 4, 1);
        // No SMT: distinct L1/L2, shared socket L3 -> 20.
        assert_eq!(core_distance(&topo, CoreId(0), CoreId(1)), 20);
        // Cross socket: 30 + 21 = 51 (default remote distance for xeon builder).
        assert_eq!(core_distance(&topo, CoreId(0), CoreId(4)), 51);
    }

    #[test]
    fn matrix_agrees_with_direct_computation() {
        let topo = builders::dual_epyc_7662();
        let matrix = DistanceMatrix::build(&topo);
        assert_eq!(matrix.len(), 256);
        for &(a, b) in &[(0u32, 1u32), (0, 2), (0, 8), (0, 128), (5, 77), (250, 3)] {
            assert_eq!(
                matrix.get(CoreId(a), CoreId(b)),
                core_distance(&topo, CoreId(a), CoreId(b)),
            );
        }
    }

    #[test]
    fn min_distance_to_set_behaviour() {
        let topo = builders::flat(8);
        let matrix = DistanceMatrix::build(&topo);
        assert_eq!(matrix.min_distance_to_set(CoreId(0), &[]), None);
        let set = [CoreId(4), CoreId(5)];
        let d = matrix.min_distance_to_set(CoreId(0), &set).unwrap();
        assert_eq!(
            d,
            set.iter().map(|&m| matrix.get(CoreId(0), m)).min().unwrap()
        );
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in 0u32..256, b in 0u32..256) {
            let topo = builders::dual_epyc_7662();
            prop_assert_eq!(
                core_distance(&topo, CoreId(a), CoreId(b)),
                core_distance(&topo, CoreId(b), CoreId(a)),
            );
        }

        #[test]
        fn distance_respects_containment_hierarchy(a in 0u32..256, b in 0u32..256) {
            // On the EPYC layout every pair lands on one of the four tiers.
            let topo = builders::dual_epyc_7662();
            let d = core_distance(&topo, CoreId(a), CoreId(b));
            prop_assert!([0, 20, 40, 62].contains(&d), "unexpected tier {}", d);
        }
    }
}
