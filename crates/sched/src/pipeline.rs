//! The filter-then-score placement pipeline.

use slackvm_model::{AllocView, PmConfig, PmId, VmSpec};
use slackvm_telemetry::Recorder;

use crate::scorers::Scorer;

/// A PM presented to the filter/score pipeline: the information a cloud
/// control plane gathers from each local scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The PM's id.
    pub id: PmId,
    /// Its hardware configuration.
    pub config: PmConfig,
    /// Its current allocation.
    pub alloc: AllocView,
    /// Number of VMs it currently hosts.
    pub vms: usize,
}

/// Total order on scores with NaN ranking *lowest*: a scorer that
/// emits NaN (e.g. a 0/0 in a ratio) can never win a placement, and —
/// unlike `partial_cmp(..).unwrap_or(Equal)` — the comparison stays a
/// real total order, so the winner is independent of candidate
/// iteration order.
///
/// `f64::total_cmp` alone would rank positive NaN *above* +∞; this
/// helper pins both NaN payloads below every real score instead.
fn score_order(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// How to pick one PM among filtered candidates.
pub enum PlacementPolicy {
    /// Lowest PM id that fits — the packing-efficiency baseline the paper
    /// evaluates against ("fills existing servers before considering new
    /// ones", §VII-B).
    FirstFit,
    /// Highest score wins; ties go to the lowest PM id, which preserves
    /// First-Fit's consolidation bias among equals. NaN scores rank
    /// lowest, so a NaN-emitting scorer can never steer placement and
    /// the winner never depends on candidate iteration order.
    Scored(Box<dyn Scorer>),
    /// OpenStack-weigher-style selection: each scorer's outputs are
    /// min–max normalized to `[0, 1]` *across the candidate set* before
    /// the weighted sum — so weights express relative importance
    /// independently of each scorer's natural scale (the way Nova
    /// combines its weighers, paper ref. [41]).
    WeightedNormalized(Vec<(f64, Box<dyn Scorer>)>),
}

/// The policy names [`PlacementPolicy::by_name`] accepts, in the order
/// they should be listed in error messages and `--help` text.
pub const POLICY_NAMES: &[&str] = &[
    "first-fit",
    "progress",
    "progress+bestfit",
    "best-fit",
    "worst-fit",
    "dot-product",
    "norm-greedy",
];

impl PlacementPolicy {
    /// A score-based policy from any scorer.
    pub fn scored(scorer: impl Scorer + 'static) -> Self {
        PlacementPolicy::Scored(Box::new(scorer))
    }

    /// Builds a policy from its report label — the single registry
    /// behind every `--policy` flag (replay, serve, bombard), so the
    /// accepted names and the labels printed in reports never drift
    /// apart. Returns `None` for an unknown name; see [`POLICY_NAMES`].
    pub fn by_name(name: &str) -> Option<Self> {
        use crate::scorers::{
            BestFitScorer, CompositeScorer, DotProductScorer, NormBasedGreedyScorer,
            ProgressScorer, WorstFitScorer, DEFAULT_CONSOLIDATION_WEIGHT,
        };
        match name {
            "first-fit" => Some(PlacementPolicy::FirstFit),
            "progress" => Some(PlacementPolicy::scored(ProgressScorer::paper())),
            "progress+bestfit" => Some(PlacementPolicy::scored(
                CompositeScorer::progress_with_consolidation(DEFAULT_CONSOLIDATION_WEIGHT),
            )),
            "best-fit" => Some(PlacementPolicy::scored(BestFitScorer)),
            "worst-fit" => Some(PlacementPolicy::scored(WorstFitScorer)),
            "dot-product" => Some(PlacementPolicy::scored(DotProductScorer)),
            "norm-greedy" => Some(PlacementPolicy::scored(NormBasedGreedyScorer)),
            _ => None,
        }
    }

    /// A normalized multi-weigher policy.
    pub fn weighted(parts: Vec<(f64, Box<dyn Scorer>)>) -> Self {
        PlacementPolicy::WeightedNormalized(parts)
    }

    /// Policy label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::Scored(s) => s.name(),
            PlacementPolicy::WeightedNormalized(_) => "weighted-normalized",
        }
    }

    /// Picks the target PM for `vm` among `candidates` (all of which
    /// satisfy the hard constraints). Returns `None` when the slice is
    /// empty.
    pub fn select(&self, candidates: &[Candidate], vm: &VmSpec) -> Option<PmId> {
        match self {
            PlacementPolicy::FirstFit => candidates.iter().map(|c| c.id).min(),
            PlacementPolicy::Scored(scorer) => candidates
                .iter()
                .map(|c| (c.id, scorer.score(&c.config, &c.alloc, vm)))
                // max_by on (score, Reverse(id)): highest score, lowest
                // id; NaN scores rank lowest (see `score_order`).
                .max_by(|(ida, sa), (idb, sb)| score_order(*sa, *sb).then(idb.cmp(ida)))
                .map(|(id, _)| id),
            PlacementPolicy::WeightedNormalized(parts) => {
                if candidates.is_empty() {
                    return None;
                }
                let mut totals = vec![0.0f64; candidates.len()];
                for (weight, scorer) in parts {
                    let raw: Vec<f64> = candidates
                        .iter()
                        .map(|c| scorer.score(&c.config, &c.alloc, vm))
                        .collect();
                    let lo = raw.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let span = hi - lo;
                    // Relative tolerance: an absolute epsilon would
                    // misread a constant large-magnitude scorer (ULP
                    // jitter near 1e9 dwarfs f64::EPSILON) as varying,
                    // and zero out legitimate tiny spans near 0.
                    let negligible = span <= hi.abs().max(lo.abs()) * 1e-12;
                    for (total, value) in totals.iter_mut().zip(&raw) {
                        // A constant scorer contributes nothing (every
                        // candidate would normalize identically anyway).
                        // NaN raw scores poison only their own
                        // candidate's total, which then ranks lowest.
                        if !negligible {
                            *total += weight * (value - lo) / span;
                        }
                    }
                }
                candidates
                    .iter()
                    .zip(&totals)
                    .max_by(|(ca, sa), (cb, sb)| score_order(**sa, **sb).then(cb.id.cmp(&ca.id)))
                    .map(|(c, _)| c.id)
            }
        }
    }

    /// [`PlacementPolicy::select`] with span timing and candidate
    /// accounting around the scoring loop.
    ///
    /// With a disabled recorder (e.g. `NullRecorder`) this is exactly
    /// `select`: `begin` returns `None` without reading the clock, the
    /// `enabled()` guard skips the counters, and nothing allocates.
    pub fn select_recorded<R: Recorder>(
        &self,
        candidates: &[Candidate],
        vm: &VmSpec,
        recorder: &mut R,
    ) -> Option<PmId> {
        let span = recorder.begin("sched.select");
        let picked = self.select(candidates, vm);
        recorder.end(span);
        if recorder.enabled() {
            recorder.count("sched.selections", 1);
            recorder.count("sched.candidates_scored", candidates.len() as u64);
            if picked.is_none() {
                recorder.count("sched.no_candidate", 1);
            }
        }
        picked
    }
}

impl std::fmt::Debug for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PlacementPolicy::{}", self.name())
    }
}

/// The full control-plane pipeline: hard-constraint filters followed by
/// the placement policy (paper §II-B's two-stage selection).
pub struct Scheduler {
    filters: Vec<Box<dyn crate::filters::Filter>>,
    policy: PlacementPolicy,
}

impl Scheduler {
    /// Builds a pipeline from a policy, with no extra filters.
    pub fn new(policy: PlacementPolicy) -> Self {
        Scheduler {
            filters: Vec::new(),
            policy,
        }
    }

    /// Appends a hard-constraint filter.
    pub fn with_filter(mut self, filter: impl crate::filters::Filter + 'static) -> Self {
        self.filters.push(Box::new(filter));
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Filter names, in evaluation order.
    pub fn filter_names(&self) -> Vec<&'static str> {
        self.filters.iter().map(|f| f.name()).collect()
    }

    /// Runs the pipeline: drops candidates failing any filter, then
    /// delegates to the policy.
    pub fn place(&self, candidates: &[Candidate], vm: &VmSpec) -> Option<PmId> {
        self.place_recorded(candidates, vm, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`Scheduler::place`] with per-stage telemetry: a span over the
    /// whole pipeline, a count of filtered-out candidates, and the
    /// scoring-loop span from [`PlacementPolicy::select_recorded`].
    pub fn place_recorded<R: Recorder>(
        &self,
        candidates: &[Candidate],
        vm: &VmSpec,
        recorder: &mut R,
    ) -> Option<PmId> {
        let span = recorder.begin("sched.place");
        let filter_span = recorder.begin("sched.filter");
        let surviving: Vec<Candidate> = candidates
            .iter()
            .filter(|c| self.filters.iter().all(|f| f.accepts(c, vm)))
            .copied()
            .collect();
        recorder.end(filter_span);
        if recorder.enabled() {
            recorder.count(
                "sched.filtered_out",
                (candidates.len() - surviving.len()) as u64,
            );
        }
        let picked = self.policy.select_recorded(&surviving, vm, recorder);
        recorder.end(span);
        picked
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("filters", &self.filter_names())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorers::{BestFitScorer, ProgressScorer};
    use slackvm_model::{gib, Millicores, OversubLevel};

    fn cand(id: u32, cores: u32, mem_gib: u64) -> Candidate {
        Candidate {
            id: PmId(id),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(cores), gib(mem_gib)),
            vms: 1,
        }
    }

    fn vm(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::PREMIUM)
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let policy = PlacementPolicy::FirstFit;
        let cands = vec![cand(7, 0, 0), cand(2, 30, 120), cand(5, 1, 1)];
        assert_eq!(policy.select(&cands, &vm(1, 1)), Some(PmId(2)));
        assert_eq!(policy.select(&[], &vm(1, 1)), None);
    }

    #[test]
    fn scored_takes_highest_score() {
        let policy = PlacementPolicy::scored(BestFitScorer);
        // Best-fit: the fuller PM (id 9) wins over the emptier (id 1).
        let cands = vec![cand(1, 2, 8), cand(9, 28, 112)];
        assert_eq!(policy.select(&cands, &vm(1, 4)), Some(PmId(9)));
    }

    #[test]
    fn score_ties_break_to_lowest_id() {
        let policy = PlacementPolicy::scored(BestFitScorer);
        let cands = vec![cand(4, 8, 32), cand(3, 8, 32), cand(6, 8, 32)];
        assert_eq!(policy.select(&cands, &vm(1, 4)), Some(PmId(3)));
    }

    #[test]
    fn progress_policy_prefers_complementary_pm() {
        let policy = PlacementPolicy::scored(ProgressScorer::paper());
        // PM 0: CPU-heavy (ratio 1); PM 1: memory-heavy (ratio 8). A
        // memory-heavy VM (ratio 8) should land on the CPU-heavy PM 0.
        let cands = vec![cand(0, 8, 8), cand(1, 4, 32)];
        assert_eq!(policy.select(&cands, &vm(1, 8)), Some(PmId(0)));
        // ... and a CPU-heavy VM (ratio 1) on the memory-heavy PM 1.
        assert_eq!(policy.select(&cands, &vm(4, 4)), Some(PmId(1)));
    }

    #[test]
    fn names() {
        assert_eq!(PlacementPolicy::FirstFit.name(), "first-fit");
        assert_eq!(
            PlacementPolicy::scored(ProgressScorer::paper()).name(),
            "progress"
        );
    }

    #[test]
    fn by_name_round_trips_every_registered_policy() {
        for name in POLICY_NAMES {
            let policy = PlacementPolicy::by_name(name)
                .unwrap_or_else(|| panic!("{name} is registered but not constructible"));
            assert_eq!(policy.name(), *name, "label drifted for {name}");
        }
        assert!(PlacementPolicy::by_name("round-robin").is_none());
        assert!(PlacementPolicy::by_name("").is_none());
        assert!(
            PlacementPolicy::by_name("First-Fit").is_none(),
            "names are case-sensitive identifiers"
        );
    }

    #[test]
    fn weighted_normalized_balances_scales() {
        use crate::scorers::{BestFitScorer, ProgressScorer};
        // Progress scores live in GiB/core units (can be ±4); best-fit
        // scores in [-2, 0]. Normalization makes a 1:1 weighting
        // meaningful.
        let policy = PlacementPolicy::weighted(vec![
            (1.0, Box::new(ProgressScorer::paper())),
            (1.0, Box::new(BestFitScorer)),
        ]);
        assert_eq!(policy.name(), "weighted-normalized");
        // PM 5: CPU-heavy and nearly empty; PM 6: balanced and fuller.
        // Progress prefers 5 for a memory-heavy VM, best-fit prefers 6;
        // the tie of normalized winners (1.0 + 0.0 vs 0.0 + 1.0) breaks
        // to the lowest id.
        let cands = vec![cand(5, 4, 4), cand(6, 16, 64)];
        let vm_mem = VmSpec::of(1, gib(8), OversubLevel::PREMIUM);
        assert_eq!(policy.select(&cands, &vm_mem), Some(PmId(5)));
        // Doubling the consolidation weight flips the decision.
        let policy = PlacementPolicy::weighted(vec![
            (1.0, Box::new(ProgressScorer::paper())),
            (3.0, Box::new(BestFitScorer)),
        ]);
        assert_eq!(policy.select(&cands, &vm_mem), Some(PmId(6)));
    }

    #[test]
    fn weighted_normalized_edge_cases() {
        use crate::scorers::BestFitScorer;
        let policy = PlacementPolicy::weighted(vec![(1.0, Box::new(BestFitScorer))]);
        assert_eq!(policy.select(&[], &vm(1, 1)), None);
        // Single candidate: picked regardless of score.
        let one = vec![cand(9, 0, 0)];
        assert_eq!(policy.select(&one, &vm(1, 1)), Some(PmId(9)));
        // Identical candidates (constant scores): lowest id wins.
        let same = vec![cand(4, 8, 32), cand(2, 8, 32), cand(7, 8, 32)];
        assert_eq!(policy.select(&same, &vm(1, 1)), Some(PmId(2)));
    }

    /// Every rotation of the candidate slice must yield the same winner.
    fn assert_permutation_invariant(policy: &PlacementPolicy, cands: &[Candidate], spec: &VmSpec) {
        let baseline = policy.select(cands, spec);
        let mut rotated = cands.to_vec();
        for _ in 0..cands.len() {
            rotated.rotate_left(1);
            assert_eq!(
                policy.select(&rotated, spec),
                baseline,
                "selection changed under permutation"
            );
        }
        let mut reversed = cands.to_vec();
        reversed.reverse();
        assert_eq!(policy.select(&reversed, spec), baseline);
    }

    #[test]
    fn nan_scores_rank_lowest_under_any_order() {
        // Poisoned PMs carry mem allocations in the poison list.
        struct MemNan;
        impl crate::scorers::Scorer for MemNan {
            fn name(&self) -> &'static str {
                "mem-nan"
            }
            fn score(&self, _c: &PmConfig, alloc: &AllocView, _v: &VmSpec) -> f64 {
                if alloc.mem_mib == gib(13) {
                    f64::NAN
                } else {
                    -(alloc.mem_mib as f64)
                }
            }
        }
        let policy = PlacementPolicy::scored(MemNan);
        // PM 8 is poisoned (NaN); the best real score is PM 5 (least
        // mem used). Under the old partial_cmp(..).unwrap_or(Equal)
        // comparator the answer depended on which side of the NaN the
        // max_by scan was on.
        let cands = vec![cand(8, 4, 13), cand(2, 4, 40), cand(5, 4, 20)];
        assert_eq!(policy.select(&cands, &vm(1, 1)), Some(PmId(5)));
        assert_permutation_invariant(&policy, &cands, &vm(1, 1));
        // All-NaN: still deterministic — lowest id wins the tie.
        let all_nan = vec![cand(8, 4, 13), cand(3, 2, 13), cand(6, 1, 13)];
        assert_eq!(policy.select(&all_nan, &vm(1, 1)), Some(PmId(3)));
        assert_permutation_invariant(&policy, &all_nan, &vm(1, 1));
        // Weighted-normalized with a NaN-poisoned component behaves the
        // same way: the poisoned candidate's total is NaN, ranks lowest.
        let weighted = PlacementPolicy::weighted(vec![
            (1.0, Box::new(MemNan)),
            (0.5, Box::new(BestFitScorer)),
        ]);
        assert_eq!(weighted.select(&cands, &vm(1, 1)), Some(PmId(5)));
        assert_permutation_invariant(&weighted, &cands, &vm(1, 1));
    }

    #[test]
    fn nan_never_beats_a_real_score_even_negative_infinity() {
        struct Inf;
        impl crate::scorers::Scorer for Inf {
            fn name(&self) -> &'static str {
                "inf"
            }
            fn score(&self, _c: &PmConfig, alloc: &AllocView, _v: &VmSpec) -> f64 {
                if alloc.mem_mib == gib(13) {
                    f64::NAN
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
        let policy = PlacementPolicy::scored(Inf);
        let cands = vec![cand(1, 4, 13), cand(7, 4, 40)];
        // -inf is a real score and must outrank NaN (total_cmp alone
        // would let positive NaN beat it).
        assert_eq!(policy.select(&cands, &vm(1, 1)), Some(PmId(7)));
        assert_permutation_invariant(&policy, &cands, &vm(1, 1));
    }

    #[test]
    fn weighted_constant_large_magnitude_scorer_contributes_nothing() {
        struct Huge;
        impl crate::scorers::Scorer for Huge {
            fn name(&self) -> &'static str {
                "huge"
            }
            fn score(&self, _c: &PmConfig, _a: &AllocView, _v: &VmSpec) -> f64 {
                // Constant up to one ULP of jitter — far above
                // f64::EPSILON in absolute terms.
                1.0e9 + f64::EPSILON * 1.0e9
            }
        }
        // Alone, the constant scorer must not differentiate: lowest id
        // wins among distinct candidates.
        let policy = PlacementPolicy::weighted(vec![(1.0, Box::new(Huge))]);
        let cands = vec![cand(4, 8, 32), cand(2, 2, 8), cand(7, 28, 112)];
        assert_eq!(policy.select(&cands, &vm(1, 1)), Some(PmId(2)));
        // Paired with a real scorer, the constant must not drown it out.
        let policy =
            PlacementPolicy::weighted(vec![(10.0, Box::new(Huge)), (1.0, Box::new(BestFitScorer))]);
        // Best-fit prefers the fullest PM that still fits: id 7.
        assert_eq!(policy.select(&cands, &vm(1, 4)), Some(PmId(7)));
    }

    #[test]
    fn weighted_tiny_span_still_differentiates() {
        struct Tiny;
        impl crate::scorers::Scorer for Tiny {
            fn name(&self) -> &'static str {
                "tiny"
            }
            fn score(&self, _c: &PmConfig, alloc: &AllocView, _v: &VmSpec) -> f64 {
                // Legitimate spread of ~1e-16 around zero — below
                // f64::EPSILON but meaningful relative to the scale.
                alloc.mem_mib as f64 * 1.0e-21
            }
        }
        let policy = PlacementPolicy::weighted(vec![(1.0, Box::new(Tiny))]);
        let cands = vec![cand(1, 2, 8), cand(9, 28, 112)];
        // Higher mem -> higher tiny score: PM 9 must win, which the old
        // absolute-epsilon guard zeroed out (falling back to lowest id).
        assert_eq!(policy.select(&cands, &vm(1, 1)), Some(PmId(9)));
    }

    #[test]
    fn recorded_select_matches_plain_and_counts() {
        use slackvm_telemetry::{NullRecorder, Recorder as _, Telemetry};
        let policy = PlacementPolicy::scored(BestFitScorer);
        let cands = vec![cand(1, 2, 8), cand(9, 28, 112)];
        let spec = vm(1, 4);
        let mut telemetry = Telemetry::new();
        let recorded = policy.select_recorded(&cands, &spec, &mut telemetry);
        assert_eq!(recorded, policy.select(&cands, &spec));
        assert_eq!(telemetry.metrics.counter("sched.selections"), 1);
        assert_eq!(telemetry.metrics.counter("sched.candidates_scored"), 2);
        assert_eq!(telemetry.metrics.counter("sched.no_candidate"), 0);
        assert_eq!(telemetry.trace.len(), 1);
        assert_eq!(telemetry.trace.spans()[0].name, "sched.select");
        // Empty candidate set: the miss is counted.
        policy.select_recorded(&[], &spec, &mut telemetry);
        assert_eq!(telemetry.metrics.counter("sched.no_candidate"), 1);
        // The null recorder changes nothing about the decision.
        let mut null = NullRecorder;
        assert!(!null.enabled());
        assert_eq!(policy.select_recorded(&cands, &spec, &mut null), recorded);
    }

    #[test]
    fn recorded_pipeline_counts_filter_drops() {
        use crate::filters::MaxVmsFilter;
        use slackvm_telemetry::Telemetry;
        let sched =
            Scheduler::new(PlacementPolicy::FirstFit).with_filter(MaxVmsFilter { max_vms: 5 });
        let mut crowded = cand(0, 4, 4);
        crowded.vms = 9;
        let cands = vec![crowded, cand(2, 0, 0)];
        let mut telemetry = Telemetry::new();
        let picked = sched.place_recorded(&cands, &vm(1, 1), &mut telemetry);
        assert_eq!(picked, Some(PmId(2)));
        assert_eq!(telemetry.metrics.counter("sched.filtered_out"), 1);
        assert_eq!(telemetry.metrics.counter("sched.candidates_scored"), 1);
        // The pipeline, filter, and scoring spans were all timed.
        let names: Vec<&str> = telemetry.trace.spans().iter().map(|s| s.name).collect();
        assert!(names.contains(&"sched.place"));
        assert!(names.contains(&"sched.filter"));
        assert!(names.contains(&"sched.select"));
        assert!(telemetry.metrics.histogram("sched.select").is_some());
        assert!(telemetry.metrics.histogram("sched.filter").is_some());
    }

    #[test]
    fn scheduler_pipeline_filters_then_scores() {
        use crate::filters::{AntiAffinityFilter, MaxVmsFilter};
        let sched = Scheduler::new(PlacementPolicy::FirstFit)
            .with_filter(AntiAffinityFilter::excluding([PmId(1)]))
            .with_filter(MaxVmsFilter { max_vms: 5 });
        assert_eq!(sched.filter_names(), vec!["anti-affinity", "max-vms"]);
        let mut crowded = cand(0, 4, 4);
        crowded.vms = 9;
        let cands = vec![crowded, cand(1, 0, 0), cand(2, 0, 0)];
        // PM 0 is over the density cap, PM 1 is anti-affine: PM 2 wins.
        assert_eq!(sched.place(&cands, &vm(1, 1)), Some(PmId(2)));
        // All filtered out -> None.
        let cands = vec![crowded, cand(1, 0, 0)];
        assert_eq!(sched.place(&cands, &vm(1, 1)), None);
    }
}
