//! The filter-then-score placement pipeline.

use slackvm_model::{AllocView, PmConfig, PmId, VmSpec};
use slackvm_telemetry::Recorder;

use crate::scorers::Scorer;

/// A PM presented to the filter/score pipeline: the information a cloud
/// control plane gathers from each local scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The PM's id.
    pub id: PmId,
    /// Its hardware configuration.
    pub config: PmConfig,
    /// Its current allocation.
    pub alloc: AllocView,
    /// Number of VMs it currently hosts.
    pub vms: usize,
}

/// How to pick one PM among filtered candidates.
pub enum PlacementPolicy {
    /// Lowest PM id that fits — the packing-efficiency baseline the paper
    /// evaluates against ("fills existing servers before considering new
    /// ones", §VII-B).
    FirstFit,
    /// Highest score wins; ties go to the lowest PM id, which preserves
    /// First-Fit's consolidation bias among equals.
    Scored(Box<dyn Scorer>),
    /// OpenStack-weigher-style selection: each scorer's outputs are
    /// min–max normalized to `[0, 1]` *across the candidate set* before
    /// the weighted sum — so weights express relative importance
    /// independently of each scorer's natural scale (the way Nova
    /// combines its weighers, paper ref. [41]).
    WeightedNormalized(Vec<(f64, Box<dyn Scorer>)>),
}

impl PlacementPolicy {
    /// A score-based policy from any scorer.
    pub fn scored(scorer: impl Scorer + 'static) -> Self {
        PlacementPolicy::Scored(Box::new(scorer))
    }

    /// A normalized multi-weigher policy.
    pub fn weighted(parts: Vec<(f64, Box<dyn Scorer>)>) -> Self {
        PlacementPolicy::WeightedNormalized(parts)
    }

    /// Policy label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::Scored(s) => s.name(),
            PlacementPolicy::WeightedNormalized(_) => "weighted-normalized",
        }
    }

    /// Picks the target PM for `vm` among `candidates` (all of which
    /// satisfy the hard constraints). Returns `None` when the slice is
    /// empty.
    pub fn select(&self, candidates: &[Candidate], vm: &VmSpec) -> Option<PmId> {
        match self {
            PlacementPolicy::FirstFit => candidates.iter().map(|c| c.id).min(),
            PlacementPolicy::Scored(scorer) => candidates
                .iter()
                .map(|c| (c.id, scorer.score(&c.config, &c.alloc, vm)))
                // max_by on (score, Reverse(id)): highest score, lowest id.
                .max_by(|(ida, sa), (idb, sb)| {
                    sa.partial_cmp(sb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(idb.cmp(ida))
                })
                .map(|(id, _)| id),
            PlacementPolicy::WeightedNormalized(parts) => {
                if candidates.is_empty() {
                    return None;
                }
                let mut totals = vec![0.0f64; candidates.len()];
                for (weight, scorer) in parts {
                    let raw: Vec<f64> = candidates
                        .iter()
                        .map(|c| scorer.score(&c.config, &c.alloc, vm))
                        .collect();
                    let lo = raw.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let span = hi - lo;
                    for (total, value) in totals.iter_mut().zip(&raw) {
                        // A constant scorer contributes nothing (every
                        // candidate would normalize identically anyway).
                        if span > f64::EPSILON {
                            *total += weight * (value - lo) / span;
                        }
                    }
                }
                candidates
                    .iter()
                    .zip(&totals)
                    .max_by(|(ca, sa), (cb, sb)| {
                        sa.partial_cmp(sb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(cb.id.cmp(&ca.id))
                    })
                    .map(|(c, _)| c.id)
            }
        }
    }

    /// [`PlacementPolicy::select`] with span timing and candidate
    /// accounting around the scoring loop.
    ///
    /// With a disabled recorder (e.g. `NullRecorder`) this is exactly
    /// `select`: `begin` returns `None` without reading the clock, the
    /// `enabled()` guard skips the counters, and nothing allocates.
    pub fn select_recorded<R: Recorder>(
        &self,
        candidates: &[Candidate],
        vm: &VmSpec,
        recorder: &mut R,
    ) -> Option<PmId> {
        let span = recorder.begin("sched.select");
        let picked = self.select(candidates, vm);
        recorder.end(span);
        if recorder.enabled() {
            recorder.count("sched.selections", 1);
            recorder.count("sched.candidates_scored", candidates.len() as u64);
            if picked.is_none() {
                recorder.count("sched.no_candidate", 1);
            }
        }
        picked
    }
}

impl std::fmt::Debug for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PlacementPolicy::{}", self.name())
    }
}

/// The full control-plane pipeline: hard-constraint filters followed by
/// the placement policy (paper §II-B's two-stage selection).
pub struct Scheduler {
    filters: Vec<Box<dyn crate::filters::Filter>>,
    policy: PlacementPolicy,
}

impl Scheduler {
    /// Builds a pipeline from a policy, with no extra filters.
    pub fn new(policy: PlacementPolicy) -> Self {
        Scheduler {
            filters: Vec::new(),
            policy,
        }
    }

    /// Appends a hard-constraint filter.
    pub fn with_filter(mut self, filter: impl crate::filters::Filter + 'static) -> Self {
        self.filters.push(Box::new(filter));
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Filter names, in evaluation order.
    pub fn filter_names(&self) -> Vec<&'static str> {
        self.filters.iter().map(|f| f.name()).collect()
    }

    /// Runs the pipeline: drops candidates failing any filter, then
    /// delegates to the policy.
    pub fn place(&self, candidates: &[Candidate], vm: &VmSpec) -> Option<PmId> {
        self.place_recorded(candidates, vm, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`Scheduler::place`] with per-stage telemetry: a span over the
    /// whole pipeline, a count of filtered-out candidates, and the
    /// scoring-loop span from [`PlacementPolicy::select_recorded`].
    pub fn place_recorded<R: Recorder>(
        &self,
        candidates: &[Candidate],
        vm: &VmSpec,
        recorder: &mut R,
    ) -> Option<PmId> {
        let span = recorder.begin("sched.place");
        let filter_span = recorder.begin("sched.filter");
        let surviving: Vec<Candidate> = candidates
            .iter()
            .filter(|c| self.filters.iter().all(|f| f.accepts(c, vm)))
            .copied()
            .collect();
        recorder.end(filter_span);
        if recorder.enabled() {
            recorder.count(
                "sched.filtered_out",
                (candidates.len() - surviving.len()) as u64,
            );
        }
        let picked = self.policy.select_recorded(&surviving, vm, recorder);
        recorder.end(span);
        picked
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("filters", &self.filter_names())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorers::{BestFitScorer, ProgressScorer};
    use slackvm_model::{gib, Millicores, OversubLevel};

    fn cand(id: u32, cores: u32, mem_gib: u64) -> Candidate {
        Candidate {
            id: PmId(id),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(cores), gib(mem_gib)),
            vms: 1,
        }
    }

    fn vm(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::PREMIUM)
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let policy = PlacementPolicy::FirstFit;
        let cands = vec![cand(7, 0, 0), cand(2, 30, 120), cand(5, 1, 1)];
        assert_eq!(policy.select(&cands, &vm(1, 1)), Some(PmId(2)));
        assert_eq!(policy.select(&[], &vm(1, 1)), None);
    }

    #[test]
    fn scored_takes_highest_score() {
        let policy = PlacementPolicy::scored(BestFitScorer);
        // Best-fit: the fuller PM (id 9) wins over the emptier (id 1).
        let cands = vec![cand(1, 2, 8), cand(9, 28, 112)];
        assert_eq!(policy.select(&cands, &vm(1, 4)), Some(PmId(9)));
    }

    #[test]
    fn score_ties_break_to_lowest_id() {
        let policy = PlacementPolicy::scored(BestFitScorer);
        let cands = vec![cand(4, 8, 32), cand(3, 8, 32), cand(6, 8, 32)];
        assert_eq!(policy.select(&cands, &vm(1, 4)), Some(PmId(3)));
    }

    #[test]
    fn progress_policy_prefers_complementary_pm() {
        let policy = PlacementPolicy::scored(ProgressScorer::paper());
        // PM 0: CPU-heavy (ratio 1); PM 1: memory-heavy (ratio 8). A
        // memory-heavy VM (ratio 8) should land on the CPU-heavy PM 0.
        let cands = vec![cand(0, 8, 8), cand(1, 4, 32)];
        assert_eq!(policy.select(&cands, &vm(1, 8)), Some(PmId(0)));
        // ... and a CPU-heavy VM (ratio 1) on the memory-heavy PM 1.
        assert_eq!(policy.select(&cands, &vm(4, 4)), Some(PmId(1)));
    }

    #[test]
    fn names() {
        assert_eq!(PlacementPolicy::FirstFit.name(), "first-fit");
        assert_eq!(
            PlacementPolicy::scored(ProgressScorer::paper()).name(),
            "progress"
        );
    }

    #[test]
    fn weighted_normalized_balances_scales() {
        use crate::scorers::{BestFitScorer, ProgressScorer};
        // Progress scores live in GiB/core units (can be ±4); best-fit
        // scores in [-2, 0]. Normalization makes a 1:1 weighting
        // meaningful.
        let policy = PlacementPolicy::weighted(vec![
            (1.0, Box::new(ProgressScorer::paper())),
            (1.0, Box::new(BestFitScorer)),
        ]);
        assert_eq!(policy.name(), "weighted-normalized");
        // PM 5: CPU-heavy and nearly empty; PM 6: balanced and fuller.
        // Progress prefers 5 for a memory-heavy VM, best-fit prefers 6;
        // the tie of normalized winners (1.0 + 0.0 vs 0.0 + 1.0) breaks
        // to the lowest id.
        let cands = vec![cand(5, 4, 4), cand(6, 16, 64)];
        let vm_mem = VmSpec::of(1, gib(8), OversubLevel::PREMIUM);
        assert_eq!(policy.select(&cands, &vm_mem), Some(PmId(5)));
        // Doubling the consolidation weight flips the decision.
        let policy = PlacementPolicy::weighted(vec![
            (1.0, Box::new(ProgressScorer::paper())),
            (3.0, Box::new(BestFitScorer)),
        ]);
        assert_eq!(policy.select(&cands, &vm_mem), Some(PmId(6)));
    }

    #[test]
    fn weighted_normalized_edge_cases() {
        use crate::scorers::BestFitScorer;
        let policy = PlacementPolicy::weighted(vec![(1.0, Box::new(BestFitScorer))]);
        assert_eq!(policy.select(&[], &vm(1, 1)), None);
        // Single candidate: picked regardless of score.
        let one = vec![cand(9, 0, 0)];
        assert_eq!(policy.select(&one, &vm(1, 1)), Some(PmId(9)));
        // Identical candidates (constant scores): lowest id wins.
        let same = vec![cand(4, 8, 32), cand(2, 8, 32), cand(7, 8, 32)];
        assert_eq!(policy.select(&same, &vm(1, 1)), Some(PmId(2)));
    }

    #[test]
    fn recorded_select_matches_plain_and_counts() {
        use slackvm_telemetry::{NullRecorder, Recorder as _, Telemetry};
        let policy = PlacementPolicy::scored(BestFitScorer);
        let cands = vec![cand(1, 2, 8), cand(9, 28, 112)];
        let spec = vm(1, 4);
        let mut telemetry = Telemetry::new();
        let recorded = policy.select_recorded(&cands, &spec, &mut telemetry);
        assert_eq!(recorded, policy.select(&cands, &spec));
        assert_eq!(telemetry.metrics.counter("sched.selections"), 1);
        assert_eq!(telemetry.metrics.counter("sched.candidates_scored"), 2);
        assert_eq!(telemetry.metrics.counter("sched.no_candidate"), 0);
        assert_eq!(telemetry.trace.len(), 1);
        assert_eq!(telemetry.trace.spans()[0].name, "sched.select");
        // Empty candidate set: the miss is counted.
        policy.select_recorded(&[], &spec, &mut telemetry);
        assert_eq!(telemetry.metrics.counter("sched.no_candidate"), 1);
        // The null recorder changes nothing about the decision.
        let mut null = NullRecorder;
        assert!(!null.enabled());
        assert_eq!(policy.select_recorded(&cands, &spec, &mut null), recorded);
    }

    #[test]
    fn recorded_pipeline_counts_filter_drops() {
        use crate::filters::MaxVmsFilter;
        use slackvm_telemetry::Telemetry;
        let sched =
            Scheduler::new(PlacementPolicy::FirstFit).with_filter(MaxVmsFilter { max_vms: 5 });
        let mut crowded = cand(0, 4, 4);
        crowded.vms = 9;
        let cands = vec![crowded, cand(2, 0, 0)];
        let mut telemetry = Telemetry::new();
        let picked = sched.place_recorded(&cands, &vm(1, 1), &mut telemetry);
        assert_eq!(picked, Some(PmId(2)));
        assert_eq!(telemetry.metrics.counter("sched.filtered_out"), 1);
        assert_eq!(telemetry.metrics.counter("sched.candidates_scored"), 1);
        // The pipeline, filter, and scoring spans were all timed.
        let names: Vec<&str> = telemetry.trace.spans().iter().map(|s| s.name).collect();
        assert!(names.contains(&"sched.place"));
        assert!(names.contains(&"sched.filter"));
        assert!(names.contains(&"sched.select"));
        assert!(telemetry.metrics.histogram("sched.select").is_some());
        assert!(telemetry.metrics.histogram("sched.filter").is_some());
    }

    #[test]
    fn scheduler_pipeline_filters_then_scores() {
        use crate::filters::{AntiAffinityFilter, MaxVmsFilter};
        let sched = Scheduler::new(PlacementPolicy::FirstFit)
            .with_filter(AntiAffinityFilter::excluding([PmId(1)]))
            .with_filter(MaxVmsFilter { max_vms: 5 });
        assert_eq!(sched.filter_names(), vec!["anti-affinity", "max-vms"]);
        let mut crowded = cand(0, 4, 4);
        crowded.vms = 9;
        let cands = vec![crowded, cand(1, 0, 0), cand(2, 0, 0)];
        // PM 0 is over the density cap, PM 1 is anti-affine: PM 2 wins.
        assert_eq!(sched.place(&cands, &vm(1, 1)), Some(PmId(2)));
        // All filtered out -> None.
        let cands = vec![crowded, cand(1, 0, 0)];
        assert_eq!(sched.place(&cands, &vm(1, 1)), None);
    }
}
