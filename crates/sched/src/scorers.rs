//! Soft-constraint scorers.

use slackvm_model::{AllocView, PmConfig, VmSpec};

use crate::progress::{progress_score, ProgressConfig};

/// A soft-constraint scoring rule: higher is better. Scorers only see the
/// pure `(config, alloc, vm)` triple — exactly the information a cloud
/// control plane gathers from local schedulers.
pub trait Scorer: Send + Sync {
    /// Scores deploying `vm` on a PM with the given config and current
    /// allocation. All candidates passed to a scorer already satisfy the
    /// hard constraints.
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64;

    /// Scorer name, for reports.
    fn name(&self) -> &'static str;
}

/// The paper's Algorithm 2 scorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgressScorer {
    /// Ablation knobs (defaults reproduce the paper).
    pub knobs: ProgressConfig,
}

impl ProgressScorer {
    /// The paper-exact scorer.
    pub fn paper() -> Self {
        ProgressScorer {
            knobs: ProgressConfig::default(),
        }
    }
}

impl Scorer for ProgressScorer {
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64 {
        progress_score(config, alloc, vm, self.knobs)
    }

    fn name(&self) -> &'static str {
        "progress"
    }
}

/// Classic Best-Fit: prefer the PM that would be left with the *least*
/// normalized headroom — consolidates aggressively on the fullest
/// fitting PM.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitScorer;

impl Scorer for BestFitScorer {
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64 {
        let next = alloc.with_vm(vm);
        let cpu_left = next.unallocated_cpu_share(config);
        let mem_left = next.unallocated_mem_share(config);
        -(cpu_left + mem_left)
    }

    fn name(&self) -> &'static str {
        "best-fit"
    }
}

/// Classic Worst-Fit: prefer the *emptiest* PM — spreads load, trading
/// packing density for headroom.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstFitScorer;

impl Scorer for WorstFitScorer {
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64 {
        let next = alloc.with_vm(vm);
        let cpu_left = next.unallocated_cpu_share(config);
        let mem_left = next.unallocated_mem_share(config);
        cpu_left + mem_left
    }

    fn name(&self) -> &'static str {
        "worst-fit"
    }
}

/// Dot-product heuristic for vector bin packing (Panigrahy et al.,
/// "Heuristics for Vector Bin Packing" — the paper's reference \[25\]):
/// prefer the host whose *remaining-capacity vector* aligns best with
/// the VM's demand vector, both normalized per dimension.
///
/// Like the progress scorer, it exploits complementarity — a CPU-heavy
/// host headroom attracts CPU-light VMs — but through alignment rather
/// than ratio distance, making it a natural literature baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DotProductScorer;

impl Scorer for DotProductScorer {
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64 {
        let head = alloc.headroom(config);
        let hc = head.cpu.0 as f64 / config.cpu_capacity().0 as f64;
        let hm = head.mem_mib as f64 / config.mem_mib as f64;
        let dc = vm.physical_cpu().0 as f64 / config.cpu_capacity().0 as f64;
        let dm = vm.mem_mib() as f64 / config.mem_mib as f64;
        hc * dc + hm * dm
    }

    fn name(&self) -> &'static str {
        "dot-product"
    }
}

/// L2 norm-based greedy for vector bin packing (also from reference
/// \[25\]): prefer the host minimizing the squared norm of the residual
/// capacity after placement — it drives individual dimensions to zero
/// together.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormBasedGreedyScorer;

impl Scorer for NormBasedGreedyScorer {
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64 {
        let next = alloc.with_vm(vm);
        let rc = next.unallocated_cpu_share(config);
        let rm = next.unallocated_mem_share(config);
        -(rc * rc + rm * rm)
    }

    fn name(&self) -> &'static str {
        "norm-greedy"
    }
}

/// Default weight of the Best-Fit consolidation term combined with the
/// progress scorer (see [`CompositeScorer::progress_with_consolidation`]).
///
/// The progress score produces many exact ties (every balanced machine
/// scores 0 for a balanced VM); a light consolidation bias resolves them
/// towards the fullest machine, which is what production scoring stacks
/// do ("alongside their others criteria", paper §VII-B). 0.15 reproduces
/// the paper's headline savings most closely.
pub const DEFAULT_CONSOLIDATION_WEIGHT: f64 = 0.15;

/// A weighted sum of scorers — how production control planes combine
/// the SlackVM metric with their existing rules (paper §VII-B: "Cloud
/// providers may guide workload packing by adjusting the weight of our
/// metric in their scoring mechanism, alongside their others criteria").
pub struct CompositeScorer {
    parts: Vec<(f64, Box<dyn Scorer>)>,
    name: &'static str,
}

impl CompositeScorer {
    /// Builds a composite from `(weight, scorer)` parts.
    pub fn new(name: &'static str, parts: Vec<(f64, Box<dyn Scorer>)>) -> Self {
        CompositeScorer { parts, name }
    }

    /// The paper's progress metric combined with a light consolidation
    /// bias: the progress score decides, and Best-Fit breaks its many
    /// exact ties (e.g. single-level workloads where every candidate
    /// scores 0) towards the fullest machine instead of spreading.
    pub fn progress_with_consolidation(consolidation_weight: f64) -> Self {
        CompositeScorer::new(
            "progress+bestfit",
            vec![
                (1.0, Box::new(ProgressScorer::paper())),
                (consolidation_weight, Box::new(BestFitScorer)),
            ],
        )
    }
}

impl Scorer for CompositeScorer {
    fn score(&self, config: &PmConfig, alloc: &AllocView, vm: &VmSpec) -> f64 {
        self.parts
            .iter()
            .map(|(w, s)| w * s.score(config, alloc, vm))
            .sum()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, Millicores, OversubLevel};

    fn cfg() -> PmConfig {
        PmConfig::simulation_host()
    }

    fn vm(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::PREMIUM)
    }

    fn alloc(cores: u32, mem_gib: u64) -> AllocView {
        AllocView::new(Millicores::from_cores(cores), gib(mem_gib))
    }

    #[test]
    fn best_fit_prefers_fuller_pm() {
        let s = BestFitScorer;
        let v = vm(2, 8);
        let full = s.score(&cfg(), &alloc(24, 96), &v);
        let empty = s.score(&cfg(), &alloc(2, 8), &v);
        assert!(full > empty);
    }

    #[test]
    fn worst_fit_prefers_emptier_pm() {
        let s = WorstFitScorer;
        let v = vm(2, 8);
        let full = s.score(&cfg(), &alloc(24, 96), &v);
        let empty = s.score(&cfg(), &alloc(2, 8), &v);
        assert!(empty > full);
    }

    #[test]
    fn best_and_worst_fit_are_opposites() {
        let v = vm(4, 4);
        let a = alloc(10, 40);
        assert_eq!(
            BestFitScorer.score(&cfg(), &a, &v),
            -WorstFitScorer.score(&cfg(), &a, &v)
        );
    }

    #[test]
    fn dot_product_prefers_complementary_headroom() {
        let s = DotProductScorer;
        // Host A: plenty of CPU headroom, little memory; host B the
        // converse. A CPU-heavy VM aligns with A.
        let a = alloc(4, 112); // headroom 28 cores / 16 GiB
        let b = alloc(28, 16); // headroom 4 cores / 112 GiB
        let cpu_vm = vm(8, 2);
        let mem_vm = vm(1, 32);
        assert!(s.score(&cfg(), &a, &cpu_vm) > s.score(&cfg(), &b, &cpu_vm));
        assert!(s.score(&cfg(), &b, &mem_vm) > s.score(&cfg(), &a, &mem_vm));
        assert_eq!(s.name(), "dot-product");
    }

    #[test]
    fn norm_greedy_drives_residuals_to_zero() {
        let s = NormBasedGreedyScorer;
        let v = vm(2, 8);
        // Fuller host leaves a smaller residual norm: preferred.
        assert!(s.score(&cfg(), &alloc(28, 112), &v) > s.score(&cfg(), &alloc(2, 8), &v));
        // A perfectly-emptied host scores the maximum (0).
        let full_fit = alloc(30, 120);
        assert!((s.score(&cfg(), &full_fit, &v) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn composite_weights_sum() {
        let c = CompositeScorer::new(
            "both",
            vec![
                (1.0, Box::new(BestFitScorer)),
                (1.0, Box::new(WorstFitScorer)),
            ],
        );
        // Equal opposite weights cancel exactly.
        let v = vm(2, 4);
        let a = alloc(8, 16);
        assert_eq!(c.score(&cfg(), &a, &v), 0.0);
        assert_eq!(c.name(), "both");
    }

    #[test]
    fn consolidation_composite_breaks_progress_ties_towards_full_pm() {
        let c = CompositeScorer::progress_with_consolidation(0.05);
        let v = vm(2, 8); // ratio 4 = target: progress 0 on balanced PMs
        let fuller = alloc(16, 64);
        let emptier = alloc(4, 16);
        assert!(c.score(&cfg(), &fuller, &v) > c.score(&cfg(), &emptier, &v));
        // The progress term still dominates a real complementarity gap.
        let cpu_heavy_pm = alloc(16, 16); // ratio 1
        let mem_vm = vm(1, 12);
        assert!(c.score(&cfg(), &cpu_heavy_pm, &mem_vm) > c.score(&cfg(), &fuller, &mem_vm));
    }

    #[test]
    fn progress_scorer_delegates_to_algorithm2() {
        let s = ProgressScorer::paper();
        let a = alloc(8, 16); // CPU-heavy (ratio 2)
        let complementary = vm(1, 8);
        assert!(s.score(&cfg(), &a, &complementary) > 0.0);
        assert_eq!(s.name(), "progress");
    }
}
