//! Paper Algorithm 2: progress towards the target M/C ratio.

use serde::{Deserialize, Serialize};

use slackvm_model::{AllocView, PmConfig, VmSpec};

/// Ablation knobs for [`progress_score`]. Defaults reproduce the paper's
/// algorithm exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressConfig {
    /// Lines 12–15: amplify negative progress by `1 + load` so heavily
    /// loaded PMs are avoided for unbalancing deployments (keeping light
    /// PMs available to counterbalance later).
    pub negative_load_factor: bool,
    /// Line 6: treat an idle PM as sitting exactly on its target ratio,
    /// which penalizes it by the VM's own imbalance and thereby prefers
    /// consolidating onto already-running PMs. When disabled, idle PMs
    /// score a neutral 0.
    pub empty_pm_is_ideal: bool,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig {
            negative_load_factor: true,
            empty_pm_is_ideal: true,
        }
    }
}

/// Computes Algorithm 2: how much closer (positive) or farther
/// (negative) the PM's allocated M/C ratio moves to its hardware target
/// ratio if `vm` is deployed on it.
///
/// CPU quantities are *physical*: the VM contributes
/// `vcpus / oversubscription-level` cores, so one formula accommodates
/// every level (paper §VI). Ratios are in GiB per core.
///
/// ```
/// use slackvm_model::{gib, AllocView, Millicores, OversubLevel, PmConfig, VmSpec};
/// use slackvm_sched::{progress_score, ProgressConfig};
///
/// let pm = PmConfig::simulation_host(); // 32 cores / 128 GiB, target 4.0
/// let alloc = AllocView::new(Millicores::from_cores(8), gib(16)); // ratio 2: CPU-heavy
/// // A memory-heavy VM moves the PM towards its target: positive progress.
/// let vm = VmSpec::of(1, gib(8), OversubLevel::PREMIUM);
/// assert!(progress_score(&pm, &alloc, &vm, ProgressConfig::default()) > 0.0);
/// ```
pub fn progress_score(
    config: &PmConfig,
    alloc: &AllocView,
    vm: &VmSpec,
    knobs: ProgressConfig,
) -> f64 {
    let target = config.target_ratio().gib_per_core();
    let vm_cpu = vm.physical_cpu().as_cores_f64();
    let vm_mem = vm.mem_mib() as f64 / 1024.0;
    let alloc_cpu = alloc.cpu.as_cores_f64();
    let alloc_mem = alloc.mem_mib as f64 / 1024.0;

    let (current_delta, next_ratio) = if alloc_cpu > 0.0 {
        (
            ratio_distance(config, alloc),
            (alloc_mem + vm_mem) / (alloc_cpu + vm_cpu),
        )
    } else {
        if !knobs.empty_pm_is_ideal {
            return 0.0;
        }
        // Line 6: an idle PM sits exactly on its target ratio.
        (0.0, vm_mem / vm_cpu)
    };

    let next_delta = (next_ratio - target).abs();
    let mut progress = current_delta - next_delta;
    if progress < 0.0 && knobs.negative_load_factor {
        let factor = 1.0 + alloc_cpu / config.cores as f64;
        progress *= factor;
    }
    progress
}

/// Absolute distance between the PM's *allocated* M/C ratio and its
/// hardware target ratio, in GiB per core — the quantity Algorithm 2
/// drives towards zero with every placement. An idle PM is defined to
/// sit on its target (distance zero), the `empty_pm_is_ideal` reading
/// of line 6. The fragmentation scorer in `slackvm-rebalance` uses this
/// as its per-PM imbalance metric so consolidation and admission agree
/// on what "balanced" means.
pub fn ratio_distance(config: &PmConfig, alloc: &AllocView) -> f64 {
    let cpu = alloc.cpu.as_cores_f64();
    if cpu <= 0.0 {
        return 0.0;
    }
    let target = config.target_ratio().gib_per_core();
    let mem = alloc.mem_mib as f64 / 1024.0;
    (mem / cpu - target).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slackvm_model::{gib, Millicores, OversubLevel};

    fn cfg() -> PmConfig {
        PmConfig::simulation_host() // 32 cores / 128 GiB, target 4.0
    }

    fn vm(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    fn alloc(cores: u32, mem_gib: u64) -> AllocView {
        AllocView::new(Millicores::from_cores(cores), gib(mem_gib))
    }

    #[test]
    fn complementary_vm_scores_positive() {
        // PM at ratio 2 (CPU-heavy); a memory-heavy VM (1 core, 8 GiB ->
        // ratio 8) pulls it towards 4.
        let a = alloc(8, 16);
        let v = vm(1, 8, 1);
        let s = progress_score(&cfg(), &a, &v, ProgressConfig::default());
        assert!(s > 0.0, "score {s}");
    }

    #[test]
    fn aggravating_vm_scores_negative() {
        // PM at ratio 2 (CPU-heavy); a CPU-heavy VM (4 cores, 4 GiB ->
        // ratio 1) pushes it farther from 4.
        let a = alloc(8, 16);
        let v = vm(4, 4, 1);
        let s = progress_score(&cfg(), &a, &v, ProgressConfig::default());
        assert!(s < 0.0, "score {s}");
    }

    #[test]
    fn matches_hand_computation() {
        // alloc = 10 cores / 20 GiB (ratio 2); vm = 2 cores / 12 GiB.
        // next = 32/12 ≈ 2.667. currentΔ = 2, nextΔ ≈ 1.333,
        // progress ≈ 0.667.
        let a = alloc(10, 20);
        let v = vm(2, 12, 1);
        let s = progress_score(&cfg(), &a, &v, ProgressConfig::default());
        assert!((s - (2.0 - (4.0 - 32.0 / 12.0))).abs() < 1e-9, "score {s}");
    }

    #[test]
    fn negative_factor_amplifies_on_loaded_pm() {
        let v = vm(4, 4, 1); // aggravating on a CPU-heavy PM
        let light = alloc(4, 8); // ratio 2, load 4/32
        let heavy = alloc(16, 32); // ratio 2, load 16/32
        let knobs = ProgressConfig::default();
        let s_light = progress_score(&cfg(), &light, &v, knobs);
        let s_heavy = progress_score(&cfg(), &heavy, &v, knobs);
        assert!(s_light < 0.0 && s_heavy < 0.0);
        // raw deltas: light |2->?|: next=(8+4)/(4+4)=1.5, Δ goes 2->2.5,
        // raw -0.5 ×(1+0.125)= -0.5625. heavy: next=(32+4)/(16+4)=1.8,
        // Δ 2->2.2, raw -0.2 ×1.5 = -0.3. The *factor* amplified both;
        // verify the factor itself by comparing with knobs off.
        let off = ProgressConfig {
            negative_load_factor: false,
            ..knobs
        };
        assert!(progress_score(&cfg(), &light, &v, off) > s_light);
        assert!(progress_score(&cfg(), &heavy, &v, off) > s_heavy);
    }

    #[test]
    fn empty_pm_is_penalized_by_vm_imbalance() {
        let knobs = ProgressConfig::default();
        let empty = AllocView::EMPTY;
        // A perfectly balanced VM (ratio 4) on an empty PM: progress 0.
        let balanced = vm(1, 4, 1);
        assert_eq!(progress_score(&cfg(), &empty, &balanced, knobs), 0.0);
        // An unbalanced VM: negative (prefers going to a loaded PM that
        // it would rebalance).
        let skewed = vm(4, 4, 1);
        assert!(progress_score(&cfg(), &empty, &skewed, knobs) < 0.0);
        // Ablation: neutral zero when the rule is off.
        let off = ProgressConfig {
            empty_pm_is_ideal: false,
            ..knobs
        };
        assert_eq!(progress_score(&cfg(), &empty, &skewed, off), 0.0);
    }

    #[test]
    fn oversubscription_changes_the_vms_physical_ratio() {
        // The same 2 vCPU / 8 GiB VM: at 1:1 it is memory-heavy (ratio
        // 4 = target, progress towards target on a CPU-heavy PM);
        // at 3:1 it is extremely memory-heavy (ratio ~12).
        let a = alloc(8, 16); // ratio 2
        let knobs = ProgressConfig::default();
        let s1 = progress_score(&cfg(), &a, &vm(2, 8, 1), knobs);
        let s3 = progress_score(&cfg(), &a, &vm(2, 8, 3), knobs);
        assert!(s1 > 0.0 && s3 > 0.0);
        // The 3:1 variant adds almost no CPU, so it moves the ratio more
        // per core but less in absolute mem; just check both help and
        // that they differ.
        assert_ne!(s1, s3);
    }

    #[test]
    fn perfectly_balanced_pm_cannot_improve() {
        let a = alloc(16, 64); // exactly ratio 4
        let knobs = ProgressConfig::default();
        for v in [vm(1, 1, 1), vm(1, 8, 1), vm(2, 8, 2)] {
            let s = progress_score(&cfg(), &a, &v, knobs);
            assert!(s <= 1e-12, "balanced PM produced positive progress {s}");
        }
        // A balanced VM keeps it balanced: progress exactly 0.
        assert!(progress_score(&cfg(), &a, &vm(1, 4, 1), knobs).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn progress_is_bounded_by_current_delta(
            acores in 1u32..32, amem in 1u64..128,
            vcpus in 1u32..8, vmem in 1u64..32, level in 1u32..=3,
        ) {
            // progress = currentΔ - nextΔ <= currentΔ (nextΔ >= 0), and the
            // negative branch only multiplies by a factor in [1, 2].
            let a = alloc(acores, amem);
            let v = vm(vcpus, vmem, level);
            let s = progress_score(&cfg(), &a, &v, ProgressConfig::default());
            let current_delta = (a.mc_ratio().gib_per_core() - 4.0).abs();
            prop_assert!(s <= current_delta + 1e-9);
        }

        #[test]
        fn score_is_finite_for_all_inputs(
            acores in 0u32..32, amem in 0u64..128,
            vcpus in 1u32..16, vmem in 1u64..64, level in 1u32..=4,
        ) {
            let a = alloc(acores, amem);
            let v = vm(vcpus, vmem, level);
            let s = progress_score(&cfg(), &a, &v, ProgressConfig::default());
            prop_assert!(s.is_finite());
        }
    }
}
