//! Hard-constraint filters — the first stage of the control-plane
//! pipeline ("filtering candidates from the cluster based on hard
//! constraints", paper §II-B).

use std::collections::BTreeSet;

use slackvm_model::{PmId, VmSpec};

use crate::pipeline::Candidate;

/// A hard constraint: a candidate failing any filter is not scored.
pub trait Filter: Send + Sync {
    /// Whether `candidate` may host `vm` at all.
    fn accepts(&self, candidate: &Candidate, vm: &VmSpec) -> bool;

    /// Filter name, for reports.
    fn name(&self) -> &'static str;
}

/// Capacity filter over the control-plane's allocation view: the VM's
/// physical consumption must fit the candidate's headroom.
///
/// The host's own `can_host` remains the authoritative check (it also
/// knows about whole-core vNode growth); this filter reproduces the
/// *control-plane-side* pre-filter that avoids querying unfit hosts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceFilter;

impl Filter for ResourceFilter {
    fn accepts(&self, candidate: &Candidate, vm: &VmSpec) -> bool {
        let next = candidate.alloc.with_vm(vm);
        next.cpu <= candidate.config.cpu_capacity() && next.mem_mib <= candidate.config.mem_mib
    }

    fn name(&self) -> &'static str {
        "resource"
    }
}

/// Density cap: at most `max_vms` VMs per host (a common operational
/// blast-radius limit).
#[derive(Debug, Clone, Copy)]
pub struct MaxVmsFilter {
    /// Maximum VMs a host may carry.
    pub max_vms: usize,
}

impl Filter for MaxVmsFilter {
    fn accepts(&self, candidate: &Candidate, _vm: &VmSpec) -> bool {
        candidate.vms < self.max_vms
    }

    fn name(&self) -> &'static str {
        "max-vms"
    }
}

/// Anti-affinity: never place on the listed hosts (e.g. the hosts already
/// carrying the tenant's replicas).
#[derive(Debug, Clone, Default)]
pub struct AntiAffinityFilter {
    /// Excluded hosts.
    pub excluded: BTreeSet<PmId>,
}

impl AntiAffinityFilter {
    /// Builds the filter from any id collection.
    pub fn excluding(ids: impl IntoIterator<Item = PmId>) -> Self {
        AntiAffinityFilter {
            excluded: ids.into_iter().collect(),
        }
    }
}

impl Filter for AntiAffinityFilter {
    fn accepts(&self, candidate: &Candidate, _vm: &VmSpec) -> bool {
        !self.excluded.contains(&candidate.id)
    }

    fn name(&self) -> &'static str {
        "anti-affinity"
    }
}

/// Load ceiling: refuse hosts whose CPU allocation already exceeds a
/// fraction of capacity (keeps headroom for bursts on premium pools).
#[derive(Debug, Clone, Copy)]
pub struct CpuCeilingFilter {
    /// Maximum allocated CPU fraction in `[0, 1]`.
    pub ceiling: f64,
}

impl Filter for CpuCeilingFilter {
    fn accepts(&self, candidate: &Candidate, _vm: &VmSpec) -> bool {
        candidate.alloc.cpu_load_fraction(&candidate.config) <= self.ceiling
    }

    fn name(&self) -> &'static str {
        "cpu-ceiling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, AllocView, Millicores, OversubLevel, PmConfig};

    fn cand(id: u32, cores: u32, mem_gib: u64, vms: usize) -> Candidate {
        Candidate {
            id: PmId(id),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(cores), gib(mem_gib)),
            vms,
        }
    }

    fn vm(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::PREMIUM)
    }

    #[test]
    fn resource_filter_checks_both_dimensions() {
        let f = ResourceFilter;
        assert!(f.accepts(&cand(0, 30, 120, 1), &vm(2, 8)));
        assert!(!f.accepts(&cand(0, 31, 1, 1), &vm(2, 1))); // CPU short
        assert!(!f.accepts(&cand(0, 1, 127, 1), &vm(1, 2))); // mem short
    }

    #[test]
    fn max_vms_filter() {
        let f = MaxVmsFilter { max_vms: 3 };
        assert!(f.accepts(&cand(0, 0, 0, 2), &vm(1, 1)));
        assert!(!f.accepts(&cand(0, 0, 0, 3), &vm(1, 1)));
    }

    #[test]
    fn anti_affinity_filter() {
        let f = AntiAffinityFilter::excluding([PmId(1), PmId(3)]);
        assert!(f.accepts(&cand(0, 0, 0, 0), &vm(1, 1)));
        assert!(!f.accepts(&cand(1, 0, 0, 0), &vm(1, 1)));
        assert!(!f.accepts(&cand(3, 0, 0, 0), &vm(1, 1)));
    }

    #[test]
    fn cpu_ceiling_filter() {
        let f = CpuCeilingFilter { ceiling: 0.5 };
        assert!(f.accepts(&cand(0, 16, 0, 0), &vm(1, 1))); // exactly 50%
        assert!(!f.accepts(&cand(0, 17, 0, 0), &vm(1, 1)));
    }
}
