//! # slackvm-sched
//!
//! The SlackVM *global scheduler* layer (paper §VI).
//!
//! Cloud control planes pick a PM for each deployment by **filtering**
//! candidates on hard constraints and **scoring** the survivors on soft
//! ones. SlackVM does not replace that pipeline; it contributes one new
//! scorer — the *progress towards the target Memory-per-Core ratio*
//! (paper Algorithm 2, [`progress::progress_score`]) — that makes the
//! scheduler prefer PMs whose resource-ratio imbalance the candidate VM
//! would counteract.
//!
//! This crate provides:
//! - [`progress`]: Algorithm 2 as a pure function plus knobs for the
//!   ablation studies (negative-score load factor on/off, empty-PM-as-
//!   ideal-ratio rule on/off);
//! - [`scorers`]: the [`scorers::Scorer`] trait, the
//!   [`scorers::ProgressScorer`], and classic fit-family scorers used as
//!   baselines;
//! - [`pipeline`]: candidate views and the placement policies
//!   (First-Fit and score-based selection) used by the simulator;
//! - [`index`]: the incremental placement index — dirty-tracked per-PM
//!   candidate state with conservative admission buckets, so replay
//!   deployments stop rescanning the whole fleet per event;
//! - [`vcluster`]: the vCluster abstraction — a per-level view over a
//!   shared pool of SlackVM workers.

#![warn(missing_docs)]

pub mod filters;
pub mod index;
pub mod pipeline;
pub mod progress;
pub mod scorers;
pub mod vcluster;

pub use filters::{AntiAffinityFilter, CpuCeilingFilter, Filter, MaxVmsFilter, ResourceFilter};
pub use index::{AdmissionKey, CandidateIndex, GatherStats, IndexMode};
pub use pipeline::{Candidate, PlacementPolicy, Scheduler, POLICY_NAMES};
pub use progress::{progress_score, ratio_distance, ProgressConfig};
pub use scorers::{
    BestFitScorer, CompositeScorer, DotProductScorer, NormBasedGreedyScorer, ProgressScorer,
    Scorer, WorstFitScorer, DEFAULT_CONSOLIDATION_WEIGHT,
};
pub use vcluster::VCluster;
