//! The vCluster abstraction (paper §VI).
//!
//! A *vCluster* groups all vNodes of one oversubscription level across a
//! shared pool of PMs: it is what the control plane addresses when a VM
//! of that tier arrives, playing the role a dedicated physical cluster
//! plays in conventional deployments. Unlike a physical cluster, its
//! hosts — the vNodes — resize dynamically.
//!
//! The simulator updates each vCluster after every deploy/remove; this
//! type is the bookkeeping and the reporting surface (per-tier cores,
//! vCPUs, memory, effective oversubscription pressure).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use slackvm_model::{OversubLevel, PmId};

/// A per-PM summary of one level's vNode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VClusterMember {
    /// Cores in the vNode's span.
    pub cores: u32,
    /// vCPUs exposed by the vNode.
    pub vcpus: u32,
    /// Memory allocated by the vNode's VMs (MiB).
    pub mem_mib: u64,
    /// VM count.
    pub vms: usize,
}

/// All vNodes of one oversubscription level across a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VCluster {
    level: OversubLevel,
    members: BTreeMap<PmId, VClusterMember>,
}

impl VCluster {
    /// An empty vCluster for `level`.
    pub fn new(level: OversubLevel) -> Self {
        VCluster {
            level,
            members: BTreeMap::new(),
        }
    }

    /// The level this vCluster aggregates.
    pub fn level(&self) -> OversubLevel {
        self.level
    }

    /// Records (or refreshes) a PM's vNode summary. A summary with zero
    /// VMs removes the member — the vNode dissolved.
    pub fn update(&mut self, pm: PmId, member: VClusterMember) {
        if member.vms == 0 {
            self.members.remove(&pm);
        } else {
            self.members.insert(pm, member);
        }
    }

    /// Drops a PM from the vCluster (e.g. the machine left the pool).
    pub fn forget(&mut self, pm: PmId) {
        self.members.remove(&pm);
    }

    /// PMs currently contributing a vNode, ascending.
    pub fn member_ids(&self) -> impl Iterator<Item = PmId> + '_ {
        self.members.keys().copied()
    }

    /// A PM's summary, if it contributes a vNode.
    pub fn member(&self, pm: PmId) -> Option<&VClusterMember> {
        self.members.get(&pm)
    }

    /// Number of contributing PMs.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Total VMs in the tier.
    pub fn total_vms(&self) -> usize {
        self.members.values().map(|m| m.vms).sum()
    }

    /// Total vCPUs exposed by the tier.
    pub fn total_vcpus(&self) -> u32 {
        self.members.values().map(|m| m.vcpus).sum()
    }

    /// Total cores pinned by the tier.
    pub fn total_cores(&self) -> u32 {
        self.members.values().map(|m| m.cores).sum()
    }

    /// Total memory allocated by the tier (MiB).
    pub fn total_mem_mib(&self) -> u64 {
        self.members.values().map(|m| m.mem_mib).sum()
    }

    /// Effective tier-wide vCPUs-per-core pressure; at most
    /// `level.ratio()` by the vNode invariant.
    pub fn effective_pressure(&self) -> f64 {
        let cores = self.total_cores();
        if cores == 0 {
            0.0
        } else {
            self.total_vcpus() as f64 / cores as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(cores: u32, vcpus: u32, mem_mib: u64, vms: usize) -> VClusterMember {
        VClusterMember {
            cores,
            vcpus,
            mem_mib,
            vms,
        }
    }

    #[test]
    fn update_and_totals() {
        let mut vc = VCluster::new(OversubLevel::of(3));
        vc.update(PmId(0), member(2, 6, 4096, 3));
        vc.update(PmId(1), member(1, 2, 1024, 1));
        assert_eq!(vc.num_members(), 2);
        assert_eq!(vc.total_vms(), 4);
        assert_eq!(vc.total_vcpus(), 8);
        assert_eq!(vc.total_cores(), 3);
        assert_eq!(vc.total_mem_mib(), 5120);
        assert!((vc.effective_pressure() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_replaces_not_accumulates() {
        let mut vc = VCluster::new(OversubLevel::of(2));
        vc.update(PmId(0), member(2, 4, 2048, 2));
        vc.update(PmId(0), member(3, 5, 3072, 3));
        assert_eq!(vc.num_members(), 1);
        assert_eq!(vc.total_vcpus(), 5);
    }

    #[test]
    fn zero_vm_summary_removes_member() {
        let mut vc = VCluster::new(OversubLevel::of(2));
        vc.update(PmId(0), member(2, 4, 2048, 2));
        vc.update(PmId(0), member(0, 0, 0, 0));
        assert_eq!(vc.num_members(), 0);
        assert_eq!(vc.effective_pressure(), 0.0);
    }

    #[test]
    fn forget_drops_member() {
        let mut vc = VCluster::new(OversubLevel::of(1));
        vc.update(PmId(3), member(4, 4, 4096, 2));
        vc.forget(PmId(3));
        assert!(vc.member(PmId(3)).is_none());
        assert_eq!(vc.member_ids().count(), 0);
    }
}
