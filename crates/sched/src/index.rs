//! The incremental placement index — per-PM candidate state kept alive
//! across events so the replay hot path no longer rescales with fleet
//! size on every deployment.
//!
//! The naive control-plane loop rebuilds a `Vec<Candidate>` over *all*
//! PMs and re-queries each host's feasibility on every single deploy,
//! which makes a week-long trace cost O(events × PMs) even though each
//! event touches exactly one PM. The [`CandidateIndex`] inverts that:
//! the cluster *upserts* the one PM an event touched (dirty-tracking)
//! and deploy-time queries read everyone else's cached state.
//!
//! # Invariants
//!
//! - One slot per opened PM, dense by [`PmId`]; a slot is *live* unless
//!   the PM was retired (host failure) — retired slots are invisible to
//!   queries until re-upserted (host repair).
//! - Every slot carries a **conservative admission headroom**: a free
//!   memory bound (exact for both host kinds — memory is never
//!   oversubscribed) and an optional free-vCPU bound (exact for
//!   single-level uniform machines; `None` for partitioned hosts, whose
//!   vNode slack can make the marginal CPU cost of a VM zero). The gate
//!   may only *under*-approximate infeasibility: a PM skipped by the
//!   gate must be provably unable to host the VM, so skipping it can
//!   never change a placement decision.
//! - Queries yield candidates in ascending [`PmId`] order, matching the
//!   naive host-iteration order byte for byte.
//!
//! # Dirty-tracking rules
//!
//! The owner must upsert a PM's slot after **every** mutation of that
//! host — deploy, remove, resize, both endpoints of a migration — and
//! retire/re-upsert it on failure/repair. Bulk mutations done behind
//! the index's back (e.g. through a raw `hosts_mut()` borrow) must
//! invalidate the whole index instead; [`CandidateIndex::clear`] plus a
//! full re-upsert pass restores consistency.

use std::collections::BTreeSet;

use slackvm_model::PmId;

use crate::pipeline::Candidate;

/// How a cluster assembles the candidate set for each deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Rebuild the candidate vector from every host on every deploy —
    /// the reference path the incremental index is differentially
    /// tested against.
    Naive,
    /// Maintain a [`CandidateIndex`] updated by dirty-tracking; only
    /// the PM an event touches is refreshed.
    #[default]
    Incremental,
}

impl IndexMode {
    /// Parses a CLI-style mode name.
    pub fn parse(raw: &str) -> Option<IndexMode> {
        match raw {
            "naive" => Some(IndexMode::Naive),
            "incremental" => Some(IndexMode::Incremental),
            _ => None,
        }
    }

    /// Mode label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IndexMode::Naive => "naive",
            IndexMode::Incremental => "incremental",
        }
    }
}

/// Conservative per-PM admission headroom, maintained by dirty-tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionKey {
    /// Free physical memory in MiB. Exact: a VM needing more memory than
    /// this can never be hosted.
    pub free_mem_mib: u64,
    /// Free vCPU capacity at the host's level, when the host kind admits
    /// a cheap exact bound; `None` disables the CPU gate.
    pub free_vcpus: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    candidate: Candidate,
    key: AdmissionKey,
    live: bool,
}

/// Statistics of one [`CandidateIndex::gather_into`] query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatherStats {
    /// Live PMs in the index when the query ran.
    pub live: usize,
    /// PMs that passed the cheap admission gate (the candidates handed
    /// to the authoritative feasibility check).
    pub admitted: usize,
}

impl GatherStats {
    /// PMs the admission gate skipped as provably infeasible.
    pub fn gate_skipped(&self) -> usize {
        self.live - self.admitted
    }
}

/// Per-PM [`Candidate`] state, bucketed by free-memory headroom.
///
/// See the [module docs](self) for the invariants and dirty-tracking
/// rules.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    slots: Vec<Option<Slot>>,
    /// Live PMs keyed by `(free_mem_mib, pm)` — the admission bucket
    /// structure: a deploy for `m` MiB range-scans `(m, 0)..`, touching
    /// only PMs with enough memory headroom.
    by_free_mem: BTreeSet<(u64, u32)>,
    /// Live-PM counts by bit-width of `free_mem_mib` — an O(1)
    /// selectivity estimate for [`gather_into`](Self::gather_into)'s
    /// choice between the dense slot scan and the bucket range scan.
    width_counts: [usize; 65],
    live: usize,
}

/// Bit-width bucket of a free-memory headroom value.
fn width_of(free_mem_mib: u64) -> usize {
    (u64::BITS - free_mem_mib.leading_zeros()) as usize
}

impl Default for CandidateIndex {
    fn default() -> Self {
        CandidateIndex {
            slots: Vec::new(),
            by_free_mem: BTreeSet::new(),
            width_counts: [0; 65],
            live: 0,
        }
    }
}

impl CandidateIndex {
    /// An empty index.
    pub fn new() -> Self {
        CandidateIndex::default()
    }

    /// Drops every slot (full invalidation).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.by_free_mem.clear();
        self.width_counts = [0; 65];
        self.live = 0;
    }

    /// Number of live (non-retired) PMs.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// The cached candidate state of a live PM.
    pub fn get(&self, pm: PmId) -> Option<&Candidate> {
        self.slots
            .get(pm.0 as usize)?
            .as_ref()
            .filter(|s| s.live)
            .map(|s| &s.candidate)
    }

    /// Inserts or refreshes a PM's slot (the dirty-tracking entry
    /// point). A previously retired PM comes back live.
    pub fn upsert(&mut self, candidate: Candidate, key: AdmissionKey) {
        let i = candidate.id.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        if let Some(old) = &self.slots[i] {
            if old.live {
                self.by_free_mem
                    .remove(&(old.key.free_mem_mib, old.candidate.id.0));
                self.width_counts[width_of(old.key.free_mem_mib)] -= 1;
                self.live -= 1;
            }
        }
        self.by_free_mem.insert((key.free_mem_mib, candidate.id.0));
        self.width_counts[width_of(key.free_mem_mib)] += 1;
        self.live += 1;
        self.slots[i] = Some(Slot {
            candidate,
            key,
            live: true,
        });
    }

    /// Retires a PM (host failure): it stops appearing in queries until
    /// re-upserted. Returns whether the PM was live.
    pub fn retire(&mut self, pm: PmId) -> bool {
        match self.slots.get_mut(pm.0 as usize).and_then(Option::as_mut) {
            Some(slot) if slot.live => {
                slot.live = false;
                self.by_free_mem.remove(&(slot.key.free_mem_mib, pm.0));
                self.width_counts[width_of(slot.key.free_mem_mib)] -= 1;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Gathers every live candidate passing the cheap admission gate
    /// for a VM needing `need_mem_mib` MiB and `need_vcpus` vCPUs into
    /// `buf` (cleared first), in ascending [`PmId`] order.
    ///
    /// The gate is conservative: a gathered candidate may still fail
    /// the host's authoritative feasibility check, but a skipped PM can
    /// never host the VM.
    ///
    /// Adaptive: when the width buckets say most of the fleet clears the
    /// memory gate, the bucket range scan would visit nearly everyone in
    /// free-memory order and then pay a sort back into id order — so the
    /// dense regime takes a straight id-ordered slot scan instead. Both
    /// paths apply the same gates and yield the same id-ordered set.
    pub fn gather_into(
        &self,
        buf: &mut Vec<Candidate>,
        need_mem_mib: u64,
        need_vcpus: u32,
    ) -> GatherStats {
        buf.clear();
        // Upper bound on gate-passers: every live PM whose headroom has
        // at least `need`'s bit-width (wider is always enough; equal
        // width may fall either side of `need`).
        let upper: usize = self.width_counts[width_of(need_mem_mib)..].iter().sum();
        if upper * 4 >= self.live {
            for slot in self.slots.iter().flatten().filter(|s| s.live) {
                if slot.key.free_mem_mib >= need_mem_mib
                    && slot.key.free_vcpus.is_none_or(|free| free >= need_vcpus)
                {
                    buf.push(slot.candidate);
                }
            }
        } else {
            for &(_, pm) in self.by_free_mem.range((need_mem_mib, 0)..) {
                let slot = self.slots[pm as usize]
                    .as_ref()
                    .expect("bucketed PMs have slots");
                if slot.key.free_vcpus.is_none_or(|free| free >= need_vcpus) {
                    buf.push(slot.candidate);
                }
            }
            buf.sort_unstable_by_key(|c| c.id);
        }
        GatherStats {
            live: self.live,
            admitted: buf.len(),
        }
    }

    /// The lowest-id live PM passing the admission gate for which
    /// `feasible` holds — the First-Fit fast path, which skips scoring
    /// entirely (First-Fit is the minimum feasible id by definition).
    pub fn first_admitted(
        &self,
        need_mem_mib: u64,
        need_vcpus: u32,
        mut feasible: impl FnMut(&Candidate) -> bool,
    ) -> Option<PmId> {
        self.slots
            .iter()
            .flatten()
            .filter(|s| {
                s.live
                    && s.key.free_mem_mib >= need_mem_mib
                    && s.key.free_vcpus.is_none_or(|free| free >= need_vcpus)
            })
            .find(|s| feasible(&s.candidate))
            .map(|s| s.candidate.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, AllocView, Millicores, PmConfig};

    fn cand(id: u32, free_mem_gib: u64, free_vcpus: Option<u32>) -> (Candidate, AdmissionKey) {
        let config = PmConfig::simulation_host();
        let used = config.mem_mib - gib(free_mem_gib);
        (
            Candidate {
                id: PmId(id),
                config,
                alloc: AllocView::new(Millicores::from_cores(4), used),
                vms: 1,
            },
            AdmissionKey {
                free_mem_mib: gib(free_mem_gib),
                free_vcpus,
            },
        )
    }

    fn index_of(entries: &[(Candidate, AdmissionKey)]) -> CandidateIndex {
        let mut index = CandidateIndex::new();
        for (c, k) in entries {
            index.upsert(*c, *k);
        }
        index
    }

    #[test]
    fn gather_orders_by_id_and_applies_both_gates() {
        let index = index_of(&[
            cand(3, 64, None),
            cand(0, 1, None),     // too little memory
            cand(2, 64, Some(2)), // too few vCPUs
            cand(1, 64, Some(8)),
        ]);
        let mut buf = Vec::new();
        let stats = index.gather_into(&mut buf, gib(32), 4);
        let ids: Vec<u32> = buf.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(stats.live, 4);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.gate_skipped(), 2);
    }

    #[test]
    fn upsert_refreshes_the_memory_bucket() {
        let mut index = index_of(&[cand(0, 64, None)]);
        let mut buf = Vec::new();
        assert_eq!(index.gather_into(&mut buf, gib(32), 1).admitted, 1);
        // The PM fills up: same slot, new key — the old bucket entry
        // must disappear.
        let (c, k) = cand(0, 2, None);
        index.upsert(c, k);
        assert_eq!(index.live_len(), 1);
        assert_eq!(index.gather_into(&mut buf, gib(32), 1).admitted, 0);
        assert_eq!(index.gather_into(&mut buf, gib(1), 1).admitted, 1);
    }

    #[test]
    fn retire_and_reupsert_roundtrip() {
        let mut index = index_of(&[cand(0, 64, None), cand(1, 64, None)]);
        assert!(index.retire(PmId(0)));
        assert!(!index.retire(PmId(0)), "retire is idempotent");
        assert!(!index.retire(PmId(9)), "unknown PMs retire to nothing");
        assert_eq!(index.live_len(), 1);
        let mut buf = Vec::new();
        let stats = index.gather_into(&mut buf, 0, 0);
        assert_eq!(stats.admitted, 1);
        assert_eq!(buf[0].id, PmId(1));
        assert!(index.get(PmId(0)).is_none());
        // Repair: the PM is upserted back and queries see it again.
        let (c, k) = cand(0, 64, None);
        index.upsert(c, k);
        assert_eq!(index.gather_into(&mut buf, 0, 0).admitted, 2);
    }

    #[test]
    fn first_admitted_takes_lowest_feasible_id() {
        let index = index_of(&[cand(2, 64, None), cand(0, 1, None), cand(1, 64, None)]);
        // PM 0 fails the gate; PM 1 is vetoed by the authoritative
        // check; PM 2 wins.
        let picked = index.first_admitted(gib(16), 1, |c| c.id != PmId(1));
        assert_eq!(picked, Some(PmId(2)));
        assert_eq!(index.first_admitted(gib(512), 1, |_| true), None);
    }

    #[test]
    fn dense_and_selective_gathers_agree_with_the_reference_filter() {
        // Headrooms spread over many width buckets so small needs take
        // the dense scan and large needs the selective range scan.
        let entries: Vec<_> = (0..64u32).map(|i| cand(i, 1u64 << (i % 8), None)).collect();
        let mut index = index_of(&entries);
        index.retire(PmId(7));
        let mut buf = Vec::new();
        for need_gib in [0u64, 1, 2, 5, 17, 33, 65, 129] {
            let need = gib(need_gib);
            let stats = index.gather_into(&mut buf, need, 0);
            let expect: Vec<u32> = entries
                .iter()
                .filter(|(c, k)| c.id != PmId(7) && k.free_mem_mib >= need)
                .map(|(c, _)| c.id.0)
                .collect();
            let got: Vec<u32> = buf.iter().map(|c| c.id.0).collect();
            assert_eq!(got, expect, "need {need_gib} GiB");
            assert_eq!(stats.admitted, expect.len());
            assert_eq!(stats.live, 63);
        }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(IndexMode::parse("naive"), Some(IndexMode::Naive));
        assert_eq!(
            IndexMode::parse("incremental"),
            Some(IndexMode::Incremental)
        );
        assert_eq!(IndexMode::parse("bogus"), None);
        assert_eq!(IndexMode::default().name(), "incremental");
    }
}
