//! The service-facing durability handle: one [`ShardDurable`] per
//! shard worker, owning that shard's journal writer and snapshot
//! cadence.
//!
//! The worker's contract is strict write-ahead ordering: it calls
//! [`ShardDurable::append`] for every committed decision in a batch and
//! [`ShardDurable::commit`] *before* releasing any of the batch's
//! replies — a client can only observe a decision after it is durable
//! (to the extent the configured fsync policy promises).

use std::path::PathBuf;

use slackvm_sim::DeploymentModel;
use slackvm_telemetry::FsyncPolicy;

use crate::error::DurableError;
use crate::recovery::{recover_shard, shard_dir, RecoveryReport};
use crate::snapshot::{prune_snapshots, write_snapshot};
use crate::wal::{CommitStamp, WalOp, WalOutcome, WalRecord, WalWriter, WAL_FILE};

/// How a service persists its decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableOptions {
    /// Root state directory (holds `MANIFEST` and `shard-N/`).
    pub dir: PathBuf,
    /// When journal batches become durability points.
    pub fsync: FsyncPolicy,
    /// Snapshot after this many appended records (per shard).
    pub snapshot_every: u64,
    /// Snapshots kept per shard (oldest pruned first, newest always
    /// kept).
    pub retain: usize,
}

impl DurableOptions {
    /// Durability rooted at `dir` with the safe defaults: fsync every
    /// batch, snapshot every 8192 records, keep 3 snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::Every,
            snapshot_every: 8192,
            retain: 3,
        }
    }
}

/// One shard's durable state: journal writer plus snapshot cadence.
pub struct ShardDurable {
    dir: PathBuf,
    wal: WalWriter,
    next_seq: u64,
    since_snapshot: u64,
    snapshot_every: u64,
    retain: usize,
}

impl ShardDurable {
    /// Opens shard `shard`'s state under `opts.dir`, recovering `model`
    /// from snapshot + journal tail (both may be absent — a fresh shard
    /// recovers to genesis), truncating any torn journal tail, and
    /// positioning the writer after the last committed record.
    pub fn open(
        opts: &DurableOptions,
        shard: u32,
        model: &mut DeploymentModel,
    ) -> Result<(ShardDurable, RecoveryReport), DurableError> {
        let dir = shard_dir(&opts.dir, shard);
        std::fs::create_dir_all(&dir).map_err(DurableError::io(dir.display().to_string()))?;
        let report = recover_shard(&opts.dir, shard, model)?;
        let wal = WalWriter::open(&dir.join(WAL_FILE), report.wal_bytes, opts.fsync)?;
        Ok((
            ShardDurable {
                dir,
                wal,
                next_seq: report.last_seq + 1,
                since_snapshot: report.records_replayed,
                snapshot_every: opts.snapshot_every.max(1),
                retain: opts.retain,
            },
            report,
        ))
    }

    /// Journals one committed decision; returns the frame size in
    /// bytes. Not durable until [`commit`](Self::commit).
    pub fn append(&mut self, op: WalOp, outcome: WalOutcome) -> Result<u64, DurableError> {
        let record = WalRecord {
            seq: self.next_seq,
            op,
            outcome,
        };
        let bytes = self.wal.append(&record)?;
        self.next_seq += 1;
        self.since_snapshot += 1;
        Ok(bytes)
    }

    /// Makes the batch durable per the fsync policy; call before
    /// releasing the batch's replies. Returns the commit's timing
    /// stamp — the serving layer attributes its wall time to the
    /// requests whose replies the commit gated.
    pub fn commit(&mut self) -> Result<CommitStamp, DurableError> {
        self.wal.commit()
    }

    /// Takes a snapshot if the cadence says one is due. Returns whether
    /// it did.
    pub fn maybe_snapshot(&mut self, model: &DeploymentModel) -> Result<bool, DurableError> {
        if self.since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.snapshot_now(model)?;
        Ok(true)
    }

    /// Takes a snapshot unconditionally (the drain-to-snapshot path of
    /// a clean shutdown). The journal is fsynced through the snapshot's
    /// sequence number *first*, so a snapshot can never claim records
    /// the journal might lose.
    pub fn snapshot_now(&mut self, model: &DeploymentModel) -> Result<(), DurableError> {
        self.wal.sync()?;
        write_snapshot(&self.dir, self.next_seq - 1, &model.capture_state())?;
        prune_snapshots(&self.dir, self.retain)?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// Sequence number of the last journaled record (0 if none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Journal bytes appended by this handle since open.
    pub fn appended_bytes(&self) -> u64 {
        self.wal.appended_bytes()
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.wal.policy()
    }
}

impl std::fmt::Debug for ShardDurable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardDurable")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("since_snapshot", &self.since_snapshot)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, VmId, VmSpec};
    use slackvm_sched::PlacementPolicy;
    use slackvm_sim::SharedDeployment;
    use slackvm_topology::topology_from_spec;
    use std::sync::Arc;

    fn fresh_model() -> DeploymentModel {
        let topo = Arc::new(topology_from_spec("cores=8").unwrap());
        DeploymentModel::Shared(SharedDeployment::with_policy(
            topo,
            gib(32),
            PlacementPolicy::FirstFit,
        ))
    }

    fn temp_opts(tag: &str) -> DurableOptions {
        let dir = std::env::temp_dir().join(format!("slackvm-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DurableOptions {
            fsync: FsyncPolicy::Off,
            ..DurableOptions::new(dir)
        }
    }

    #[test]
    fn decisions_survive_reopen_and_seq_resumes() {
        let opts = temp_opts("reopen");
        let spec = VmSpec::of(2, gib(4), OversubLevel::of(2));
        let mut model = fresh_model();
        let (mut durable, report) = ShardDurable::open(&opts, 0, &mut model).unwrap();
        assert_eq!(report.last_seq, 0);
        for i in 0..4u64 {
            let pm = model.deploy(VmId(i), spec).unwrap();
            durable
                .append(WalOp::Place { id: VmId(i), spec }, WalOutcome::Placed(pm))
                .unwrap();
        }
        durable.commit().unwrap();
        assert_eq!(durable.last_seq(), 4);
        assert!(durable.appended_bytes() > 0);
        drop(durable);

        let mut recovered = fresh_model();
        let (durable, report) = ShardDurable::open(&opts, 0, &mut recovered).unwrap();
        assert_eq!(report.records_replayed, 4);
        assert_eq!(durable.last_seq(), 4);
        assert_eq!(
            recovered.capture_state().normalized(),
            model.capture_state().normalized()
        );
        std::fs::remove_dir_all(&opts.dir).ok();
    }

    #[test]
    fn snapshot_cadence_fires_and_bounds_tail_replay() {
        let mut opts = temp_opts("cadence");
        opts.snapshot_every = 3;
        opts.retain = 1;
        let spec = VmSpec::of(1, gib(2), OversubLevel::of(2));
        let mut model = fresh_model();
        let (mut durable, _) = ShardDurable::open(&opts, 0, &mut model).unwrap();
        let mut fired = 0;
        for i in 0..7u64 {
            let pm = model.deploy(VmId(i), spec).unwrap();
            durable
                .append(WalOp::Place { id: VmId(i), spec }, WalOutcome::Placed(pm))
                .unwrap();
            durable.commit().unwrap();
            if durable.maybe_snapshot(&model).unwrap() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2, "records 3 and 6 cross the cadence");
        drop(durable);
        let mut recovered = fresh_model();
        let (_, report) = ShardDurable::open(&opts, 0, &mut recovered).unwrap();
        assert_eq!(report.snapshot_seq, Some(6));
        assert_eq!(
            report.records_replayed, 1,
            "only the tail past the snapshot"
        );
        assert_eq!(
            recovered.capture_state().normalized(),
            model.capture_state().normalized()
        );
        std::fs::remove_dir_all(&opts.dir).ok();
    }
}
