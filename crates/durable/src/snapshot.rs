//! Shard snapshots: periodic checkpoints of the logical model state.
//!
//! A snapshot file is:
//!
//! ```text
//! [magic: b"SLKSNAP2"][seq: u64 le][len: u32 le][crc32: u32 le][state payload]
//! ```
//!
//! where `seq` is the journal sequence number the snapshot covers —
//! recovery restores the newest readable snapshot and replays only WAL
//! records with `seq` greater than it. Snapshots are written to a
//! temporary file, fsynced, and renamed into place, so a crash
//! mid-snapshot leaves at most a stale `.tmp` that is never considered.
//! Retention keeps the newest `K`; corrupt or torn snapshots are
//! skipped in favor of the next-newest readable one.
//!
//! Snapshotting never truncates the WAL: the journal from genesis is
//! the evidence `slackvm fsck` replays. Snapshots bound recovery
//! *time*, not disk.

use std::fs::{self, File};
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use slackvm_sim::ModelState;

use crate::codec;
use crate::crc32::crc32;
use crate::error::DurableError;

/// Leading magic of every snapshot file (versioned: bump the trailing
/// digit on layout changes). Version 2 added the failed-PM set to each
/// cluster body; version-1 snapshots read as corrupt and recovery
/// falls back to a full-journal replay, which stays correct.
pub const SNAP_MAGIC: &[u8; 8] = b"SLKSNAP2";

/// Extension of finished snapshots.
pub const SNAP_EXT: &str = "snap";

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:020}.{SNAP_EXT}")
}

/// Sequence number encoded in a snapshot file name, if it is one.
fn parse_snap_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Writes a snapshot covering journal records `..= seq` into `dir`,
/// atomically. Returns the final path.
pub fn write_snapshot(dir: &Path, seq: u64, state: &ModelState) -> Result<PathBuf, DurableError> {
    let payload = codec::encode_state(state);
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(format!("{}.tmp", snap_name(seq)));
    let path = dir.join(snap_name(seq));
    let write = || -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        // Persist the rename itself.
        File::open(dir)?.sync_all()?;
        Ok(())
    };
    write().map_err(DurableError::io(path.display().to_string()))?;
    Ok(path)
}

/// Reads and validates one snapshot file, returning its covered
/// sequence number and state.
pub fn read_snapshot(path: &Path) -> Result<(u64, ModelState), DurableError> {
    let corrupt = |detail: String| DurableError::Corrupt {
        what: format!("snapshot {}", path.display()),
        detail,
    };
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(DurableError::io(path.display().to_string()))?;
    if bytes.len() < 24 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("missing or wrong magic".into()));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let payload = bytes
        .get(24..24 + len)
        .ok_or_else(|| corrupt("payload shorter than header claims".into()))?;
    if bytes.len() != 24 + len {
        return Err(corrupt("trailing bytes after payload".into()));
    }
    if crc32(payload) != crc {
        return Err(corrupt("payload checksum mismatch".into()));
    }
    let state = codec::decode_state(payload).map_err(corrupt)?;
    Ok((seq, state))
}

fn snapshot_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(DurableError::io(dir.display().to_string())(e)),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(DurableError::io(dir.display().to_string()))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snap_name) {
            found.push((seq, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Loads the newest readable snapshot in `dir`, skipping corrupt ones.
/// `None` when the directory holds no usable snapshot (including when
/// it does not exist).
pub fn load_latest_snapshot(dir: &Path) -> Result<Option<(u64, ModelState)>, DurableError> {
    for (_, path) in snapshot_paths(dir)?.into_iter().rev() {
        match read_snapshot(&path) {
            Ok(loaded) => return Ok(Some(loaded)),
            Err(DurableError::Corrupt { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Deletes all but the newest `retain` snapshots (always keeps at least
/// one). Returns how many were removed.
pub fn prune_snapshots(dir: &Path, retain: usize) -> Result<usize, DurableError> {
    let found = snapshot_paths(dir)?;
    let keep = retain.max(1);
    let mut removed = 0;
    if found.len() > keep {
        for (_, path) in &found[..found.len() - keep] {
            fs::remove_file(path).map_err(DurableError::io(path.display().to_string()))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, PmId, VmId, VmSpec};
    use slackvm_sim::{ClusterState, PlacementRecord};

    fn state(n: u64) -> ModelState {
        ModelState::Shared(ClusterState {
            opened: 1,
            placements: (0..n)
                .map(|i| PlacementRecord {
                    vm: VmId(i),
                    spec: VmSpec::of(1, gib(2), OversubLevel::of(2)),
                    pm: PmId(0),
                })
                .collect(),
            failed: vec![],
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slackvm-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn newest_valid_snapshot_wins_and_corruption_falls_back() {
        let dir = temp_dir("fallback");
        assert_eq!(load_latest_snapshot(&dir).unwrap(), None);
        write_snapshot(&dir, 10, &state(1)).unwrap();
        let newest = write_snapshot(&dir, 20, &state(2)).unwrap();
        let (seq, s) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!((seq, s.num_vms()), (20, 2));

        // Corrupt the newest: recovery must fall back to seq 10.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (seq, s) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!((seq, s.num_vms()), (10, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_the_newest_k() {
        let dir = temp_dir("retain");
        for seq in [5, 6, 7, 8] {
            write_snapshot(&dir, seq, &state(seq)).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        let left = snapshot_paths(&dir).unwrap();
        assert_eq!(left.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![7, 8]);
        // retain=0 still keeps the newest.
        assert_eq!(prune_snapshots(&dir, 0).unwrap(), 1);
        assert_eq!(snapshot_paths(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_ignored() {
        let dir = temp_dir("tmp");
        write_snapshot(&dir, 3, &state(1)).unwrap();
        fs::write(dir.join("snap-00000000000000000099.snap.tmp"), b"garbage").unwrap();
        let (seq, _) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
