//! Crash recovery and offline verification.
//!
//! [`recover_shard`] rebuilds a shard's deployment model from its state
//! directory: restore the newest readable snapshot, then replay the
//! journal tail (records with `seq` beyond the snapshot) through the
//! *directed* placement primitive — each logged decision is re-applied
//! to the PM it was committed to, not re-decided.
//!
//! [`fsck_shard`] is the adversarial counterpart: it replays the whole
//! journal from genesis through the model's ordinary *decision* path
//! and checks that every decision comes out the same — the
//! decision-determinism property the differential suites prove — and
//! that the final state equals the recovered one under
//! [`ModelState::normalized`]. A pass means the snapshot+tail recovery
//! is byte-for-byte equivalent to the service's actual committed
//! history.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use slackvm_sim::{DeploymentModel, ModelState, SimError};

use crate::error::DurableError;
use crate::snapshot::load_latest_snapshot;
use crate::wal::{scan_wal, WalOp, WalOutcome, WalRecord, WAL_FILE};

/// `<root>/shard-<n>`, the per-shard state directory.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// What [`recover_shard`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Which shard.
    pub shard: u32,
    /// Sequence number of the restored snapshot, if one was usable.
    pub snapshot_seq: Option<u64>,
    /// Records in the journal's valid prefix (from genesis).
    pub records_total: u64,
    /// Records actually replayed (beyond the snapshot).
    pub records_replayed: u64,
    /// Journal bytes in the valid prefix.
    pub wal_bytes: u64,
    /// Torn-tail bytes discarded by the scan.
    pub truncated_bytes: u64,
    /// Highest committed sequence number (0 for a fresh shard) — the
    /// writer resumes at `last_seq + 1`.
    pub last_seq: u64,
    /// Wall-clock recovery time.
    pub elapsed: Duration,
}

/// Rebuilds `model` from `shard`'s state under `root`. The model must
/// be freshly built from the manifest (empty); a missing or empty
/// directory recovers to the empty state.
pub fn recover_shard(
    root: &Path,
    shard: u32,
    model: &mut DeploymentModel,
) -> Result<RecoveryReport, DurableError> {
    let start = Instant::now();
    let dir = shard_dir(root, shard);
    let snapshot = load_latest_snapshot(&dir)?;
    let snapshot_seq = snapshot.as_ref().map(|(seq, _)| *seq);
    if let Some((_, state)) = &snapshot {
        model.restore_state(state).map_err(DurableError::Restore)?;
    }
    let scan = scan_wal(&dir.join(WAL_FILE))?;
    let horizon = snapshot_seq.unwrap_or(0);
    let mut replayed = 0u64;
    for record in &scan.records {
        if record.seq <= horizon {
            continue;
        }
        apply_record(model, record)?;
        replayed += 1;
    }
    model
        .check_invariants()
        .map_err(|e| DurableError::Restore(format!("post-recovery invariants: {e}")))?;
    Ok(RecoveryReport {
        shard,
        snapshot_seq,
        records_total: scan.records.len() as u64,
        records_replayed: replayed,
        wal_bytes: scan.valid_len,
        truncated_bytes: scan.truncated_bytes(),
        last_seq: scan.last_seq().unwrap_or(0).max(horizon),
        elapsed: start.elapsed(),
    })
}

/// Re-applies one committed decision to `model`, directed to the PM it
/// was logged against.
fn apply_record(model: &mut DeploymentModel, record: &WalRecord) -> Result<(), DurableError> {
    let replay = |detail: String| DurableError::Replay {
        seq: record.seq,
        detail,
    };
    match (&record.op, &record.outcome) {
        (WalOp::Place { id, spec }, WalOutcome::Placed(pm)) => model
            .restore_placement(*id, *spec, *pm)
            .map_err(|e| replay(format!("directed place of {id} on {pm}: {e}"))),
        (WalOp::Place { .. }, WalOutcome::Rejected) => Ok(()),
        (WalOp::Remove { id }, WalOutcome::Removed(pm)) => match model.remove(*id) {
            Ok(actual) if actual == *pm => Ok(()),
            Ok(actual) => Err(replay(format!(
                "remove of {id} came off {actual}, journal says {pm}"
            ))),
            Err(e) => Err(replay(format!("remove of {id}: {e}"))),
        },
        (WalOp::Resize { id, vcpus, mem_mib }, WalOutcome::Resized { accepted: true }) => model
            .resize(*id, *vcpus, *mem_mib)
            .map_err(|e| replay(format!("accepted resize of {id}: {e}"))),
        (WalOp::Resize { .. }, WalOutcome::Resized { accepted: false }) => Ok(()),
        (WalOp::FailPm { pm } | WalOp::DrainPm { pm }, WalOutcome::HostDown { evicted }) => {
            let actual = model.fail_host(*pm).len() as u32;
            if actual == *evicted {
                Ok(())
            } else {
                Err(replay(format!(
                    "failing {pm} evicted {actual} VMs, journal says {evicted}"
                )))
            }
        }
        (WalOp::RecoverPm { pm }, WalOutcome::HostUp) => {
            model.repair_host(*pm);
            Ok(())
        }
        (WalOp::Migrate { id, from, to }, WalOutcome::Migrated) => {
            match model.migrate(*id, *to) {
                Ok(actual) if actual == *from => Ok(()),
                Ok(actual) => Err(replay(format!(
                    "migrate of {id} came off {actual}, journal says {from}"
                ))),
                Err(e) => Err(replay(format!("migrate of {id} to {to}: {e}"))),
            }
        }
        (op, outcome) => Err(replay(format!(
            "op/outcome pair is impossible: {op:?} / {outcome:?}"
        ))),
    }
}

/// Cap on itemized mismatches in an [`FsckReport`].
const MAX_MISMATCHES: usize = 32;

/// What [`fsck_shard`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Which shard.
    pub shard: u32,
    /// Journal records re-derived.
    pub records_checked: u64,
    /// Torn-tail bytes the scan discarded.
    pub truncated_bytes: u64,
    /// Every divergence found (capped at [`MAX_MISMATCHES`] itemized
    /// entries plus a summary line).
    pub mismatches: Vec<String>,
}

impl FsckReport {
    /// Whether the recovered state is provably the committed history.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Verifies `recovered` (the output of [`recover_shard`]) against a
/// from-genesis replay of the journal through `fresh` — a second model
/// built from the same manifest, still empty. Every journal decision
/// is re-derived through the ordinary decision path and compared to
/// what was logged; at the end the two states must normalize
/// identically.
pub fn fsck_shard(
    root: &Path,
    shard: u32,
    recovered: &DeploymentModel,
    fresh: &mut DeploymentModel,
) -> Result<FsckReport, DurableError> {
    let dir = shard_dir(root, shard);
    let scan = scan_wal(&dir.join(WAL_FILE))?;
    let mut mismatches = Vec::new();
    let mut suppressed = 0usize;
    let mut push = |mismatches: &mut Vec<String>, msg: String| {
        if mismatches.len() < MAX_MISMATCHES {
            mismatches.push(msg);
        } else {
            suppressed += 1;
        }
    };
    for record in &scan.records {
        let seq = record.seq;
        match &record.op {
            WalOp::Place { id, spec } => {
                let derived = fresh.deploy(*id, *spec);
                match (&derived, &record.outcome) {
                    (Ok(pm), WalOutcome::Placed(logged)) if pm == logged => {}
                    (
                        Err(SimError::DeploymentFailed(_) | SimError::Unsatisfiable(_)),
                        WalOutcome::Rejected,
                    ) => {}
                    _ => push(
                        &mut mismatches,
                        format!(
                            "seq {seq}: place {id} re-derived as {derived:?}, journal says {:?}",
                            record.outcome
                        ),
                    ),
                }
            }
            WalOp::Remove { id } => {
                let derived = fresh.remove(*id);
                match (&derived, &record.outcome) {
                    (Ok(pm), WalOutcome::Removed(logged)) if pm == logged => {}
                    _ => push(
                        &mut mismatches,
                        format!(
                            "seq {seq}: remove {id} re-derived as {derived:?}, journal says {:?}",
                            record.outcome
                        ),
                    ),
                }
            }
            WalOp::Resize { id, vcpus, mem_mib } => {
                let derived = fresh.resize(*id, *vcpus, *mem_mib);
                let accepted = match &record.outcome {
                    WalOutcome::Resized { accepted } => Some(*accepted),
                    _ => None,
                };
                match (&derived, accepted) {
                    (Ok(()), Some(true)) => {}
                    (
                        Err(SimError::DeploymentFailed(_) | SimError::Unsatisfiable(_)),
                        Some(false),
                    ) => {}
                    _ => push(
                        &mut mismatches,
                        format!(
                            "seq {seq}: resize {id} re-derived as {derived:?}, journal says {:?}",
                            record.outcome
                        ),
                    ),
                }
            }
            WalOp::FailPm { pm } | WalOp::DrainPm { pm } => {
                let derived = fresh.fail_host(*pm).len() as u32;
                match &record.outcome {
                    WalOutcome::HostDown { evicted } if *evicted == derived => {}
                    _ => push(
                        &mut mismatches,
                        format!(
                            "seq {seq}: failing {pm} re-derived {derived} evictions, journal says {:?}",
                            record.outcome
                        ),
                    ),
                }
            }
            WalOp::RecoverPm { pm } => {
                fresh.repair_host(*pm);
                if record.outcome != WalOutcome::HostUp {
                    push(
                        &mut mismatches,
                        format!(
                            "seq {seq}: recover {pm} must log HostUp, journal says {:?}",
                            record.outcome
                        ),
                    );
                }
            }
            WalOp::Migrate { id, from, to } => {
                // Migrations are directed, not re-derived: the plan
                // depended on tick timing, which is not part of the
                // journal's deterministic input. fsck checks legality
                // instead — the VM really was at `from` and `to`
                // really admitted it under the hard constraints.
                let derived = fresh.migrate(*id, *to);
                match (&derived, &record.outcome) {
                    (Ok(actual), WalOutcome::Migrated) if actual == from => {}
                    _ => push(
                        &mut mismatches,
                        format!(
                            "seq {seq}: migrate {id} -> {to} re-applied as {derived:?} \
                             (from {from}), journal says {:?}",
                            record.outcome
                        ),
                    ),
                }
            }
        }
    }
    if suppressed > 0 {
        mismatches.push(format!("... and {suppressed} more decision mismatches"));
    }

    let replayed = fresh.capture_state().normalized();
    let live = recovered.capture_state().normalized();
    if replayed != live {
        mismatches.push(state_diff(&live, &replayed));
    }
    if let Err(e) = fresh.check_invariants() {
        mismatches.push(format!("replayed model violates invariants: {e}"));
    }
    if let Err(e) = recovered.check_invariants() {
        mismatches.push(format!("recovered model violates invariants: {e}"));
    }
    Ok(FsckReport {
        shard,
        records_checked: scan.records.len() as u64,
        truncated_bytes: scan.truncated_bytes(),
        mismatches,
    })
}

/// A one-line summary of how two normalized states differ.
fn state_diff(live: &ModelState, replayed: &ModelState) -> String {
    let mut msg = format!(
        "recovered state diverges from genesis replay: {} VMs on {} PMs recovered vs {} VMs on {} PMs replayed",
        live.num_vms(),
        live.opened_pms(),
        replayed.num_vms(),
        replayed.opened_pms(),
    );
    let lives: Vec<_> = live.placements().collect();
    let reps: Vec<_> = replayed.placements().collect();
    for (a, b) in lives.iter().zip(reps.iter()) {
        if a != b {
            msg.push_str(&format!("; first divergence: {a:?} vs {b:?}"));
            break;
        }
    }
    msg
}

// The recovery/fsck integration tests live in the workspace-level
// `tests/durable_recovery.rs`, which exercises them end-to-end against
// real deployment models; snapshot and WAL edge cases are unit-tested
// in their own modules.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::wal::WalWriter;
    use slackvm_model::{gib, OversubLevel, PmId, VmId, VmSpec};
    use slackvm_sched::PlacementPolicy;
    use slackvm_sim::SharedDeployment;
    use slackvm_topology::topology_from_spec;
    use std::sync::Arc;

    fn fresh_model() -> DeploymentModel {
        let topo = Arc::new(topology_from_spec("cores=8").unwrap());
        DeploymentModel::Shared(SharedDeployment::with_policy(
            topo,
            gib(32),
            PlacementPolicy::FirstFit,
        ))
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("slackvm-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> VmSpec {
        VmSpec::of(2, gib(4), OversubLevel::of(2))
    }

    #[test]
    fn empty_and_missing_directories_recover_to_genesis() {
        let root = temp_root("empty");
        let mut model = fresh_model();
        let report = recover_shard(&root, 0, &mut model).unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.last_seq, 0);
        assert_eq!(model.opened_pms(), 0);
        // Same with an existing but empty shard dir.
        std::fs::create_dir_all(shard_dir(&root, 1)).unwrap();
        let report = recover_shard(&root, 1, &mut fresh_model()).unwrap();
        assert_eq!(report.snapshot_seq, None);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wal_only_snapshot_only_and_combined_recoveries_agree() {
        let root = temp_root("agree");
        // Build reference history on a live model, journaling as the
        // shard would.
        let mut live = fresh_model();
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut wal = WalWriter::open(&dir.join(WAL_FILE), 0, crate::FsyncPolicy::Off).unwrap();
        let mut seq = 0u64;
        for i in 0..6u64 {
            let id = VmId(i);
            let pm = live.deploy(id, spec()).unwrap();
            seq += 1;
            wal.append(&WalRecord {
                seq,
                op: WalOp::Place { id, spec: spec() },
                outcome: WalOutcome::Placed(pm),
            })
            .unwrap();
            if i == 3 {
                // Snapshot mid-history: records 1..=4 covered.
                write_snapshot(&dir, seq, &live.capture_state()).unwrap();
            }
        }
        let pm = live.remove(VmId(2)).unwrap();
        seq += 1;
        wal.append(&WalRecord {
            seq,
            op: WalOp::Remove { id: VmId(2) },
            outcome: WalOutcome::Removed(pm),
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Combined: snapshot at 4 + tail 5..=7.
        let mut recovered = fresh_model();
        let report = recover_shard(&root, 0, &mut recovered).unwrap();
        assert_eq!(report.snapshot_seq, Some(4));
        assert_eq!(report.records_total, 7);
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.last_seq, 7);
        assert_eq!(
            recovered.capture_state().normalized(),
            live.capture_state().normalized()
        );

        // fsck proves the recovery equals the committed history.
        let fsck = fsck_shard(&root, 0, &recovered, &mut fresh_model()).unwrap();
        assert!(fsck.ok(), "{:?}", fsck.mismatches);
        assert_eq!(fsck.records_checked, 7);

        // WAL-only: delete snapshots, recover again.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "snap") {
                std::fs::remove_file(p).unwrap();
            }
        }
        let mut wal_only = fresh_model();
        let report = recover_shard(&root, 0, &mut wal_only).unwrap();
        assert_eq!(report.snapshot_seq, None);
        assert_eq!(report.records_replayed, 7);
        assert_eq!(
            wal_only.capture_state().normalized(),
            live.capture_state().normalized()
        );

        // Snapshot-only: final snapshot, truncate the WAL away.
        write_snapshot(&dir, seq, &live.capture_state()).unwrap();
        std::fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let mut snap_only = fresh_model();
        let report = recover_shard(&root, 0, &mut snap_only).unwrap();
        assert_eq!(report.snapshot_seq, Some(7));
        assert_eq!(report.records_replayed, 0);
        assert_eq!(
            snap_only.capture_state().normalized(),
            live.capture_state().normalized()
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fsck_flags_a_doctored_journal() {
        let root = temp_root("doctored");
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut live = fresh_model();
        let pm = live.deploy(VmId(1), spec()).unwrap();
        let mut wal = WalWriter::open(&dir.join(WAL_FILE), 0, crate::FsyncPolicy::Off).unwrap();
        // Journal lies: claims the VM landed one PM over.
        wal.append(&WalRecord {
            seq: 1,
            op: WalOp::Place {
                id: VmId(1),
                spec: spec(),
            },
            outcome: WalOutcome::Placed(PmId(pm.0 + 1)),
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let fsck = fsck_shard(&root, 0, &live, &mut fresh_model()).unwrap();
        assert!(!fsck.ok());
        assert!(
            fsck.mismatches.iter().any(|m| m.contains("seq 1")),
            "{:?}",
            fsck.mismatches
        );
        std::fs::remove_dir_all(&root).ok();
    }

    /// Failure / recovery records replay and fsck exactly like
    /// placement decisions: the evicted count is re-derived, displaced
    /// VMs reappear as ordinary directed places, and the failed set
    /// round-trips through the final state comparison.
    #[test]
    fn failure_records_recover_and_fsck() {
        let root = temp_root("failure");
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut live = fresh_model();
        let mut wal = WalWriter::open(&dir.join(WAL_FILE), 0, crate::FsyncPolicy::Off).unwrap();
        let mut seq = 0u64;
        let mut log = |wal: &mut WalWriter, op: WalOp, outcome: WalOutcome| {
            seq += 1;
            wal.append(&WalRecord { seq, op, outcome }).unwrap();
        };
        // Fill host 0 (8 cores) so a second host opens.
        for i in 0..4u64 {
            let id = VmId(i);
            let pm = live.deploy(id, spec()).unwrap();
            log(
                &mut wal,
                WalOp::Place { id, spec: spec() },
                WalOutcome::Placed(pm),
            );
        }
        // Fail host 0: its VMs evict, then re-place as normal deploys.
        let evicted = live.fail_host(PmId(0));
        log(
            &mut wal,
            WalOp::FailPm { pm: PmId(0) },
            WalOutcome::HostDown {
                evicted: evicted.len() as u32,
            },
        );
        assert!(!evicted.is_empty());
        for (id, vm_spec) in evicted {
            let pm = live.deploy(id, vm_spec).unwrap();
            assert_ne!(pm, PmId(0), "failed host must not admit");
            log(
                &mut wal,
                WalOp::Place { id, spec: vm_spec },
                WalOutcome::Placed(pm),
            );
        }
        // Recover it, then a drain that evicts nothing.
        live.repair_host(PmId(0));
        log(&mut wal, WalOp::RecoverPm { pm: PmId(0) }, WalOutcome::HostUp);
        let drained = live.fail_host(PmId(0));
        log(
            &mut wal,
            WalOp::DrainPm { pm: PmId(0) },
            WalOutcome::HostDown {
                evicted: drained.len() as u32,
            },
        );
        wal.sync().unwrap();
        drop(wal);

        let mut recovered = fresh_model();
        recover_shard(&root, 0, &mut recovered).unwrap();
        assert_eq!(
            recovered.capture_state().normalized(),
            live.capture_state().normalized()
        );
        assert_eq!(recovered.failed_pms(), 1);
        let fsck = fsck_shard(&root, 0, &recovered, &mut fresh_model()).unwrap();
        assert!(fsck.ok(), "{:?}", fsck.mismatches);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Rebalance migrations replay directed and fsck as legality
    /// checks: replay lands the VM on the logged destination, and a
    /// journal lying about the source is flagged.
    #[test]
    fn migrate_records_recover_and_fsck() {
        let root = temp_root("migrate");
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut live = fresh_model();
        let mut wal = WalWriter::open(&dir.join(WAL_FILE), 0, crate::FsyncPolicy::Off).unwrap();
        let mut seq = 0u64;
        let mut log = |wal: &mut WalWriter, op: WalOp, outcome: WalOutcome| {
            seq += 1;
            wal.append(&WalRecord { seq, op, outcome }).unwrap();
        };
        // Fill host 0 (8 cores), spill onto host 1, then drain host 0
        // down to one VM and migrate it across.
        for i in 0..9u64 {
            let id = VmId(i);
            let pm = live.deploy(id, spec()).unwrap();
            log(
                &mut wal,
                WalOp::Place { id, spec: spec() },
                WalOutcome::Placed(pm),
            );
        }
        for i in 0..7u64 {
            let pm = live.remove(VmId(i)).unwrap();
            log(
                &mut wal,
                WalOp::Remove { id: VmId(i) },
                WalOutcome::Removed(pm),
            );
        }
        let from = live.migrate(VmId(7), PmId(1)).unwrap();
        assert_eq!(from, PmId(0));
        log(
            &mut wal,
            WalOp::Migrate {
                id: VmId(7),
                from,
                to: PmId(1),
            },
            WalOutcome::Migrated,
        );
        wal.sync().unwrap();
        drop(wal);

        let mut recovered = fresh_model();
        recover_shard(&root, 0, &mut recovered).unwrap();
        assert_eq!(
            recovered.capture_state().normalized(),
            live.capture_state().normalized()
        );
        assert_eq!(recovered.location_of(VmId(7)), Some(PmId(1)));
        let fsck = fsck_shard(&root, 0, &recovered, &mut fresh_model()).unwrap();
        assert!(fsck.ok(), "{:?}", fsck.mismatches);

        // Doctor the source PM in the migrate frame: fsck must flag it.
        let image = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let scan = crate::wal::scan_bytes(&image);
        assert_eq!(scan.records.len(), 17);
        let mut doctored = Vec::new();
        for (i, rec) in scan.records.iter().enumerate() {
            let mut rec = *rec;
            if i == 16 {
                let WalOp::Migrate { id, to, .. } = rec.op else {
                    panic!("last record is the migration");
                };
                rec.op = WalOp::Migrate {
                    id,
                    from: PmId(7),
                    to,
                };
            }
            let payload = crate::codec::encode_record(&rec);
            doctored.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            doctored.extend_from_slice(&crate::crc32::crc32(&payload).to_le_bytes());
            doctored.extend_from_slice(&payload);
        }
        std::fs::write(dir.join(WAL_FILE), &doctored).unwrap();
        let fsck = fsck_shard(&root, 0, &recovered, &mut fresh_model()).unwrap();
        assert!(!fsck.ok());
        assert!(
            fsck.mismatches.iter().any(|m| m.contains("seq 17")),
            "{:?}",
            fsck.mismatches
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn impossible_op_outcome_pairs_fail_replay() {
        let mut model = fresh_model();
        let err = apply_record(
            &mut model,
            &WalRecord {
                seq: 9,
                op: WalOp::Remove { id: VmId(1) },
                outcome: WalOutcome::Rejected,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("seq 9"), "{err}");
    }
}
