//! Little-endian binary encodings of the durable on-disk payloads.
//!
//! Both the WAL record and the snapshot body use a fixed hand-rolled
//! layout rather than a serialization framework: the bytes on disk are
//! a compatibility contract, and integers-in-known-positions keep that
//! contract auditable with `xxd`. Decoding validates every domain
//! constraint (oversubscription level range, non-empty specs) so a
//! CRC-passing but semantically impossible frame is still rejected.

use slackvm_model::{OversubLevel, PmId, VmId, VmSpec};
use slackvm_sim::{ClusterState, ModelState, PlacementRecord};

use crate::wal::{WalOp, WalOutcome, WalRecord};

/// A bounds-checked reader over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after a complete value",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_spec(out: &mut Vec<u8>, spec: &VmSpec) {
    put_u32(out, spec.vcpus());
    put_u64(out, spec.mem_mib());
    put_u32(out, spec.level.ratio());
}

fn read_spec(r: &mut Reader<'_>) -> Result<VmSpec, String> {
    let vcpus = r.u32()?;
    let mem_mib = r.u64()?;
    let level = OversubLevel::new(r.u32()?).map_err(|e| e.to_string())?;
    VmSpec::new(vcpus, mem_mib, level).map_err(|e| e.to_string())
}

const OP_PLACE: u8 = 0;
const OP_REMOVE: u8 = 1;
const OP_RESIZE: u8 = 2;
const OP_FAIL_PM: u8 = 3;
const OP_RECOVER_PM: u8 = 4;
const OP_DRAIN_PM: u8 = 5;
const OP_MIGRATE: u8 = 6;

const OUT_PLACED: u8 = 0;
const OUT_REMOVED: u8 = 1;
const OUT_RESIZED: u8 = 2;
const OUT_REJECTED: u8 = 3;
const OUT_HOST_DOWN: u8 = 4;
const OUT_HOST_UP: u8 = 5;
const OUT_MIGRATED: u8 = 6;

/// Encodes a WAL record payload (the frame header is added by the
/// writer).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, rec.seq);
    match &rec.op {
        WalOp::Place { id, spec } => {
            out.push(OP_PLACE);
            put_u64(&mut out, id.0);
            put_spec(&mut out, spec);
        }
        WalOp::Remove { id } => {
            out.push(OP_REMOVE);
            put_u64(&mut out, id.0);
        }
        WalOp::Resize { id, vcpus, mem_mib } => {
            out.push(OP_RESIZE);
            put_u64(&mut out, id.0);
            put_u32(&mut out, *vcpus);
            put_u64(&mut out, *mem_mib);
        }
        WalOp::FailPm { pm } => {
            out.push(OP_FAIL_PM);
            put_u32(&mut out, pm.0);
        }
        WalOp::RecoverPm { pm } => {
            out.push(OP_RECOVER_PM);
            put_u32(&mut out, pm.0);
        }
        WalOp::DrainPm { pm } => {
            out.push(OP_DRAIN_PM);
            put_u32(&mut out, pm.0);
        }
        WalOp::Migrate { id, from, to } => {
            out.push(OP_MIGRATE);
            put_u64(&mut out, id.0);
            put_u32(&mut out, from.0);
            put_u32(&mut out, to.0);
        }
    }
    match &rec.outcome {
        WalOutcome::Placed(pm) => {
            out.push(OUT_PLACED);
            put_u32(&mut out, pm.0);
        }
        WalOutcome::Removed(pm) => {
            out.push(OUT_REMOVED);
            put_u32(&mut out, pm.0);
        }
        WalOutcome::Resized { accepted } => {
            out.push(OUT_RESIZED);
            out.push(*accepted as u8);
        }
        WalOutcome::Rejected => out.push(OUT_REJECTED),
        WalOutcome::HostDown { evicted } => {
            out.push(OUT_HOST_DOWN);
            put_u32(&mut out, *evicted);
        }
        WalOutcome::HostUp => out.push(OUT_HOST_UP),
        WalOutcome::Migrated => out.push(OUT_MIGRATED),
    }
    out
}

/// Decodes a WAL record payload.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let op = match r.u8()? {
        OP_PLACE => WalOp::Place {
            id: VmId(r.u64()?),
            spec: read_spec(&mut r)?,
        },
        OP_REMOVE => WalOp::Remove { id: VmId(r.u64()?) },
        OP_RESIZE => WalOp::Resize {
            id: VmId(r.u64()?),
            vcpus: r.u32()?,
            mem_mib: r.u64()?,
        },
        OP_FAIL_PM => WalOp::FailPm { pm: PmId(r.u32()?) },
        OP_RECOVER_PM => WalOp::RecoverPm { pm: PmId(r.u32()?) },
        OP_DRAIN_PM => WalOp::DrainPm { pm: PmId(r.u32()?) },
        OP_MIGRATE => WalOp::Migrate {
            id: VmId(r.u64()?),
            from: PmId(r.u32()?),
            to: PmId(r.u32()?),
        },
        tag => return Err(format!("unknown op tag {tag}")),
    };
    let outcome = match r.u8()? {
        OUT_PLACED => WalOutcome::Placed(PmId(r.u32()?)),
        OUT_REMOVED => WalOutcome::Removed(PmId(r.u32()?)),
        OUT_RESIZED => WalOutcome::Resized {
            accepted: match r.u8()? {
                0 => false,
                1 => true,
                v => return Err(format!("bad resize verdict byte {v}")),
            },
        },
        OUT_REJECTED => WalOutcome::Rejected,
        OUT_HOST_DOWN => WalOutcome::HostDown { evicted: r.u32()? },
        OUT_HOST_UP => WalOutcome::HostUp,
        OUT_MIGRATED => WalOutcome::Migrated,
        tag => return Err(format!("unknown outcome tag {tag}")),
    };
    r.finish()?;
    Ok(WalRecord { seq, op, outcome })
}

const STATE_SHARED: u8 = 0;
const STATE_DEDICATED: u8 = 1;

fn put_cluster(out: &mut Vec<u8>, c: &ClusterState) {
    put_u32(out, c.opened);
    put_u32(out, c.placements.len() as u32);
    for p in &c.placements {
        put_u64(out, p.vm.0);
        put_spec(out, &p.spec);
        put_u32(out, p.pm.0);
    }
    put_u32(out, c.failed.len() as u32);
    for pm in &c.failed {
        put_u32(out, pm.0);
    }
}

fn read_cluster(r: &mut Reader<'_>) -> Result<ClusterState, String> {
    let opened = r.u32()?;
    let count = r.u32()?;
    let mut placements = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let vm = VmId(r.u64()?);
        let spec = read_spec(r)?;
        let pm = PmId(r.u32()?);
        placements.push(PlacementRecord { vm, spec, pm });
    }
    let failed_count = r.u32()?;
    let mut failed = Vec::with_capacity(failed_count.min(1 << 20) as usize);
    for _ in 0..failed_count {
        failed.push(PmId(r.u32()?));
    }
    Ok(ClusterState {
        opened,
        placements,
        failed,
    })
}

/// Encodes a snapshot body.
pub fn encode_state(state: &ModelState) -> Vec<u8> {
    let mut out = Vec::new();
    match state {
        ModelState::Shared(c) => {
            out.push(STATE_SHARED);
            put_cluster(&mut out, c);
        }
        ModelState::Dedicated(levels) => {
            out.push(STATE_DEDICATED);
            put_u32(&mut out, levels.len() as u32);
            for (level, c) in levels {
                put_u32(&mut out, level.ratio());
                put_cluster(&mut out, c);
            }
        }
    }
    out
}

/// Decodes a snapshot body.
pub fn decode_state(payload: &[u8]) -> Result<ModelState, String> {
    let mut r = Reader::new(payload);
    let state = match r.u8()? {
        STATE_SHARED => ModelState::Shared(read_cluster(&mut r)?),
        STATE_DEDICATED => {
            let n = r.u32()?;
            let mut levels = Vec::with_capacity(n.min(64) as usize);
            for _ in 0..n {
                let level = OversubLevel::new(r.u32()?).map_err(|e| e.to_string())?;
                levels.push((level, read_cluster(&mut r)?));
            }
            ModelState::Dedicated(levels)
        }
        tag => return Err(format!("unknown state tag {tag}")),
    };
    r.finish()?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;

    fn spec(vcpus: u32, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(vcpus as u64 * 4), OversubLevel::of(level))
    }

    #[test]
    fn records_roundtrip() {
        let records = [
            WalRecord {
                seq: 1,
                op: WalOp::Place {
                    id: VmId(7),
                    spec: spec(4, 3),
                },
                outcome: WalOutcome::Placed(PmId(2)),
            },
            WalRecord {
                seq: 2,
                op: WalOp::Remove { id: VmId(7) },
                outcome: WalOutcome::Removed(PmId(2)),
            },
            WalRecord {
                seq: 3,
                op: WalOp::Resize {
                    id: VmId(9),
                    vcpus: 8,
                    mem_mib: gib(16),
                },
                outcome: WalOutcome::Resized { accepted: false },
            },
            WalRecord {
                seq: u64::MAX,
                op: WalOp::Place {
                    id: VmId(u64::MAX),
                    spec: spec(1, 1),
                },
                outcome: WalOutcome::Rejected,
            },
            WalRecord {
                seq: 4,
                op: WalOp::FailPm { pm: PmId(3) },
                outcome: WalOutcome::HostDown { evicted: 17 },
            },
            WalRecord {
                seq: 5,
                op: WalOp::DrainPm { pm: PmId(0) },
                outcome: WalOutcome::HostDown { evicted: 0 },
            },
            WalRecord {
                seq: 6,
                op: WalOp::RecoverPm { pm: PmId(3) },
                outcome: WalOutcome::HostUp,
            },
            WalRecord {
                seq: 7,
                op: WalOp::Migrate {
                    id: VmId(42),
                    from: PmId(5),
                    to: PmId(1),
                },
                outcome: WalOutcome::Migrated,
            },
        ];
        for rec in &records {
            let bytes = encode_record(rec);
            assert_eq!(&decode_record(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let records = [
            WalRecord {
                seq: 5,
                op: WalOp::Remove { id: VmId(1) },
                outcome: WalOutcome::Removed(PmId(0)),
            },
            WalRecord {
                seq: 6,
                op: WalOp::Migrate {
                    id: VmId(1),
                    from: PmId(2),
                    to: PmId(0),
                },
                outcome: WalOutcome::Migrated,
            },
        ];
        for rec in records {
            let bytes = encode_record(&rec);
            for cut in 0..bytes.len() {
                assert!(decode_record(&bytes[..cut]).is_err(), "cut at {cut}");
            }
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(decode_record(&padded).is_err(), "trailing byte accepted");
        }
    }

    #[test]
    fn impossible_domain_values_fail_decode() {
        // A zero-vCPU spec and a level-0 ratio both pass CRC but must
        // not construct.
        let mut bad_level = encode_record(&WalRecord {
            seq: 1,
            op: WalOp::Place {
                id: VmId(1),
                spec: spec(1, 2),
            },
            outcome: WalOutcome::Rejected,
        });
        // level ratio sits in the last 4 bytes of the spec, before the
        // outcome tag (1 byte from the end).
        let n = bad_level.len();
        bad_level[n - 5..n - 1].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_record(&bad_level).is_err());
    }

    #[test]
    fn states_roundtrip() {
        let shared = ModelState::Shared(ClusterState {
            opened: 3,
            placements: vec![
                PlacementRecord {
                    vm: VmId(1),
                    spec: spec(2, 1),
                    pm: PmId(0),
                },
                PlacementRecord {
                    vm: VmId(2),
                    spec: spec(4, 3),
                    pm: PmId(2),
                },
            ],
            failed: vec![PmId(1)],
        });
        let dedicated = ModelState::Dedicated(vec![
            (OversubLevel::of(1), ClusterState::default()),
            (
                OversubLevel::of(3),
                ClusterState {
                    opened: 1,
                    placements: vec![PlacementRecord {
                        vm: VmId(9),
                        spec: spec(1, 3),
                        pm: PmId(0),
                    }],
                    failed: vec![],
                },
            ),
        ]);
        for state in [shared, dedicated] {
            let bytes = encode_state(&state);
            assert_eq!(decode_state(&bytes).unwrap(), state);
        }
    }
}
