//! The state-directory manifest.
//!
//! One small `key=value` text file at the root of a state directory
//! recording the service shape the journals were written under: shard
//! count, deployment model, index mode. `slackvm recover` and
//! `slackvm fsck` rebuild deployment models from it without any
//! service configuration on the command line, and a restarting service
//! refuses a directory whose manifest disagrees with its own
//! configuration — silently replaying a 4-shard journal into 2 shards
//! would scatter VMs.
//!
//! Plain text, not framed binary: the manifest is written once per
//! directory lifetime, and being able to `cat` it is worth more than
//! another CRC.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::error::DurableError;

/// Manifest file name within a state directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const HEADER: &str = "slackvm-durable-manifest";

/// The deployment model each shard owns, as the durability layer
/// records it. Mirrors `slackvm-serve`'s `ModelSpec` (conversions live
/// there — the service depends on this crate, not the reverse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestModel {
    /// A SlackVM shared pool per shard.
    Shared {
        /// Worker topology spec (e.g. `"cores=32"`).
        topology: String,
        /// Worker memory in MiB.
        mem_mib: u64,
        /// Placement-policy name.
        policy: String,
        /// Total fleet cap across shards, if capped.
        fleet_cap: Option<u32>,
    },
    /// The dedicated per-level baseline per shard.
    Dedicated {
        /// Worker topology spec.
        topology: String,
        /// Worker memory in MiB.
        mem_mib: u64,
    },
}

impl ManifestModel {
    /// The model's manifest name (`shared` / `dedicated`).
    pub fn name(&self) -> &'static str {
        match self {
            ManifestModel::Shared { .. } => "shared",
            ManifestModel::Dedicated { .. } => "dedicated",
        }
    }
}

/// The service shape a state directory was written under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Number of shards (and `shard-N/` subdirectories).
    pub shards: u32,
    /// Candidate-assembly mode name (`"incremental"` / `"naive"`).
    pub index: String,
    /// Per-shard deployment model.
    pub model: ManifestModel,
}

impl Manifest {
    /// Renders the text form.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{HEADER}\nversion=1\nshards={}\nindex={}\n",
            self.shards, self.index
        );
        match &self.model {
            ManifestModel::Shared {
                topology,
                mem_mib,
                policy,
                fleet_cap,
            } => {
                out.push_str(&format!(
                    "model=shared\ntopology={topology}\nmem_mib={mem_mib}\npolicy={policy}\n"
                ));
                if let Some(cap) = fleet_cap {
                    out.push_str(&format!("fleet_cap={cap}\n"));
                }
            }
            ManifestModel::Dedicated { topology, mem_mib } => {
                out.push_str(&format!(
                    "model=dedicated\ntopology={topology}\nmem_mib={mem_mib}\n"
                ));
            }
        }
        out
    }

    /// Parses the text form.
    pub fn parse(text: &str) -> Result<Manifest, DurableError> {
        let err = |msg: String| DurableError::Manifest(msg);
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(err(format!("missing `{HEADER}` header line")));
        }
        let get = |key: &str| -> Option<String> {
            text.lines()
                .filter_map(|l| l.split_once('='))
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        };
        let version = get("version").ok_or_else(|| err("missing version".into()))?;
        if version != "1" {
            return Err(err(format!("unsupported version {version}")));
        }
        let parse_u32 = |key: &str, v: String| {
            v.parse::<u32>()
                .map_err(|_| err(format!("{key}={v} is not a number")))
        };
        let parse_u64 = |key: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| err(format!("{key}={v} is not a number")))
        };
        let shards = parse_u32(
            "shards",
            get("shards").ok_or_else(|| err("missing shards".into()))?,
        )?;
        if shards == 0 {
            return Err(err("shards must be >= 1".into()));
        }
        let index = get("index").ok_or_else(|| err("missing index".into()))?;
        let topology = get("topology").ok_or_else(|| err("missing topology".into()))?;
        let mem_mib = parse_u64(
            "mem_mib",
            get("mem_mib").ok_or_else(|| err("missing mem_mib".into()))?,
        )?;
        let model = match get("model").as_deref() {
            Some("shared") => ManifestModel::Shared {
                topology,
                mem_mib,
                policy: get("policy").ok_or_else(|| err("missing policy".into()))?,
                fleet_cap: match get("fleet_cap") {
                    Some(v) => Some(parse_u32("fleet_cap", v)?),
                    None => None,
                },
            },
            Some("dedicated") => ManifestModel::Dedicated { topology, mem_mib },
            Some(other) => return Err(err(format!("unknown model `{other}`"))),
            None => return Err(err("missing model".into())),
        };
        Ok(Manifest {
            shards,
            index,
            model,
        })
    }

    /// Loads `<dir>/MANIFEST`.
    pub fn load(dir: &Path) -> Result<Manifest, DurableError> {
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path)
            .map_err(|e| DurableError::Manifest(format!("cannot read {}: {e}", path.display())))?;
        Manifest::parse(&text)
    }

    /// Writes `<dir>/MANIFEST` atomically (tmp + rename + fsync).
    pub fn store(&self, dir: &Path) -> Result<(), DurableError> {
        let path = dir.join(MANIFEST_FILE);
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_data()?;
            drop(f);
            fs::rename(&tmp, &path)?;
            fs::File::open(dir)?.sync_all()?;
            Ok(())
        };
        write().map_err(DurableError::io(path.display().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Manifest {
        Manifest {
            shards: 4,
            index: "incremental".into(),
            model: ManifestModel::Shared {
                topology: "cores=32".into(),
                mem_mib: 131072,
                policy: "progress+bestfit".into(),
                fleet_cap: Some(64),
            },
        }
    }

    #[test]
    fn text_roundtrips_both_models() {
        let dedicated = Manifest {
            shards: 1,
            index: "naive".into(),
            model: ManifestModel::Dedicated {
                topology: "cores=8,smt=2".into(),
                mem_mib: 65536,
            },
        };
        for m in [shared(), dedicated] {
            assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
        }
        // topology values contain '=' — must survive.
        let text = shared().to_text();
        assert!(text.contains("topology=cores=32"), "{text}");
    }

    #[test]
    fn parse_rejects_malformed_manifests() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("slackvm-durable-manifest\nversion=2\n").is_err());
        let no_model = "slackvm-durable-manifest\nversion=1\nshards=1\nindex=incremental\ntopology=cores=4\nmem_mib=1024\n";
        assert!(Manifest::parse(no_model).is_err());
        let zero_shards = shared().to_text().replace("shards=4", "shards=0");
        assert!(Manifest::parse(&zero_shards).is_err());
    }

    #[test]
    fn store_load_roundtrips() {
        let dir = std::env::temp_dir().join(format!("slackvm-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let m = shared();
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        fs::remove_dir_all(&dir).unwrap();
    }
}
