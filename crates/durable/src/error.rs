//! Durability-layer errors.

use thiserror::Error;

/// Everything that can go wrong opening, writing, or recovering a
/// shard's durable state.
#[derive(Debug, Error)]
pub enum DurableError {
    /// An I/O operation failed; `context` names the file or step.
    #[error("{context}: {source}")]
    Io {
        /// What was being done (usually a path).
        context: String,
        /// The underlying error.
        #[source]
        source: std::io::Error,
    },

    /// A file's contents failed structural validation beyond the point
    /// torn-tail truncation can repair (bad magic, impossible field).
    #[error("corrupt {what}: {detail}")]
    Corrupt {
        /// Which artifact (e.g. `"snapshot snap-…"`).
        what: String,
        /// What failed.
        detail: String,
    },

    /// The manifest is missing, unreadable, or inconsistent with the
    /// service configuration.
    #[error("manifest: {0}")]
    Manifest(String),

    /// Restoring a snapshot into a deployment model failed.
    #[error("snapshot restore: {0}")]
    Restore(String),

    /// Replaying a WAL record against the restored model failed — the
    /// journal and snapshot disagree about history.
    #[error("wal replay at seq {seq}: {detail}")]
    Replay {
        /// Sequence number of the offending record.
        seq: u64,
        /// What went wrong.
        detail: String,
    },
}

impl DurableError {
    /// Wraps an I/O error with the path or step it occurred in.
    pub fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> DurableError {
        let context = context.into();
        move |source| DurableError::Io { context, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let err = DurableError::io("wal.log")(std::io::Error::other("disk on fire"));
        assert!(err.to_string().contains("wal.log"), "{err}");
        let err = DurableError::Replay {
            seq: 7,
            detail: "mismatched outcome".into(),
        };
        assert!(err.to_string().contains("seq 7"), "{err}");
    }
}
