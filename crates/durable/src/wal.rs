//! The per-shard write-ahead log.
//!
//! An append-only file of length-prefixed frames:
//!
//! ```text
//! [len: u32 le][crc32(payload): u32 le][payload: len bytes]
//! ```
//!
//! Each payload is one [`WalRecord`] — a committed placement decision
//! (see [`crate::codec`] for the byte layout). A crash can tear the
//! tail: [`scan_wal`] walks frames from the start and stops at the
//! first incomplete, checksum-failing, or undecodable frame, returning
//! the valid prefix; [`WalWriter::open`] then truncates the file to
//! that prefix so the orphaned bytes can never resurrect.
//!
//! What gets logged: state-changing decisions (successful places,
//! removes, accepted and refused resizes, PM failures / drains /
//! recoveries) and terminal `Rejected` placements — the latter carry
//! no state but are themselves deterministic decisions `slackvm fsck`
//! re-derives. Load-shed and unknown-VM outcomes are *not* logged:
//! they never reached the model. An evacuation is its `FailPm` /
//! `DrainPm` record followed by one ordinary `Place` record per
//! displaced VM the fleet re-absorbed (lost VMs simply have none).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use slackvm_model::{PmId, VmId, VmSpec};
use slackvm_telemetry::{FsyncGate, FsyncPolicy};

use crate::codec;
use crate::crc32::crc32;
use crate::error::DurableError;

/// File name of a shard's journal within its state directory.
pub const WAL_FILE: &str = "wal.log";

/// Upper bound on a single frame's payload; anything larger is treated
/// as a torn or corrupt length field.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Bytes of framing overhead per record (length + checksum).
pub const FRAME_HEADER: u64 = 8;

/// The operation half of a logged decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// An admission request.
    Place {
        /// The VM.
        id: VmId,
        /// Its requested shape.
        spec: VmSpec,
    },
    /// A departure.
    Remove {
        /// The VM.
        id: VmId,
    },
    /// A vertical resize.
    Resize {
        /// The VM.
        id: VmId,
        /// New vCPU count.
        vcpus: u32,
        /// New memory size.
        mem_mib: u64,
    },
    /// A PM failure: the host goes out of service and evicts its VMs.
    FailPm {
        /// The shard-local PM.
        pm: PmId,
    },
    /// A failed PM returning to service.
    RecoverPm {
        /// The shard-local PM.
        pm: PmId,
    },
    /// A PM drain: operationally identical to a failure (evict, stop
    /// admitting) but logged distinctly so history tells planned
    /// maintenance from hardware loss.
    DrainPm {
        /// The shard-local PM.
        pm: PmId,
    },
    /// A rebalance migration: the background consolidation tick moved
    /// the VM. Both endpoints are logged so replay is *directed* —
    /// fsck checks legality (the VM really was at `from`, `to` really
    /// admitted it), not re-derivation: plans depend on tick timing,
    /// which is not part of the journal's deterministic input.
    Migrate {
        /// The VM.
        id: VmId,
        /// The source PM.
        from: PmId,
        /// The destination PM.
        to: PmId,
    },
}

/// The decision half: what the shard committed for the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOutcome {
    /// Placed on this shard-local PM.
    Placed(PmId),
    /// Removed from this PM.
    Removed(PmId),
    /// Resize verdict.
    Resized {
        /// Whether the new size was applied.
        accepted: bool,
    },
    /// Terminally rejected (capped fleet, no shard could host).
    Rejected,
    /// The PM went down (failed or draining), evicting this many VMs.
    /// The displaced VMs' re-placements follow as ordinary `Place`
    /// records, so replay reproduces the evacuation decision for
    /// decision.
    HostDown {
        /// VMs evicted by the outage.
        evicted: u32,
    },
    /// The PM returned to service.
    HostUp,
    /// The migration was applied; the VM now lives on the `Migrate`
    /// op's destination.
    Migrated,
}

/// One committed decision: monotone sequence number, operation,
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Shard-local, strictly increasing from 1.
    pub seq: u64,
    /// The operation.
    pub op: WalOp,
    /// The committed decision.
    pub outcome: WalOutcome,
}

/// Result of walking a journal from the start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Byte length of the file as found on disk.
    pub file_len: u64,
}

impl WalScan {
    /// Bytes beyond the last valid frame — non-zero after a torn write.
    pub fn truncated_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }

    /// Sequence number of the last valid record.
    pub fn last_seq(&self) -> Option<u64> {
        self.records.last().map(|r| r.seq)
    }
}

/// Walks the journal at `path`, stopping at the first invalid frame.
/// A missing file scans as empty — a brand-new shard has no journal
/// yet.
pub fn scan_wal(path: &Path) -> Result<WalScan, DurableError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                file_len: 0,
            })
        }
        Err(e) => return Err(DurableError::io(path.display().to_string())(e)),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)
        .map_err(DurableError::io(path.display().to_string()))?;
    Ok(scan_bytes(&buf))
}

/// Frame-walks an in-memory journal image (the core of [`scan_wal`],
/// exposed for tests that corrupt bytes directly).
pub fn scan_bytes(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let Some(header) = buf.get(pos..pos + 8) else {
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_LEN {
            break;
        }
        let Some(payload) = buf.get(pos + 8..pos + 8 + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = codec::decode_record(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len as usize;
    }
    WalScan {
        records,
        valid_len: pos as u64,
        file_len: buf.len() as u64,
    }
}

/// Timing of one durability point: how long the whole commit took
/// (buffered flush plus any fsync), and the fsync share when the policy
/// made this batch durable. Serving layers attribute `wall` to the
/// requests whose replies the commit gated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStamp {
    /// Wall-clock duration of the commit call.
    pub wall: Duration,
    /// The fsync duration when one happened.
    pub fsync: Option<Duration>,
}

/// Appends frames to a journal whose valid prefix was established by a
/// prior [`scan_wal`].
pub struct WalWriter {
    out: BufWriter<File>,
    gate: FsyncGate,
    appended: u64,
    unsynced: bool,
}

impl WalWriter {
    /// Opens (creating if absent) the journal, truncates it to
    /// `valid_len` — discarding any torn tail — and positions for
    /// appends.
    pub fn open(path: &Path, valid_len: u64, policy: FsyncPolicy) -> Result<Self, DurableError> {
        let ctx = || path.display().to_string();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(DurableError::io(ctx()))?;
        file.set_len(valid_len).map_err(DurableError::io(ctx()))?;
        file.seek(SeekFrom::End(0))
            .map_err(DurableError::io(ctx()))?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            gate: FsyncGate::new(policy),
            appended: 0,
            unsynced: false,
        })
    }

    /// Buffers one frame; returns its on-disk size in bytes. The record
    /// is not durable until [`commit`](Self::commit) (policy permitting)
    /// or [`sync`](Self::sync).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, DurableError> {
        let payload = codec::encode_record(record);
        let frame = FRAME_HEADER + payload.len() as u64;
        self.out
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|_| self.out.write_all(&crc32(&payload).to_le_bytes()))
            .and_then(|_| self.out.write_all(&payload))
            .map_err(DurableError::io("wal append"))?;
        self.appended += frame;
        self.unsynced = true;
        Ok(frame)
    }

    /// Flushes buffered frames to the OS and, when the fsync policy
    /// says the batch is a durability point, syncs them to stable
    /// storage. Returns the commit's timing stamp.
    pub fn commit(&mut self) -> Result<CommitStamp, DurableError> {
        let start = Instant::now();
        self.out.flush().map_err(DurableError::io("wal flush"))?;
        let fsync = if self.unsynced && self.gate.due() {
            Some(self.sync_inner()?)
        } else {
            None
        };
        Ok(CommitStamp {
            wall: start.elapsed(),
            fsync,
        })
    }

    /// Flushes and syncs unconditionally — the barrier before writing a
    /// snapshot that claims the journal prefix, and the final act of a
    /// clean shutdown.
    pub fn sync(&mut self) -> Result<Duration, DurableError> {
        self.out.flush().map_err(DurableError::io("wal flush"))?;
        self.sync_inner()
    }

    fn sync_inner(&mut self) -> Result<Duration, DurableError> {
        let start = Instant::now();
        self.out
            .get_ref()
            .sync_data()
            .map_err(DurableError::io("wal fsync"))?;
        self.unsynced = false;
        Ok(start.elapsed())
    }

    /// Bytes appended through this writer since it was opened.
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.gate.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel};

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Place {
                id: VmId(seq),
                spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
            },
            outcome: WalOutcome::Placed(PmId(0)),
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slackvm-wal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn append_scan_roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, 0, FsyncPolicy::Off).unwrap();
        for seq in 1..=5 {
            w.append(&record(seq)).unwrap();
        }
        assert_eq!(
            w.commit().unwrap().fsync,
            None,
            "Off policy never fsyncs"
        );
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.last_seq(), Some(5));
        assert_eq!(scan.truncated_bytes(), 0);

        // Reopen at the valid prefix and extend.
        let mut w = WalWriter::open(&path, scan.valid_len, FsyncPolicy::Every).unwrap();
        w.append(&record(6)).unwrap();
        let stamp = w.commit().unwrap();
        assert!(stamp.fsync.is_some(), "Every policy fsyncs");
        assert!(stamp.wall >= stamp.fsync.unwrap(), "fsync is part of wall");
        drop(w);
        assert_eq!(scan_wal(&path).unwrap().last_seq(), Some(6));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_truncate_to_the_valid_prefix() {
        let mut image = Vec::new();
        let mut lens = vec![0u64];
        for seq in 1..=3 {
            let payload = codec::encode_record(&record(seq));
            image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            image.extend_from_slice(&crc32(&payload).to_le_bytes());
            image.extend_from_slice(&payload);
            lens.push(image.len() as u64);
        }
        // Chopping at every byte offset keeps exactly the frames that
        // fit whole.
        for cut in 0..=image.len() {
            let scan = scan_bytes(&image[..cut]);
            let whole = lens.iter().filter(|&&l| l <= cut as u64).count() - 1;
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            assert_eq!(scan.valid_len, lens[whole], "cut at {cut}");
        }
        // A flipped payload bit invalidates that frame and everything
        // after it.
        let mut flipped = image.clone();
        let mid_frame = lens[1] as usize + 12;
        flipped[mid_frame] ^= 0x40;
        let scan = scan_bytes(&flipped);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.truncated_bytes(), image.len() as u64 - lens[1]);
    }

    #[test]
    fn reopen_discards_the_torn_tail_permanently() {
        let path = temp_path("tear");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, 0, FsyncPolicy::Off).unwrap();
        for seq in 1..=2 {
            w.append(&record(seq)).unwrap();
        }
        w.commit().unwrap();
        drop(w);
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len() as u64;
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3, 4, 5]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.valid_len, full);
        assert!(scan.truncated_bytes() > 0);
        let w = WalWriter::open(&path, scan.valid_len, FsyncPolicy::Off).unwrap();
        drop(w);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            full,
            "orphaned tail bytes must not survive a reopen"
        );
        let _ = std::fs::remove_file(&path);
    }
}
