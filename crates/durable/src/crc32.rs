//! CRC-32 (ISO-HDLC / IEEE 802.3), the checksum guarding WAL frames
//! and snapshot payloads.
//!
//! Hand-rolled table-driven implementation — the workspace takes no
//! external checksum dependency. The polynomial and bit order match
//! zlib's `crc32()`, so frames remain checkable with standard tooling.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Checksum of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_vector() {
        // The catalogued check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
