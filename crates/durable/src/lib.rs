//! # slackvm-durable
//!
//! Crash durability for the placement service (`slackvm-serve`): a
//! per-shard write-ahead log of committed placement decisions, periodic
//! snapshots of the shard's logical state, and the recovery path that
//! rebuilds a shard after `kill -9`.
//!
//! The design leans entirely on *decision determinism* — the property,
//! proven differentially by `tests/index_differential.rs` and
//! `tests/serve_differential.rs`, that replaying the same operation
//! sequence against the same deployment model reproduces the same
//! placements. Because decisions are deterministic the WAL does not
//! need to persist hypervisor internals (core pins, vNode spans): it
//! records each *decision* (`Place vm-7 → pm-3`), and recovery replays
//! the decision through a directed placement primitive that rebuilds an
//! equivalent internal layout.
//!
//! Layout of a state directory:
//!
//! ```text
//! <state-dir>/
//!   MANIFEST                 # service shape: shards, model, index mode
//!   shard-0/
//!     wal.log                # CRC32-framed append-only decision log
//!     snap-00000000000000000042.snap
//!   shard-1/ ...
//! ```
//!
//! The WAL is never truncated by snapshotting: snapshots bound
//! *recovery time*, while the full journal from genesis is what lets
//! [`fsck_shard`] re-derive every decision offline and prove the
//! recovered state is the one the service actually committed.
//!
//! All on-disk encodings are hand-rolled little-endian binary (see
//! [`codec`]) — a durability layer should not entangle its file formats
//! with a serialization framework's evolution.

#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod error;
pub mod manifest;
pub mod recovery;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use error::DurableError;
pub use manifest::{Manifest, ManifestModel, MANIFEST_FILE};
pub use recovery::{fsck_shard, recover_shard, shard_dir, FsckReport, RecoveryReport};
pub use shard::{DurableOptions, ShardDurable};
pub use slackvm_telemetry::FsyncPolicy;
pub use snapshot::{load_latest_snapshot, prune_snapshots, read_snapshot, write_snapshot};
pub use wal::{scan_wal, CommitStamp, WalOp, WalOutcome, WalRecord, WalScan, WalWriter, WAL_FILE};
