//! The plan validator: invariants are checked, not trusted.
//!
//! A plan is data that may have travelled — computed against an older
//! snapshot, deserialized from an operator's file, or produced by a
//! buggy planner. Before anything moves, the validator replays the
//! whole plan in order against *shadow clones* of the live hosts, so
//! every hard constraint (capacity, oversubscription ratios,
//! pooled-vNode rules) is enforced by the same `Host::can_host` /
//! `deploy` admission path the cluster itself uses. Any mismatch
//! rejects the plan whole — a stale plan is never partially applied.

use std::collections::{BTreeMap, BTreeSet};

use slackvm_hypervisor::Host;
use slackvm_model::{PmId, VmId};
use slackvm_sim::{Cluster, DeploymentModel};

use crate::plan::{PlannedMove, RebalancePlan};
use crate::RebalanceError;

/// Validates `plan` against the live `model`. `Ok(())` means every
/// move, applied in order, lands on a live PM that admits it, and the
/// plan stays within its own budget.
pub fn validate_plan(model: &DeploymentModel, plan: &RebalancePlan) -> Result<(), RebalanceError> {
    validate_plan_avoiding(model, plan, &BTreeSet::new())
}

/// Like [`validate_plan`], additionally rejecting any move that
/// touches a PM in `avoid` (the online executor's draining set).
pub fn validate_plan_avoiding(
    model: &DeploymentModel,
    plan: &RebalancePlan,
    avoid: &BTreeSet<PmId>,
) -> Result<(), RebalanceError> {
    plan.budget.validate().map_err(RebalanceError::Budget)?;
    if plan.moves.len() as u32 > plan.budget.max_migrations {
        return Err(RebalanceError::Invalid(format!(
            "{} moves exceed the {}-migration budget",
            plan.moves.len(),
            plan.budget.max_migrations
        )));
    }
    let total_mem: u64 = plan.moves.iter().map(|mv| mv.spec.mem_mib()).sum();
    if total_mem > plan.budget.max_moved_mem_mib {
        return Err(RebalanceError::Invalid(format!(
            "{total_mem} MiB moved exceeds the {} MiB budget",
            plan.budget.max_moved_mem_mib
        )));
    }
    let mut seen: BTreeSet<VmId> = BTreeSet::new();
    for mv in &plan.moves {
        if !seen.insert(mv.vm) {
            return Err(RebalanceError::Invalid(format!(
                "{} is moved more than once",
                mv.vm
            )));
        }
    }
    if plan.model != model.name() {
        return Err(RebalanceError::Stale(format!(
            "plan was computed for model '{}', cluster is '{}'",
            plan.model,
            model.name()
        )));
    }

    match model {
        DeploymentModel::Shared(s) => {
            let mut shadow = Shadow::of(&s.cluster, avoid);
            for mv in &plan.moves {
                shadow.apply(mv)?;
            }
        }
        DeploymentModel::Dedicated(d) => {
            let mut shadows: BTreeMap<_, _> = d
                .clusters()
                .map(|(level, cluster)| (level, Shadow::of(cluster, avoid)))
                .collect();
            for mv in &plan.moves {
                let shadow = shadows.get_mut(&mv.spec.level).ok_or_else(|| {
                    RebalanceError::Invalid(format!(
                        "{} targets unconfigured level {}",
                        mv.vm, mv.spec.level
                    ))
                })?;
                shadow.apply(mv)?;
            }
        }
    }
    Ok(())
}

/// Shadow clones of one (sub)cluster's hosts, replaying moves through
/// the authoritative admission path.
struct Shadow<H: Host + Clone> {
    hosts: Vec<H>,
    blocked: Vec<bool>,
}

impl<H: Host + Clone> Shadow<H> {
    fn of(cluster: &Cluster<H>, avoid: &BTreeSet<PmId>) -> Self {
        let hosts: Vec<H> = cluster.hosts().to_vec();
        let blocked = hosts
            .iter()
            .map(|h| cluster.is_failed(h.id()) || avoid.contains(&h.id()))
            .collect();
        Shadow { hosts, blocked }
    }

    fn apply(&mut self, mv: &PlannedMove) -> Result<(), RebalanceError> {
        let from = mv.from.0 as usize;
        let to = mv.to.0 as usize;
        if from >= self.hosts.len() {
            return Err(RebalanceError::Stale(format!(
                "{} names unknown source pm-{}",
                mv.vm, mv.from.0
            )));
        }
        if to >= self.hosts.len() {
            return Err(RebalanceError::Invalid(format!(
                "{} names unknown destination pm-{}",
                mv.vm, mv.to.0
            )));
        }
        if from == to {
            return Err(RebalanceError::Invalid(format!(
                "{} moves onto its own source pm-{}",
                mv.vm, mv.from.0
            )));
        }
        if self.blocked[from] || self.blocked[to] {
            return Err(RebalanceError::Invalid(format!(
                "{} touches a failed/draining pm (pm-{} -> pm-{})",
                mv.vm, mv.from.0, mv.to.0
            )));
        }
        let spec = self.hosts[from].remove(mv.vm).map_err(|_| {
            RebalanceError::Stale(format!("{} is not on pm-{}", mv.vm, mv.from.0))
        })?;
        if spec != mv.spec {
            return Err(RebalanceError::Stale(format!(
                "{} spec changed since planning ({} != {})",
                mv.vm, spec, mv.spec
            )));
        }
        if !self.hosts[to].can_host(&spec) {
            return Err(RebalanceError::Invalid(format!(
                "pm-{} cannot host {} ({})",
                mv.to.0, mv.vm, spec
            )));
        }
        self.hosts[to].deploy(mv.vm, spec).map_err(|e| {
            RebalanceError::Invalid(format!("pm-{} rejected {}: {e}", mv.to.0, mv.vm))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Budget;
    use crate::planner::plan_rebalance;
    use slackvm_model::{gib, OversubLevel, VmSpec};
    use slackvm_sched::PlacementPolicy;
    use slackvm_sim::SharedDeployment;
    use std::sync::Arc;

    fn spec(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(1))
    }

    fn fragmented() -> DeploymentModel {
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), spec(20, 80)).unwrap();
        s.deploy(VmId(1), spec(20, 80)).unwrap();
        s.remove(VmId(0)).unwrap();
        s.deploy(VmId(2), spec(4, 16)).unwrap();
        DeploymentModel::Shared(s)
    }

    #[test]
    fn accepts_a_fresh_plan() {
        let model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        assert!(!plan.is_empty());
        validate_plan(&model, &plan).unwrap();
    }

    #[test]
    fn rejects_every_tampered_mutation() {
        let model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();

        // Swapped endpoints: the VM is not at `from`.
        let mut tampered = plan.clone();
        tampered.moves[0].from = PmId(1);
        tampered.moves[0].to = PmId(0);
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Stale(_))
        ));

        // Self-move.
        let mut tampered = plan.clone();
        tampered.moves[0].to = tampered.moves[0].from;
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Invalid(_))
        ));

        // Unknown destination.
        let mut tampered = plan.clone();
        tampered.moves[0].to = PmId(99);
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Invalid(_))
        ));

        // Oversized spec lie: claims fewer resources than the VM has.
        let mut tampered = plan.clone();
        tampered.moves[0].spec = spec(1, 1);
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Stale(_))
        ));

        // Duplicate move of the same VM.
        let mut tampered = plan.clone();
        let dup = tampered.moves[0];
        tampered.moves.push(dup);
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Invalid(_))
        ));

        // More moves than the budget admits.
        let mut tampered = plan.clone();
        tampered.budget = Budget {
            max_migrations: 1,
            ..Budget::default()
        };
        let mut extra = tampered.moves[0];
        extra.vm = VmId(1);
        extra.spec = spec(20, 80);
        extra.from = PmId(1);
        extra.to = PmId(0);
        tampered.moves.push(extra);
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Invalid(_))
        ));

        // Wrong model label.
        let mut tampered = plan.clone();
        tampered.model = "dedicated/first-fit".into();
        assert!(matches!(
            validate_plan(&model, &tampered),
            Err(RebalanceError::Stale(_))
        ));
    }

    #[test]
    fn rejects_moves_touching_failed_or_draining_pms() {
        let model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        // The destination starts draining after planning.
        let avoid: BTreeSet<PmId> = [plan.moves[0].to].into();
        assert!(matches!(
            validate_plan_avoiding(&model, &plan, &avoid),
            Err(RebalanceError::Invalid(_))
        ));
        // The destination fails after planning.
        let mut model = model;
        model.fail_host(plan.moves[0].to);
        assert!(matches!(
            validate_plan(&model, &plan),
            Err(RebalanceError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_a_stale_snapshot_plan() {
        let model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        // The cluster changes underneath: the planned VM departs.
        let mut model = model;
        model.remove(VmId(2)).unwrap();
        assert!(matches!(
            validate_plan(&model, &plan),
            Err(RebalanceError::Stale(_))
        ));
    }

    #[test]
    fn rejects_an_infeasible_destination() {
        let mut model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        // The destination fills up after planning: VM1 grows in place
        // and pm1's headroom drops below the planned VM's needs.
        model.resize(VmId(1), 30, gib(120)).unwrap();
        assert!(matches!(
            validate_plan(&model, &plan),
            Err(RebalanceError::Invalid(_))
        ));
    }
}
