//! The greedy consolidation planner.
//!
//! Strategy (Stillwell-style periodic re-optimization, bounded by a
//! migration budget): walk the fleet's PMs from least to most
//! utilized and try to *fully* drain each one into the rest of the
//! fleet. Destinations are chosen by the same filter+score pipeline
//! admission uses — gather feasible candidates through the
//! [`CandidateIndex`], let the deployment's [`PlacementPolicy`] pick —
//! so consolidation reinforces the packing objective instead of
//! fighting it. A victim that cannot be fully drained (or whose drain
//! would bust the budget) is left untouched: partial drains move
//! memory without freeing a PM, the worst of both worlds.
//!
//! All planning happens on *shadow hosts* — clones of the real
//! machines — so every tentative move runs the authoritative
//! `Host::can_host`/`deploy` admission path (capacity,
//! oversubscription ratios, pooled-vNode rules) without touching the
//! live cluster.

use std::collections::BTreeSet;

use slackvm_hypervisor::Host;
use slackvm_model::PmId;
use slackvm_sched::{AdmissionKey, Candidate, CandidateIndex, PlacementPolicy};
use slackvm_sim::{Cluster, DeploymentModel};

use crate::plan::{Budget, PlannedMove, RebalancePlan};
use crate::RebalanceError;

/// Plans a consolidation pass over the whole deployment.
pub fn plan_rebalance(
    model: &DeploymentModel,
    budget: &Budget,
) -> Result<RebalancePlan, RebalanceError> {
    plan_rebalance_avoiding(model, budget, &BTreeSet::new())
}

/// Plans a consolidation pass that never touches the PMs in `avoid`
/// (neither as source nor destination) — the online executor passes
/// its draining set here; failed PMs are always excluded.
///
/// For the dedicated baseline, `avoid` applies to every per-level
/// sub-cluster (PM ids are per-level namespaces).
pub fn plan_rebalance_avoiding(
    model: &DeploymentModel,
    budget: &Budget,
    avoid: &BTreeSet<PmId>,
) -> Result<RebalancePlan, RebalanceError> {
    budget.validate().map_err(RebalanceError::Budget)?;
    let mut moves = Vec::new();
    let mut used_moves = 0u32;
    let mut used_mem = 0u64;
    let pms_freed = match model {
        DeploymentModel::Shared(s) => plan_cluster(
            &s.cluster,
            &s.policy,
            avoid,
            budget,
            &mut used_moves,
            &mut used_mem,
            &mut moves,
        ),
        DeploymentModel::Dedicated(d) => {
            // The baseline always packs First-Fit; consolidation must
            // not introduce a smarter policy than admission has.
            let first_fit = PlacementPolicy::FirstFit;
            d.clusters()
                .map(|(_, cluster)| {
                    plan_cluster(
                        cluster,
                        &first_fit,
                        avoid,
                        budget,
                        &mut used_moves,
                        &mut used_mem,
                        &mut moves,
                    )
                })
                .sum()
        }
    };
    Ok(RebalancePlan {
        model: model.name(),
        moves,
        pms_freed,
        moved_mem_mib: used_mem,
        budget: *budget,
    })
}

/// Drains what the budget allows from one (sub)cluster. Returns the
/// number of PMs freed; appends the staged moves to `moves`.
fn plan_cluster<H: Host + Clone>(
    cluster: &Cluster<H>,
    policy: &PlacementPolicy,
    avoid: &BTreeSet<PmId>,
    budget: &Budget,
    used_moves: &mut u32,
    used_mem: &mut u64,
    moves: &mut Vec<PlannedMove>,
) -> u32 {
    let mut shadow: Vec<H> = cluster.hosts().to_vec();
    let blocked: Vec<bool> = shadow
        .iter()
        .map(|h| cluster.is_failed(h.id()) || avoid.contains(&h.id()))
        .collect();

    // Cheapest-to-free first: ascending mean utilization, then fewer
    // VMs, then *higher* PM id — freeing trailing ids preserves the
    // First-Fit consolidation bias at the front of the fleet.
    let mut victims: Vec<usize> = (0..shadow.len())
        .filter(|&i| !blocked[i] && shadow[i].num_vms() > 0)
        .collect();
    victims.sort_by(|&a, &b| {
        utilization(&shadow[a])
            .total_cmp(&utilization(&shadow[b]))
            .then(shadow[a].num_vms().cmp(&shadow[b].num_vms()))
            .then(shadow[b].id().cmp(&shadow[a].id()))
    });

    // Destinations are *active* PMs only: moving a VM onto an empty
    // machine frees the victim but occupies the destination — a net
    // zero that re-plans forever (drain A into empty B, then B into
    // empty A). Empty PMs are the consolidation win, never a target.
    let mut index = CandidateIndex::new();
    for (i, host) in shadow.iter().enumerate() {
        debug_assert_eq!(host.id().0 as usize, i, "hosts are dense by PmId");
        if !blocked[i] && host.num_vms() > 0 {
            let (candidate, key) = index_entry(host);
            index.upsert(candidate, key);
        }
    }

    let mut received: BTreeSet<PmId> = BTreeSet::new();
    let mut buf: Vec<Candidate> = Vec::new();
    let mut freed = 0u32;
    for &v in &victims {
        let victim_pm = shadow[v].id();
        // A PM that absorbed another victim's VMs stays put: draining
        // it would undo the consolidation we just planned.
        if received.contains(&victim_pm) {
            continue;
        }
        let placements = shadow[v].placements();
        let victim_mem: u64 = placements.iter().map(|(_, spec)| spec.mem_mib()).sum();
        if *used_moves + placements.len() as u32 > budget.max_migrations
            || *used_mem + victim_mem > budget.max_moved_mem_mib
        {
            // Over budget for this victim; a smaller one may still fit.
            continue;
        }

        index.retire(victim_pm);
        let mut staged: Vec<PlannedMove> = Vec::new();
        let mut drained = true;
        for (vm, spec) in &placements {
            index.gather_into(&mut buf, spec.mem_mib(), spec.vcpus());
            buf.retain(|c| shadow[c.id.0 as usize].can_host(spec));
            let Some(to) = policy.select(&buf, spec) else {
                drained = false;
                break;
            };
            let lifted = shadow[v].remove(*vm).expect("victim hosts the vm");
            shadow[to.0 as usize]
                .deploy(*vm, lifted)
                .expect("can_host admitted the vm");
            let (candidate, key) = index_entry(&shadow[to.0 as usize]);
            index.upsert(candidate, key);
            staged.push(PlannedMove {
                vm: *vm,
                spec: lifted,
                from: victim_pm,
                to,
            });
        }

        if drained && !staged.is_empty() {
            *used_moves += staged.len() as u32;
            *used_mem += victim_mem;
            received.extend(staged.iter().map(|mv| mv.to));
            moves.extend(staged);
            freed += 1;
            // The drained victim stays retired: it is the freed
            // capacity and must not become a destination again.
        } else {
            // All-or-nothing: undo the partial drain on the shadows.
            for mv in staged.iter().rev() {
                let spec = shadow[mv.to.0 as usize]
                    .remove(mv.vm)
                    .expect("staged move is present");
                shadow[v]
                    .deploy(mv.vm, spec)
                    .expect("victim re-admits its own vm");
                let (candidate, key) = index_entry(&shadow[mv.to.0 as usize]);
                index.upsert(candidate, key);
            }
            let (candidate, key) = index_entry(&shadow[v]);
            index.upsert(candidate, key);
        }
    }
    freed
}

fn utilization<H: Host>(host: &H) -> f64 {
    let config = host.config();
    let alloc = host.alloc();
    let cpu = alloc.cpu.as_cores_f64() / config.cores as f64;
    let mem = alloc.mem_mib as f64 / config.mem_mib as f64;
    0.5 * (cpu + mem)
}

fn index_entry<H: Host>(host: &H) -> (Candidate, AdmissionKey) {
    let headroom = host.admission_headroom();
    (
        Candidate {
            id: host.id(),
            config: host.config(),
            alloc: host.alloc(),
            vms: host.num_vms(),
        },
        AdmissionKey {
            free_mem_mib: headroom.free_mem_mib,
            free_vcpus: headroom.free_vcpus,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, PmConfig, VmId, VmSpec};
    use slackvm_sim::{DedicatedDeployment, SharedDeployment};
    use std::sync::Arc;

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    /// pm0 nearly empty (one small VM), pm1 heavy: the classic
    /// departure-fragmentation shape.
    fn fragmented_shared() -> DeploymentModel {
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), spec(20, 80, 1)).unwrap();
        s.deploy(VmId(1), spec(20, 80, 1)).unwrap();
        s.remove(VmId(0)).unwrap();
        s.deploy(VmId(2), spec(4, 16, 1)).unwrap();
        DeploymentModel::Shared(s)
    }

    #[test]
    fn drains_the_least_utilized_pm() {
        let model = fragmented_shared();
        assert_eq!(model.active_pms(), 2);
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        assert_eq!(plan.pms_freed, 1);
        assert_eq!(plan.moves.len(), 1);
        let mv = plan.moves[0];
        assert_eq!(mv.vm, VmId(2));
        assert_eq!(mv.from, PmId(0));
        assert_eq!(mv.to, PmId(1));
        assert_eq!(plan.moved_mem_mib, gib(16));
    }

    #[test]
    fn respects_the_memory_budget() {
        let model = fragmented_shared();
        let tight = Budget {
            max_moved_mem_mib: gib(8),
            ..Budget::default()
        };
        let plan = plan_rebalance(&model, &tight).unwrap();
        assert!(plan.is_empty(), "{plan:?}");
        assert_eq!(plan.pms_freed, 0);
    }

    #[test]
    fn rejects_a_degenerate_budget() {
        let model = fragmented_shared();
        let broken = Budget {
            max_migrations: 0,
            ..Budget::default()
        };
        assert!(matches!(
            plan_rebalance(&model, &broken),
            Err(RebalanceError::Budget(_))
        ));
    }

    #[test]
    fn never_touches_failed_or_avoided_pms() {
        // Avoiding the only destination leaves nothing to plan.
        let model = fragmented_shared();
        let avoid: BTreeSet<PmId> = [PmId(1)].into();
        let plan = plan_rebalance_avoiding(&model, &Budget::default(), &avoid).unwrap();
        assert!(plan.is_empty(), "{plan:?}");

        // Same if the destination is failed.
        let mut model = fragmented_shared();
        model.fail_host(PmId(1));
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        assert!(plan.is_empty(), "{plan:?}");

        // Avoiding the victim also empties the plan.
        let model = fragmented_shared();
        let avoid: BTreeSet<PmId> = [PmId(0)].into();
        let plan = plan_rebalance_avoiding(&model, &Budget::default(), &avoid).unwrap();
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn all_or_nothing_per_victim() {
        // pm0 hosts two VMs; only one of them fits anywhere else. The
        // victim must be left alone entirely, not half-drained.
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), spec(4, 16, 1)).unwrap();
        s.deploy(VmId(1), spec(24, 96, 1)).unwrap(); // pm0 is now 28c/112g
        s.deploy(VmId(2), spec(20, 80, 1)).unwrap(); // pm1: 12c/48g free
        let model = DeploymentModel::Shared(s);
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        // pm1 is the lighter victim but its 20c VM fits nowhere (pm0
        // has 4c free); pm0's pair can't fully move either.
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn never_drains_into_an_empty_pm() {
        // pm0 active, pm1 opened but empty: "draining" pm0 into pm1
        // would free one PM by occupying another — a net zero the
        // planner must not propose (and would re-propose forever).
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), spec(20, 80, 1)).unwrap();
        s.deploy(VmId(1), spec(20, 80, 1)).unwrap();
        s.deploy(VmId(2), spec(4, 16, 1)).unwrap(); // pm0 with vm0
        s.remove(VmId(1)).unwrap(); // pm1 empty but opened
        let model = DeploymentModel::Shared(s);
        assert_eq!(model.active_pms(), 1);
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn replanning_after_apply_quiesces() {
        // plan -> apply -> replan must reach a fixed point; each
        // accepted plan strictly reduces the active-PM count, so the
        // loop is bounded by the fleet size.
        let mut model = fragmented_shared();
        let budget = Budget::default();
        let mut rounds = 0;
        loop {
            let plan = plan_rebalance(&model, &budget).unwrap();
            if plan.is_empty() {
                break;
            }
            let before = model.active_pms();
            crate::apply_plan(&mut model, &plan).unwrap();
            assert!(model.active_pms() < before, "a plan must free a PM");
            rounds += 1;
            assert!(rounds <= 4, "consolidation oscillates");
        }
        assert_eq!(model.active_pms(), 1);
    }

    #[test]
    fn dedicated_drains_within_each_level() {
        let mut model = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            [OversubLevel::of(1), OversubLevel::of(3)],
        ));
        model.deploy(VmId(0), spec(20, 80, 1)).unwrap();
        model.deploy(VmId(1), spec(20, 80, 1)).unwrap();
        model.remove(VmId(0)).unwrap();
        model.deploy(VmId(2), spec(4, 16, 1)).unwrap();
        model.deploy(VmId(10), spec(40, 20, 3)).unwrap();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        assert_eq!(plan.pms_freed, 1);
        assert_eq!(plan.moves.len(), 1);
        let mv = plan.moves[0];
        assert_eq!(mv.vm, VmId(2));
        assert_eq!(mv.spec.level, OversubLevel::of(1));
        assert_eq!((mv.from, mv.to), (PmId(0), PmId(1)));
    }
}
