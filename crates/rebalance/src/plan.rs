//! Plan and budget types shared by the planner, validator, and both
//! executors.

use slackvm_model::{PmId, VmId, VmSpec};

/// The migration cost budget a plan must stay within.
///
/// Consolidation is worthless if it costs more than the PMs it frees:
/// every live migration burns network bandwidth proportional to the
/// VM's memory and risks a brown-out on both endpoints. The budget
/// caps the damage per planning round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of migrations in one plan.
    pub max_migrations: u32,
    /// Maximum total memory moved, in MiB (the dominant live-migration
    /// cost driver).
    pub max_moved_mem_mib: u64,
    /// Maximum migrations in flight at once — the online executor's
    /// per-tick throttle; the offline executor applies serially and
    /// only records it.
    pub max_concurrent: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_migrations: 32,
            max_moved_mem_mib: slackvm_model::gib(256),
            max_concurrent: 4,
        }
    }
}

impl Budget {
    /// Rejects degenerate budgets (any zero bound means "never move
    /// anything" and is almost certainly a flag typo).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_migrations == 0 {
            return Err("max migrations must be >= 1".into());
        }
        if self.max_moved_mem_mib == 0 {
            return Err("max moved memory must be >= 1 MiB".into());
        }
        if self.max_concurrent == 0 {
            return Err("max concurrent migrations must be >= 1".into());
        }
        Ok(())
    }
}

/// One planned migration: move `vm` (with the spec the planner saw)
/// from `from` to `to`.
///
/// For the dedicated baseline, `spec.level` names the per-level
/// sub-cluster both endpoints live in (PM ids are per-level
/// namespaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMove {
    /// The VM to migrate.
    pub vm: VmId,
    /// Its spec at planning time — the validator rejects the plan if
    /// the live spec differs (a resize raced the planner).
    pub spec: VmSpec,
    /// Source PM.
    pub from: PmId,
    /// Destination PM.
    pub to: PmId,
}

/// An ordered migration plan. Moves must be applied in order: later
/// moves may depend on the headroom earlier moves created.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancePlan {
    /// The model label the plan was computed against.
    pub model: String,
    /// The migrations, in application order.
    pub moves: Vec<PlannedMove>,
    /// PMs the planner drained to empty (the consolidation win).
    pub pms_freed: u32,
    /// Total memory moved, in MiB.
    pub moved_mem_mib: u64,
    /// The budget the plan was computed under.
    pub budget: Budget,
}

impl RebalancePlan {
    /// True when the planner found nothing worth moving.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of planned migrations.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Hand-rolled JSON rendering (the export path stays off serde so
    /// it works in every build).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.moves.len() * 96);
        out.push_str("{\"model\":\"");
        out.push_str(&self.model.replace('\\', "\\\\").replace('"', "\\\""));
        out.push_str("\",\"pms_freed\":");
        out.push_str(&self.pms_freed.to_string());
        out.push_str(",\"migrations\":");
        out.push_str(&self.moves.len().to_string());
        out.push_str(",\"moved_mem_mib\":");
        out.push_str(&self.moved_mem_mib.to_string());
        out.push_str(",\"budget\":{\"max_migrations\":");
        out.push_str(&self.budget.max_migrations.to_string());
        out.push_str(",\"max_moved_mem_mib\":");
        out.push_str(&self.budget.max_moved_mem_mib.to_string());
        out.push_str(",\"max_concurrent\":");
        out.push_str(&self.budget.max_concurrent.to_string());
        out.push_str("},\"moves\":[");
        for (i, mv) in self.moves.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"vm\":{},\"from\":{},\"to\":{},\"vcpus\":{},\"mem_mib\":{},\"level\":{}}}",
                mv.vm.0,
                mv.from.0,
                mv.to.0,
                mv.spec.vcpus(),
                mv.spec.mem_mib(),
                mv.spec.level.ratio(),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "rebalance plan for {}: {} migration(s), {} PM(s) freed, {} MiB moved \
             (budget: {} moves / {} MiB / {} concurrent)\n",
            self.model,
            self.moves.len(),
            self.pms_freed,
            self.moved_mem_mib,
            self.budget.max_migrations,
            self.budget.max_moved_mem_mib,
            self.budget.max_concurrent,
        );
        for mv in &self.moves {
            out.push_str(&format!(
                "  {}  pm-{} -> pm-{}  ({})\n",
                mv.vm, mv.from.0, mv.to.0, mv.spec,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel};

    fn plan() -> RebalancePlan {
        RebalancePlan {
            model: "slackvm/progress".into(),
            moves: vec![PlannedMove {
                vm: VmId(7),
                spec: VmSpec::of(2, gib(4), OversubLevel::of(3)),
                from: PmId(5),
                to: PmId(1),
            }],
            pms_freed: 1,
            moved_mem_mib: gib(4),
            budget: Budget::default(),
        }
    }

    #[test]
    fn budget_rejects_zero_bounds() {
        assert!(Budget::default().validate().is_ok());
        for broken in [
            Budget {
                max_migrations: 0,
                ..Budget::default()
            },
            Budget {
                max_moved_mem_mib: 0,
                ..Budget::default()
            },
            Budget {
                max_concurrent: 0,
                ..Budget::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }

    #[test]
    fn json_rendering_is_stable() {
        let json = plan().to_json();
        assert_eq!(
            json,
            "{\"model\":\"slackvm/progress\",\"pms_freed\":1,\"migrations\":1,\
             \"moved_mem_mib\":4096,\"budget\":{\"max_migrations\":32,\
             \"max_moved_mem_mib\":262144,\"max_concurrent\":4},\
             \"moves\":[{\"vm\":7,\"from\":5,\"to\":1,\"vcpus\":2,\"mem_mib\":4096,\"level\":3}]}"
        );
    }

    #[test]
    fn human_rendering_names_endpoints() {
        let text = plan().render();
        assert!(text.contains("1 migration(s), 1 PM(s) freed"), "{text}");
        assert!(text.contains("vm-7  pm-5 -> pm-1"), "{text}");
    }
}
