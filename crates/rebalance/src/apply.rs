//! The offline executor: validate, then migrate for real.

use crate::plan::{PlannedMove, RebalancePlan};
use crate::validate::validate_plan;
use crate::RebalanceError;
use slackvm_sim::DeploymentModel;

/// What one [`apply_plan`] call did to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyReport {
    /// Migrations executed.
    pub migrations: u32,
    /// Total memory moved, in MiB.
    pub moved_mem_mib: u64,
    /// PMs hosting at least one VM before the plan ran.
    pub active_before: u32,
    /// PMs hosting at least one VM after the plan ran.
    pub active_after: u32,
}

impl ApplyReport {
    /// The consolidation win: PMs drained to empty.
    pub fn pms_freed(&self) -> u32 {
        self.active_before.saturating_sub(self.active_after)
    }

    /// One-line CLI rendering.
    pub fn render(&self) -> String {
        format!(
            "rebalance applied: {} migration(s), {} MiB moved, active PMs {} -> {} ({} freed)",
            self.migrations,
            self.moved_mem_mib,
            self.active_before,
            self.active_after,
            self.pms_freed(),
        )
    }
}

/// Validates `plan` against `model`, then executes it move by move.
///
/// A plan that fails validation leaves the model untouched — this is
/// the stale-snapshot defense: staleness is detected *before* the
/// first migration, never discovered halfway through. Should a
/// validated move still fail (which the exclusive borrow makes
/// unreachable in practice), every already-applied move is migrated
/// back before the error returns.
pub fn apply_plan(
    model: &mut DeploymentModel,
    plan: &RebalancePlan,
) -> Result<ApplyReport, RebalanceError> {
    validate_plan(model, plan)?;
    let active_before = model.active_pms();
    let mut applied: Vec<&PlannedMove> = Vec::with_capacity(plan.moves.len());
    for mv in &plan.moves {
        let failure = match model.migrate(mv.vm, mv.to) {
            Ok(from) if from == mv.from => {
                applied.push(mv);
                continue;
            }
            Ok(from) => {
                // Moved from an unexpected source: put it back there.
                model
                    .migrate(mv.vm, from)
                    .expect("undoing a just-made migration succeeds");
                format!("{} was on pm-{}, plan said pm-{}", mv.vm, from.0, mv.from.0)
            }
            Err(e) => e.to_string(),
        };
        // Unwind in reverse order: each source re-admits exactly what
        // it just gave up.
        for done in applied.iter().rev() {
            model
                .migrate(done.vm, done.from)
                .expect("rollback migration succeeds");
        }
        return Err(RebalanceError::Aborted {
            vm: mv.vm,
            reason: failure,
        });
    }
    Ok(ApplyReport {
        migrations: plan.moves.len() as u32,
        moved_mem_mib: plan.moved_mem_mib,
        active_before,
        active_after: model.active_pms(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Budget;
    use crate::planner::plan_rebalance;
    use slackvm_model::{gib, OversubLevel, PmId, VmId, VmSpec};
    use slackvm_sched::PlacementPolicy;
    use slackvm_sim::SharedDeployment;
    use std::sync::Arc;

    fn spec(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(1))
    }

    fn fragmented() -> DeploymentModel {
        let mut s = SharedDeployment::with_policy(
            Arc::new(slackvm_topology::builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), spec(20, 80)).unwrap();
        s.deploy(VmId(1), spec(20, 80)).unwrap();
        s.remove(VmId(0)).unwrap();
        s.deploy(VmId(2), spec(4, 16)).unwrap();
        DeploymentModel::Shared(s)
    }

    #[test]
    fn applying_a_plan_frees_the_pm() {
        let mut model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        let report = apply_plan(&mut model, &plan).unwrap();
        assert_eq!(report.pms_freed(), 1);
        assert_eq!(report.active_before, 2);
        assert_eq!(report.active_after, 1);
        assert_eq!(report.migrations, 1);
        assert_eq!(model.location_of(VmId(2)), Some(PmId(1)));
        model.check_invariants().unwrap();
        assert!(report.render().contains("active PMs 2 -> 1 (1 freed)"));
    }

    #[test]
    fn stale_plan_is_rejected_whole_and_model_untouched() {
        let mut model = fragmented();
        let plan = plan_rebalance(&model, &Budget::default()).unwrap();
        // The cluster changes underneath the planner.
        model.remove(VmId(2)).unwrap();
        model
            .deploy(VmId(3), spec(2, 8))
            .expect("fresh vm deploys fine");
        let before = model.capture_state();
        let err = apply_plan(&mut model, &plan);
        assert!(matches!(err, Err(RebalanceError::Stale(_))), "{err:?}");
        assert_eq!(
            model.capture_state().normalized(),
            before.normalized(),
            "a rejected plan must not move anything"
        );
    }

    #[test]
    fn empty_plan_applies_as_a_no_op() {
        let mut model = fragmented();
        let plan = RebalancePlan {
            model: model.name(),
            moves: vec![],
            pms_freed: 0,
            moved_mem_mib: 0,
            budget: Budget::default(),
        };
        let report = apply_plan(&mut model, &plan).unwrap();
        assert_eq!(report.migrations, 0);
        assert_eq!(report.pms_freed(), 0);
    }
}
