//! Fragmentation scoring: per-PM packability metrics over a deployment
//! snapshot.
//!
//! The scorer answers "how badly is the fleet packed right now?"
//! without proposing any moves — the planner consumes its utilization
//! ordering, operators read its rendering from the CLI, and the serve
//! tick uses its empty-PM potential to decide whether planning is
//! worth the latency.

use slackvm_hypervisor::Host;
use slackvm_model::{OversubLevel, PmId};
use slackvm_sched::ratio_distance;
use slackvm_sim::{Cluster, DeploymentModel};

/// Packability metrics for one PM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmScore {
    /// The PM (per-level namespace for the dedicated baseline).
    pub pm: PmId,
    /// The dedicated sub-cluster's level; `None` on the shared pool.
    pub level: Option<OversubLevel>,
    /// Hosted VMs.
    pub vms: usize,
    /// Whether the PM is marked failed (never a migration endpoint).
    pub failed: bool,
    /// Allocated physical cores / total cores.
    pub cpu_util: f64,
    /// Allocated memory / total memory.
    pub mem_util: f64,
    /// Free cores that cannot be sold at the PM's target M/C ratio
    /// because the matching memory is gone — stranded capacity.
    pub stranded_cores: f64,
    /// Free memory (GiB) that cannot be sold because the matching
    /// cores are gone.
    pub stranded_mem_gib: f64,
    /// Algorithm-2 distance of the allocated M/C ratio from the
    /// hardware target ([`slackvm_sched::ratio_distance`]).
    pub mc_distance: f64,
}

impl PmScore {
    /// Mean of CPU and memory utilization — the drain-order key: the
    /// emptier a PM, the cheaper it is to free.
    pub fn utilization(&self) -> f64 {
        0.5 * (self.cpu_util + self.mem_util)
    }

    /// True when nothing is hosted (the PM is already "free").
    pub fn is_empty(&self) -> bool {
        self.vms == 0
    }
}

/// Fleet-wide fragmentation summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FragmentationReport {
    /// One entry per opened PM, in scan order (shared: ascending PM
    /// id; dedicated: ascending level, then PM id).
    pub per_pm: Vec<PmScore>,
}

impl FragmentationReport {
    /// Opened PMs hosting nothing — capacity already reclaimed.
    pub fn empty_pms(&self) -> u32 {
        self.per_pm
            .iter()
            .filter(|s| s.is_empty() && !s.failed)
            .count() as u32
    }

    /// Total stranded cores across live PMs.
    pub fn stranded_cores(&self) -> f64 {
        self.live().map(|s| s.stranded_cores).sum()
    }

    /// Total stranded memory in GiB across live PMs.
    pub fn stranded_mem_gib(&self) -> f64 {
        self.live().map(|s| s.stranded_mem_gib).sum()
    }

    /// Empty-PM *potential*: an upper-bound estimate of how many
    /// active PMs could be drained, assuming their allocation packs
    /// perfectly into the rest of the fleet's headroom. The planner
    /// will usually free fewer (placement is not a fluid); the gap
    /// between potential and plan is the fragmentation the budget or
    /// the packing rules would not let us recover.
    pub fn drainable_potential(&self) -> u32 {
        let mut active: Vec<&PmScore> = self.live().filter(|s| !s.is_empty()).collect();
        active.sort_by(|a, b| a.utilization().total_cmp(&b.utilization()));
        let mut free_cpu: f64 = self
            .live()
            .filter(|s| !s.is_empty())
            .map(|s| 1.0 - s.cpu_util)
            .sum();
        let mut free_mem: f64 = self
            .live()
            .filter(|s| !s.is_empty())
            .map(|s| 1.0 - s.mem_util)
            .sum();
        let mut drained = 0u32;
        for pm in active {
            // Draining pm consumes its allocation elsewhere and removes
            // its own headroom from the pool.
            let need_cpu = pm.cpu_util;
            let need_mem = pm.mem_util;
            let lost_cpu = 1.0 - pm.cpu_util;
            let lost_mem = 1.0 - pm.mem_util;
            if free_cpu - lost_cpu >= need_cpu && free_mem - lost_mem >= need_mem {
                free_cpu -= lost_cpu + need_cpu;
                free_mem -= lost_mem + need_mem;
                drained += 1;
            } else {
                break;
            }
        }
        drained
    }

    /// Operator-facing rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fragmentation: {} PM(s) scanned, {} empty, potential {} drainable, \
             {:.1} stranded core(s), {:.1} GiB stranded\n",
            self.per_pm.len(),
            self.empty_pms(),
            self.drainable_potential(),
            self.stranded_cores(),
            self.stranded_mem_gib(),
        );
        for s in &self.per_pm {
            let level = match s.level {
                Some(level) => format!(" level {level}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  pm-{}{}: {} vm(s), cpu {:.0}%, mem {:.0}%, m/c distance {:.2}{}\n",
                s.pm.0,
                level,
                s.vms,
                100.0 * s.cpu_util,
                100.0 * s.mem_util,
                s.mc_distance,
                if s.failed { ", FAILED" } else { "" },
            ));
        }
        out
    }

    fn live(&self) -> impl Iterator<Item = &PmScore> {
        self.per_pm.iter().filter(|s| !s.failed)
    }
}

/// Scores every opened PM of a deployment snapshot.
pub fn score_model(model: &DeploymentModel) -> FragmentationReport {
    let mut report = FragmentationReport::default();
    match model {
        DeploymentModel::Shared(s) => score_cluster(&s.cluster, None, &mut report),
        DeploymentModel::Dedicated(d) => {
            for (level, cluster) in d.clusters() {
                score_cluster(cluster, Some(level), &mut report);
            }
        }
    }
    report
}

fn score_cluster<H: Host>(
    cluster: &Cluster<H>,
    level: Option<OversubLevel>,
    report: &mut FragmentationReport,
) {
    for host in cluster.hosts() {
        report
            .per_pm
            .push(score_host(host, level, cluster.is_failed(host.id())));
    }
}

fn score_host<H: Host>(host: &H, level: Option<OversubLevel>, failed: bool) -> PmScore {
    let config = host.config();
    let alloc = host.alloc();
    let cores = config.cores as f64;
    let mem_gib = config.mem_mib as f64 / 1024.0;
    let cpu_util = alloc.cpu.as_cores_f64() / cores;
    let mem_util = alloc.mem_mib as f64 / config.mem_mib as f64;
    let free_cores = cores - alloc.cpu.as_cores_f64();
    let free_mem_gib = mem_gib - alloc.mem_mib as f64 / 1024.0;
    let target = config.target_ratio().gib_per_core();
    // Free cores are sellable only with `target` GiB apiece alongside
    // them (and vice versa); the shortfall on either axis is stranded.
    let sellable_cores = (free_mem_gib / target).min(free_cores);
    PmScore {
        pm: host.id(),
        level,
        vms: host.num_vms(),
        failed,
        cpu_util,
        mem_util,
        stranded_cores: free_cores - sellable_cores,
        stranded_mem_gib: free_mem_gib - sellable_cores * target,
        mc_distance: ratio_distance(&config, &alloc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, VmId, VmSpec};
    use slackvm_sim::SharedDeployment;
    use std::sync::Arc;

    fn shared() -> SharedDeployment {
        SharedDeployment::new(Arc::new(slackvm_topology::builders::flat(32)), gib(128))
    }

    #[test]
    fn balanced_pm_scores_clean() {
        // 8 cores / 32 GiB on a 32-core / 128-GiB host: exactly the
        // 4 GiB-per-core target, nothing stranded.
        let mut s = shared();
        s.deploy(VmId(0), VmSpec::of(8, gib(32), OversubLevel::PREMIUM))
            .unwrap();
        let report = score_model(&DeploymentModel::Shared(s));
        assert_eq!(report.per_pm.len(), 1);
        let pm = &report.per_pm[0];
        assert_eq!(pm.vms, 1);
        assert!(pm.mc_distance.abs() < 1e-9, "{pm:?}");
        assert!(pm.stranded_cores.abs() < 1e-9, "{pm:?}");
        assert!(pm.stranded_mem_gib.abs() < 1e-9, "{pm:?}");
        assert!((pm.utilization() - 0.25).abs() < 1e-9, "{pm:?}");
    }

    #[test]
    fn memory_exhaustion_strands_cores() {
        // 2 cores / 120 GiB leaves 30 free cores but only 8 GiB: at
        // the 4.0 target only 2 of those cores are sellable.
        let mut s = shared();
        s.deploy(VmId(0), VmSpec::of(2, gib(120), OversubLevel::PREMIUM))
            .unwrap();
        let report = score_model(&DeploymentModel::Shared(s));
        let pm = &report.per_pm[0];
        assert!((pm.stranded_cores - 28.0).abs() < 1e-9, "{pm:?}");
        assert!(pm.stranded_mem_gib.abs() < 1e-9, "{pm:?}");
        assert!(pm.mc_distance > 0.0, "{pm:?}");
    }

    #[test]
    fn failed_pms_are_excluded_from_fleet_sums() {
        let mut s = shared();
        s.deploy(VmId(0), VmSpec::of(2, gib(120), OversubLevel::PREMIUM))
            .unwrap();
        let mut model = DeploymentModel::Shared(s);
        let stranded_before = score_model(&model).stranded_cores();
        assert!(stranded_before > 0.0);
        model.fail_host(PmId(0));
        let report = score_model(&model);
        assert!(report.per_pm[0].failed);
        assert_eq!(report.stranded_cores(), 0.0);
        assert_eq!(report.empty_pms(), 0, "failed PMs are not 'free'");
    }

    #[test]
    fn drainable_potential_sees_an_easy_merge() {
        // Three 62.5%-full PMs (no two VMs co-fit, so every policy
        // opens three): the aggregate headroom absorbs exactly one.
        let mut s = shared();
        for i in 0..3 {
            s.deploy(VmId(i), VmSpec::of(20, gib(80), OversubLevel::PREMIUM))
                .unwrap();
        }
        let report = score_model(&DeploymentModel::Shared(s));
        assert_eq!(report.per_pm.len(), 3);
        assert_eq!(report.drainable_potential(), 1);
        let text = report.render();
        assert!(text.contains("3 PM(s) scanned"), "{text}");
    }
}
