//! Background consolidation for SlackVM clusters.
//!
//! Admission-time packing (paper Algorithm 2) only ever *adds* VMs to
//! the balance it is optimizing; once VMs depart, fragmentation
//! accumulates and nothing moves the fleet back towards the target
//! M/C-balanced state. This crate is the repacking plane layered on
//! top of `sim`, `sched`, and (through `slackvm-serve`) the online
//! service:
//!
//! - [`score_model`] reads a [`DeploymentModel`](slackvm_sim::DeploymentModel)
//!   snapshot and computes per-PM packability metrics — free-core /
//!   free-memory stranding, the Algorithm-2 M/C ratio distance
//!   ([`slackvm_sched::ratio_distance`]), and empty-PM potential.
//! - [`plan_rebalance`] greedily drains the lowest-utilization PMs
//!   into the rest of the fleet through the existing filter+score
//!   pipeline and [`CandidateIndex`](slackvm_sched::CandidateIndex),
//!   subject to a migration cost [`Budget`].
//! - [`validate_plan`] replays a plan against the *live* model on
//!   shadow hosts before anything moves: capacity, oversubscription
//!   ratios, and pooled-vNode rules are enforced by the real
//!   `Host::deploy` admission path, not by trusting the planner. A
//!   plan computed against a stale snapshot is rejected whole, never
//!   partially applied.
//! - [`apply_plan`] executes a validated plan offline against a
//!   deployment model with rollback on unexpected failure, reporting
//!   the PM-count delta. The online executor in `slackvm-serve` uses
//!   the same plan/validate split, journalling each migration as a WAL
//!   record and throttling by `Budget::max_concurrent` per tick.

pub mod apply;
pub mod plan;
pub mod planner;
pub mod score;
pub mod validate;

pub use apply::{apply_plan, ApplyReport};
pub use plan::{Budget, PlannedMove, RebalancePlan};
pub use planner::{plan_rebalance, plan_rebalance_avoiding};
pub use score::{score_model, FragmentationReport, PmScore};
pub use validate::{validate_plan, validate_plan_avoiding};

use slackvm_model::VmId;

/// Why a plan was refused or an application aborted.
#[derive(Debug, thiserror::Error, PartialEq, Eq)]
pub enum RebalanceError {
    /// The migration budget itself is malformed (a zero bound).
    #[error("invalid budget: {0}")]
    Budget(String),

    /// The plan does not match the live cluster — computed against a
    /// stale snapshot, or the cluster changed underneath it. The model
    /// is untouched.
    #[error("stale plan: {0}")]
    Stale(String),

    /// The plan violates a hard constraint (budget conformance, failed
    /// or avoided PM, infeasible destination). The model is untouched.
    #[error("invalid plan: {0}")]
    Invalid(String),

    /// A validated move failed mid-application; every already-applied
    /// move was rolled back.
    #[error("apply aborted at {vm}: {reason}; applied moves rolled back")]
    Aborted {
        /// The VM whose migration failed.
        vm: VmId,
        /// The underlying failure.
        reason: String,
    },
}
