//! The typed event vocabulary of the journal.
//!
//! Every decision the stack takes during a replay — placements,
//! rejections, vNode resizes, pooling, compaction moves, failure
//! injections — is expressible as one [`Event`]. The enum is the schema:
//! it serializes with a `kind` tag so a JSONL journal is both grep-able
//! and loadable back into typed records.

use serde::{Deserialize, Serialize};

use slackvm_model::{PmId, VmId};

/// One observable fact about a run.
///
/// Oversubscription levels appear as their raw `n` (of the `n:1` ratio)
/// to keep the on-disk schema independent of model-crate invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Event {
    /// A VM arrived and a deployment was attempted.
    VmArrival {
        /// The arriving VM.
        vm: VmId,
        /// Requested vCPUs.
        vcpus: u32,
        /// Requested memory (MiB).
        mem_mib: u64,
        /// Purchased oversubscription level (`n` of `n:1`).
        level: u32,
    },
    /// A deployment succeeded.
    VmPlaced {
        /// The placed VM.
        vm: VmId,
        /// The chosen machine.
        pm: PmId,
        /// The VM's oversubscription level.
        level: u32,
    },
    /// A deployment failed (capped cluster, nothing fits).
    VmRejected {
        /// The rejected VM.
        vm: VmId,
        /// Requested vCPUs.
        vcpus: u32,
        /// Requested memory (MiB).
        mem_mib: u64,
        /// The VM's oversubscription level.
        level: u32,
    },
    /// A placed VM departed.
    VmDeparted {
        /// The departing VM.
        vm: VmId,
        /// The machine it left.
        pm: PmId,
    },
    /// A vertical resize was requested.
    VmResized {
        /// The resized VM.
        vm: VmId,
        /// New vCPU count.
        vcpus: u32,
        /// New memory (MiB).
        mem_mib: u64,
        /// Whether the hosting machine absorbed the new size.
        accepted: bool,
    },
    /// A machine was opened (provisioned into the cluster).
    PmOpened {
        /// The new machine.
        pm: PmId,
    },
    /// A machine became idle after a drain (advisory close).
    PmClosed {
        /// The drained machine.
        pm: PmId,
    },
    /// A vNode came into existence on a machine.
    VNodeCreated {
        /// Hosting machine.
        pm: PmId,
        /// The vNode's oversubscription level.
        level: u32,
        /// Span size in cores.
        cores: u32,
    },
    /// A vNode's span grew.
    VNodeGrew {
        /// Hosting machine.
        pm: PmId,
        /// The vNode's oversubscription level.
        level: u32,
        /// Span size before the growth.
        cores_before: u32,
        /// Span size after the growth.
        cores_after: u32,
    },
    /// A vNode's span shrank after departures.
    VNodeShrunk {
        /// Hosting machine.
        pm: PmId,
        /// The vNode's oversubscription level.
        level: u32,
        /// Span size before the shrink.
        cores_before: u32,
        /// Span size after the shrink.
        cores_after: u32,
    },
    /// A vNode dissolved (its last VM departed).
    VNodeDissolved {
        /// Hosting machine.
        pm: PmId,
        /// The dissolved vNode's level.
        level: u32,
    },
    /// Oversubscribed vNodes pooled into one execution span (§V-B).
    VNodePooled {
        /// Hosting machine.
        pm: PmId,
        /// Levels merged into the span.
        levels: Vec<u32>,
        /// Cores of the merged span (incl. absorbed free cores).
        cores: u32,
        /// vCPUs exposed on the span.
        vcpus: u32,
        /// The strictest pooled guarantee (`n` of `n:1`).
        guarantee: u32,
    },
    /// Pooling was infeasible; vNodes kept their own spans.
    VNodeUnpooled {
        /// Hosting machine.
        pm: PmId,
        /// Levels that stayed separate.
        levels: Vec<u32>,
    },
    /// A compaction plan was computed over cluster snapshots.
    CompactionPlanned {
        /// Planned migrations.
        moves: u32,
        /// Machines the plan would drain.
        releasable: u32,
    },
    /// One migration of a compaction round was applied.
    CompactionMove {
        /// The migrated VM.
        vm: VmId,
        /// Source machine.
        from: PmId,
        /// Destination machine.
        to: PmId,
    },
    /// A periodic compaction round completed.
    CompactionRound {
        /// 1-based round index.
        round: u32,
        /// Migrations applied this round.
        migrations: u32,
        /// Machines drained this round.
        drained: u32,
    },
    /// A host failure was injected.
    HostFailed {
        /// The failed machine.
        pm: PmId,
        /// VMs evicted by the failure.
        evicted: u32,
    },
    /// A VM was evicted by a host failure.
    VmEvicted {
        /// The evicted VM.
        vm: VmId,
        /// The failed machine it was on.
        pm: PmId,
    },
    /// An evicted VM was re-placed on a surviving host.
    VmReplaced {
        /// The re-placed VM.
        vm: VmId,
        /// Its new machine.
        pm: PmId,
    },
    /// An evicted VM could not be re-placed and was lost.
    VmLost {
        /// The lost VM.
        vm: VmId,
    },
    /// The dynamic-level recommender produced a retune suggestion.
    LevelRecommended {
        /// vCPUs exposed by the examined vNode.
        vcpus: u32,
        /// Current level (`n` of `n:1`).
        current: u32,
        /// Recommended level.
        recommended: u32,
        /// Cores a retune would free (negative: the span must grow).
        cores_freed: i64,
    },
}

impl Event {
    /// The event's `kind` tag, matching the serialized form.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::VmArrival { .. } => "vm_arrival",
            Event::VmPlaced { .. } => "vm_placed",
            Event::VmRejected { .. } => "vm_rejected",
            Event::VmDeparted { .. } => "vm_departed",
            Event::VmResized { .. } => "vm_resized",
            Event::PmOpened { .. } => "pm_opened",
            Event::PmClosed { .. } => "pm_closed",
            Event::VNodeCreated { .. } => "v_node_created",
            Event::VNodeGrew { .. } => "v_node_grew",
            Event::VNodeShrunk { .. } => "v_node_shrunk",
            Event::VNodeDissolved { .. } => "v_node_dissolved",
            Event::VNodePooled { .. } => "v_node_pooled",
            Event::VNodeUnpooled { .. } => "v_node_unpooled",
            Event::CompactionPlanned { .. } => "compaction_planned",
            Event::CompactionMove { .. } => "compaction_move",
            Event::CompactionRound { .. } => "compaction_round",
            Event::HostFailed { .. } => "host_failed",
            Event::VmEvicted { .. } => "vm_evicted",
            Event::VmReplaced { .. } => "vm_replaced",
            Event::VmLost { .. } => "vm_lost",
            Event::LevelRecommended { .. } => "level_recommended",
        }
    }

    /// The metrics-registry counter bumped once per recorded event.
    pub fn counter_name(&self) -> &'static str {
        match self {
            Event::VmArrival { .. } => "events.vm_arrival",
            Event::VmPlaced { .. } => "events.vm_placed",
            Event::VmRejected { .. } => "events.vm_rejected",
            Event::VmDeparted { .. } => "events.vm_departed",
            Event::VmResized { .. } => "events.vm_resized",
            Event::PmOpened { .. } => "events.pm_opened",
            Event::PmClosed { .. } => "events.pm_closed",
            Event::VNodeCreated { .. } => "events.v_node_created",
            Event::VNodeGrew { .. } => "events.v_node_grew",
            Event::VNodeShrunk { .. } => "events.v_node_shrunk",
            Event::VNodeDissolved { .. } => "events.v_node_dissolved",
            Event::VNodePooled { .. } => "events.v_node_pooled",
            Event::VNodeUnpooled { .. } => "events.v_node_unpooled",
            Event::CompactionPlanned { .. } => "events.compaction_planned",
            Event::CompactionMove { .. } => "events.compaction_move",
            Event::CompactionRound { .. } => "events.compaction_round",
            Event::HostFailed { .. } => "events.host_failed",
            Event::VmEvicted { .. } => "events.vm_evicted",
            Event::VmReplaced { .. } => "events.vm_replaced",
            Event::VmLost { .. } => "events.vm_lost",
            Event::LevelRecommended { .. } => "events.level_recommended",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_serde_tag() {
        let samples = vec![
            Event::VmArrival {
                vm: VmId(1),
                vcpus: 2,
                mem_mib: 4096,
                level: 3,
            },
            Event::VmPlaced {
                vm: VmId(1),
                pm: PmId(0),
                level: 3,
            },
            Event::VmRejected {
                vm: VmId(2),
                vcpus: 1,
                mem_mib: 1024,
                level: 1,
            },
            Event::VmDeparted {
                vm: VmId(1),
                pm: PmId(0),
            },
            Event::VmResized {
                vm: VmId(1),
                vcpus: 4,
                mem_mib: 8192,
                accepted: true,
            },
            Event::PmOpened { pm: PmId(0) },
            Event::PmClosed { pm: PmId(0) },
            Event::VNodeCreated {
                pm: PmId(0),
                level: 3,
                cores: 1,
            },
            Event::VNodeGrew {
                pm: PmId(0),
                level: 3,
                cores_before: 1,
                cores_after: 2,
            },
            Event::VNodeShrunk {
                pm: PmId(0),
                level: 3,
                cores_before: 2,
                cores_after: 1,
            },
            Event::VNodeDissolved {
                pm: PmId(0),
                level: 3,
            },
            Event::VNodePooled {
                pm: PmId(0),
                levels: vec![2, 3],
                cores: 8,
                vcpus: 12,
                guarantee: 2,
            },
            Event::VNodeUnpooled {
                pm: PmId(0),
                levels: vec![2, 3],
            },
            Event::CompactionPlanned {
                moves: 3,
                releasable: 1,
            },
            Event::CompactionMove {
                vm: VmId(1),
                from: PmId(0),
                to: PmId(1),
            },
            Event::CompactionRound {
                round: 1,
                migrations: 3,
                drained: 1,
            },
            Event::HostFailed {
                pm: PmId(0),
                evicted: 2,
            },
            Event::VmEvicted {
                vm: VmId(1),
                pm: PmId(0),
            },
            Event::VmReplaced {
                vm: VmId(1),
                pm: PmId(1),
            },
            Event::VmLost { vm: VmId(1) },
            Event::LevelRecommended {
                vcpus: 48,
                current: 3,
                recommended: 8,
                cores_freed: 10,
            },
        ];
        for event in samples {
            let json = serde_json::to_string(&event).unwrap();
            let tag = format!("\"kind\":\"{}\"", event.kind());
            assert!(json.contains(&tag), "{json} misses {tag}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
            assert_eq!(
                event.counter_name().strip_prefix("events.").unwrap(),
                event.kind()
            );
        }
    }
}
