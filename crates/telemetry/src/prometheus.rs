//! Prometheus text-exposition (format 0.0.4) rendering of the metrics
//! registry and time-series store.
//!
//! Output is deterministic: families appear as counters, gauges,
//! histograms, then time series, each alphabetically by name (the
//! registry's `BTreeMap` ordering), so two identical seeded runs render
//! byte-identical exposition. Metric names are sanitized to the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar and label values escaped per the
//! exposition rules (`\\`, `\"`, `\n`).

use crate::metrics::{Histogram, MetricsRegistry};
use crate::timeseries::TimeSeriesStore;

/// Prefix stamped on every exported family.
pub const METRIC_PREFIX: &str = "slackvm_";

/// The build identity stamped on every exposition as the conventional
/// `slackvm_build_info{version,git_sha} 1` info-gauge, so a scrape can
/// always be traced back to the producing build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// Crate version (workspace-wide).
    pub version: &'static str,
    /// Git commit, when the build stamped one via `SLACKVM_GIT_SHA`.
    pub git_sha: &'static str,
}

impl BuildInfo {
    /// The identity of this build: the Cargo package version plus the
    /// `SLACKVM_GIT_SHA` compile-time stamp (`"unknown"` outside
    /// sha-stamped builds).
    pub fn current() -> Self {
        BuildInfo {
            version: option_env!("CARGO_PKG_VERSION").unwrap_or("0.0.0"),
            git_sha: option_env!("SLACKVM_GIT_SHA").unwrap_or("unknown"),
        }
    }

    fn render(&self, out: &mut String) {
        let prom = format!("{METRIC_PREFIX}build_info");
        family(
            out,
            &prom,
            "Build identity of the exposition producer (always 1).",
            "gauge",
        );
        out.push_str(&prom);
        out.push_str("{version=\"");
        out.push_str(&escape_label_value(self.version));
        out.push_str("\",git_sha=\"");
        out.push_str(&escape_label_value(self.git_sha));
        out.push_str("\"} 1\n");
    }
}

/// Maps an internal metric name (dotted, dashed) onto the Prometheus
/// name grammar: invalid characters become `_` and a leading digit gets
/// a `_` prefix. An empty name renders as a single `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: backslash, double-quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Shortest decimal rendering of a sample value (integral values print
/// without a fraction; Prometheus accepts both).
fn number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(&escape_help(help));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn render_histogram(out: &mut String, name: &str, source: &str, h: &Histogram) {
    family(
        out,
        name,
        &format!("SlackVM latency histogram {source} (recorded units, typically microseconds)."),
        "histogram",
    );
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
        cumulative += count;
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        out.push_str(&number(*bound));
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    out.push_str(&h.count().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum ");
    out.push_str(&number(h.sum()));
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&h.count().to_string());
    out.push('\n');
}

/// Renders the registry alone (no time series).
pub fn render_metrics(metrics: &MetricsRegistry) -> String {
    render(metrics, None)
}

/// Renders the full exposition: the `slackvm_build_info` identity
/// gauge, then counters, gauges, histograms, and (when given) the
/// latest value of every sampled series as a labelled gauge family
/// `slackvm_timeseries{series="..."}`.
pub fn render(metrics: &MetricsRegistry, series: Option<&TimeSeriesStore>) -> String {
    let mut out = String::new();
    BuildInfo::current().render(&mut out);
    for (name, value) in metrics.counters() {
        let prom = format!("{METRIC_PREFIX}{}", sanitize_metric_name(name));
        family(
            &mut out,
            &prom,
            &format!("SlackVM counter {name}."),
            "counter",
        );
        out.push_str(&prom);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, value) in metrics.gauges() {
        let prom = format!("{METRIC_PREFIX}{}", sanitize_metric_name(name));
        family(&mut out, &prom, &format!("SlackVM gauge {name}."), "gauge");
        out.push_str(&prom);
        out.push(' ');
        out.push_str(&number(value));
        out.push('\n');
    }
    for (name, histogram) in metrics.histograms() {
        let prom = format!("{METRIC_PREFIX}{}", sanitize_metric_name(name));
        render_histogram(&mut out, &prom, name, histogram);
    }
    if let Some(store) = series {
        if !store.is_empty() {
            let prom = format!("{METRIC_PREFIX}timeseries");
            family(
                &mut out,
                &prom,
                "Latest sampled value per SlackVM time series.",
                "gauge",
            );
            for s in store.iter() {
                let Some(summary) = s.summary() else { continue };
                out.push_str(&prom);
                out.push_str("{series=\"");
                out.push_str(&escape_label_value(s.name()));
                out.push_str("\"} ");
                out.push_str(&number(summary.last));
                out.push('\n');
            }
        }
    }
    out
}

/// A strict line-level validator of the exposition grammar this module
/// emits — the "golden parser" CI smoke runs against real output.
///
/// Checks: `# HELP` precedes `# TYPE` per family, every sample belongs
/// to the most recently declared family (allowing `_bucket`/`_sum`/
/// `_count` suffixes for histograms), metric names match the grammar,
/// label blocks are well-formed, and values parse as numbers.
pub fn validate(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }

    let mut declared: Option<(String, String)> = None; // (family, kind)
    let mut pending_help: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {lineno}: bad HELP name {name:?}"));
            }
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {lineno}: bad TYPE name {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown type {kind:?}"));
            }
            if pending_help.as_deref() != Some(name) {
                return Err(format!("line {lineno}: TYPE {name} without preceding HELP"));
            }
            declared = Some((name.to_string(), kind.to_string()));
            pending_help = None;
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // A sample line: name[{labels}] value
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value on sample line"))?;
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        let mut label_keys: Vec<String> = Vec::new();
        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
                // Each label is key="value" with escaped quotes inside.
                let mut rest = labels;
                while !rest.is_empty() {
                    let (key, after_eq) = rest
                        .split_once("=\"")
                        .ok_or_else(|| format!("line {lineno}: malformed label in {labels:?}"))?;
                    if !valid_name(key) {
                        return Err(format!("line {lineno}: bad label name {key:?}"));
                    }
                    label_keys.push(key.to_string());
                    // Scan to the closing unescaped quote.
                    let mut close = None;
                    let mut escaped = false;
                    for (j, c) in after_eq.char_indices() {
                        if escaped {
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '"' {
                            close = Some(j);
                            break;
                        }
                    }
                    let close =
                        close.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
                    rest = after_eq[close + 1..].trim_start_matches(',');
                }
                name
            }
            None => name_and_labels,
        };
        if !valid_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        if name == "slackvm_build_info" {
            for required in ["version", "git_sha"] {
                if !label_keys.iter().any(|k| k == required) {
                    return Err(format!(
                        "line {lineno}: build_info sample missing {required:?} label"
                    ));
                }
            }
            if value != "1" {
                return Err(format!(
                    "line {lineno}: build_info value must be 1, got {value:?}"
                ));
            }
        }
        let Some((family, kind)) = &declared else {
            return Err(format!("line {lineno}: sample before any TYPE declaration"));
        };
        let belongs = if kind == "histogram" {
            name == family
                || name == format!("{family}_bucket")
                || name == format!("{family}_sum")
                || name == format!("{family}_count")
        } else {
            name == family
        };
        if !belongs {
            return Err(format!(
                "line {lineno}: sample {name} outside declared family {family}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// What `BuildInfo::current()` renders in the test environment,
    /// where `SLACKVM_GIT_SHA` is unset.
    fn build_info_family() -> String {
        format!(
            "# HELP slackvm_build_info Build identity of the exposition producer (always 1).\n\
             # TYPE slackvm_build_info gauge\n\
             slackvm_build_info{{version=\"{}\",git_sha=\"unknown\"}} 1\n",
            option_env!("CARGO_PKG_VERSION").unwrap_or("0.0.0")
        )
    }

    #[test]
    fn sanitization_maps_dots_and_digits() {
        assert_eq!(sanitize_metric_name("sim.dispatch"), "sim_dispatch");
        assert_eq!(sanitize_metric_name("vnode-width/l2"), "vnode_width_l2");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn label_escaping_covers_the_spec() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_help("back\\slash\nnl"), "back\\\\slash\\nnl");
    }

    #[test]
    fn golden_exposition_for_a_small_registry() {
        let mut m = MetricsRegistry::new();
        m.inc("sim.deployments", 42);
        m.set_gauge("sim.opened_pms", 7.0);
        m.register_histogram("sched.select", vec![1.0, 10.0]);
        m.observe("sched.select", 0.5);
        m.observe("sched.select", 5.0);
        m.observe("sched.select", 99.0);
        let text = render_metrics(&m);
        let expected = build_info_family()
            + "\
# HELP slackvm_sim_deployments SlackVM counter sim.deployments.
# TYPE slackvm_sim_deployments counter
slackvm_sim_deployments 42
# HELP slackvm_sim_opened_pms SlackVM gauge sim.opened_pms.
# TYPE slackvm_sim_opened_pms gauge
slackvm_sim_opened_pms 7
# HELP slackvm_sched_select SlackVM latency histogram sched.select (recorded units, typically microseconds).
# TYPE slackvm_sched_select histogram
slackvm_sched_select_bucket{le=\"1\"} 1
slackvm_sched_select_bucket{le=\"10\"} 2
slackvm_sched_select_bucket{le=\"+Inf\"} 3
slackvm_sched_select_sum 104.5
slackvm_sched_select_count 3
";
        assert_eq!(text, expected);
        validate(&text).unwrap();
    }

    #[test]
    fn series_export_escapes_labels() {
        use crate::timeseries::TimeSeriesStore;
        let m = MetricsRegistry::new();
        let mut store = TimeSeriesStore::new();
        store.record("weird\"name\\with\nstuff", 0, 1.0);
        store.record("cluster.active_pms", 0, 3.0);
        store.record("cluster.active_pms", 60, 4.0);
        let text = render(&m, Some(&store));
        assert!(text.contains("slackvm_timeseries{series=\"cluster.active_pms\"} 4"));
        assert!(text.contains("series=\"weird\\\"name\\\\with\\nstuff\""));
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        assert!(validate("bad name 1\n").is_err());
        assert!(
            validate("# TYPE x counter\nx 1\n").is_err(),
            "TYPE w/o HELP"
        );
        assert!(validate("# HELP x h\n# TYPE x counter\ny 1\n").is_err());
        assert!(validate("# HELP x h\n# TYPE x nonsense\n").is_err());
        assert!(validate("# HELP x h\n# TYPE x counter\nx{l=\"v} 1\n").is_err());
        assert!(validate("# HELP x h\n# TYPE x counter\nx notanumber\n").is_err());
        validate("# HELP x h\n# TYPE x counter\nx 1\n").unwrap();
    }

    #[test]
    fn empty_registry_renders_just_build_info() {
        let text = render_metrics(&MetricsRegistry::new());
        assert_eq!(text, build_info_family());
        validate(&text).unwrap();
    }

    #[test]
    fn validator_enforces_build_info_labels() {
        let head = "# HELP slackvm_build_info h\n# TYPE slackvm_build_info gauge\n";
        validate(&format!(
            "{head}slackvm_build_info{{version=\"1.0\",git_sha=\"abc\"}} 1\n"
        ))
        .unwrap();
        // Missing git_sha, missing version, bare sample, and a non-1 value.
        for bad in [
            "slackvm_build_info{version=\"1.0\"} 1\n",
            "slackvm_build_info{git_sha=\"abc\"} 1\n",
            "slackvm_build_info 1\n",
            "slackvm_build_info{version=\"1.0\",git_sha=\"abc\"} 2\n",
        ] {
            assert!(
                validate(&format!("{head}{bad}")).is_err(),
                "accepted {bad:?}"
            );
        }
    }
}
