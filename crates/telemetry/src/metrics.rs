//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Histogram percentile summaries follow the **nearest-rank** rule used
//! across the workspace (`slackvm-perf`'s `percentile`): the `q`-quantile
//! of `n` samples is the value at sorted rank `ceil(q·n)`, clamped to
//! `1..=n`. A fixed-bucket histogram resolves that rank to the upper
//! bound of the bucket holding it (the exact maximum for the overflow
//! bucket), so summaries agree with the exact method up to bucket width
//! — and exactly, when samples sit on bucket bounds.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram with nearest-rank percentile summaries.
///
/// `bounds` are ascending *inclusive upper* edges; one implicit overflow
/// bucket catches everything above the last bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over explicit ascending upper bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bounds `start, start·factor, …` (`n` buckets plus the
    /// overflow). The default span-duration layout is
    /// `exponential(1.0, 2.0, 24)`: 1 µs up to ~8.4 s.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "degenerate layout");
        let mut bounds = Vec::with_capacity(n);
        let mut edge = start;
        for _ in 0..n {
            bounds.push(edge);
            edge *= factor;
        }
        Self::with_bounds(bounds)
    }

    /// The default layout for span durations in microseconds.
    pub fn duration_us() -> Self {
        Self::exponential(1.0, 2.0, 24)
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram with the *same bucket layout* into this
    /// one — how rolling-window trackers aggregate per-second buckets.
    ///
    /// # Panics
    /// Panics when the two layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merged histograms must share a bucket layout"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Minimum observed value, if any.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Maximum observed value, if any.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// The nearest-rank `q`-quantile resolved to a bucket upper bound.
    ///
    /// `None` on an empty histogram or `q` outside `0.0..=1.0` — the
    /// same contract as `slackvm-perf`'s exact `percentile`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (idx, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(if idx < self.bounds.len() {
                    // Report at most the observed maximum: a bucket's
                    // upper edge can exceed every sample in it.
                    self.bounds[idx].min(self.max)
                } else {
                    self.max
                });
            }
        }
        unreachable!("cumulative bucket counts reach total")
    }

    /// Ascending inclusive upper bucket edges (without the implicit
    /// overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts: one per edge in [`Self::bounds`],
    /// plus the trailing overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// A percentile summary mirroring `slackvm-perf::Percentiles`.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.total == 0 {
            return None;
        }
        Some(HistogramSummary {
            p50: self.percentile(0.50).expect("non-empty"),
            p90: self.percentile(0.90).expect("non-empty"),
            p99: self.percentile(0.99).expect("non-empty"),
            max: self.max,
            mean: self.mean(),
            count: self.total,
        })
    }
}

/// A rendered percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Median (nearest-rank, bucket-resolved).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum observed.
    pub max: f64,
    /// Exact mean.
    pub mean: f64,
    /// Observation count.
    pub count: u64,
}

/// A snapshot of the whole registry, ready to serialize.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Percentile summaries of all non-empty histograms, by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Counters, gauges, and histograms under `&'static str` names — cheap
/// enough for per-event updates (a `BTreeMap` probe on a short key).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero.
    pub fn inc(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Feeds an observation into a histogram, creating it with the
    /// duration layout ([`Histogram::duration_us`]) when absent.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::duration_us)
            .record(value);
    }

    /// Pre-registers a histogram with custom bounds (no-op if present).
    pub fn register_histogram(&mut self, name: &'static str, bounds: Vec<f64>) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::with_bounds(bounds));
    }

    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (*k, h))
    }

    /// Snapshots every metric into a serializable summary.
    pub fn snapshot(&self) -> MetricsSummary {
        MetricsSummary {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(k, h)| h.summary().map(|s| (k.to_string(), s)))
                .collect(),
        }
    }

    /// The snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("summary serializes")
    }

    /// The snapshot as an aligned plain-text report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {value}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {value:.3}");
            }
        }
        let summaries: Vec<(&str, HistogramSummary)> = self
            .histograms
            .iter()
            .filter_map(|(k, h)| h.summary().map(|s| (*k, s)))
            .collect();
        if !summaries.is_empty() {
            let _ = writeln!(out, "histograms (p50 / p90 / p99 / max, n):");
            for (name, s) in summaries {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:.1} / {:.1} / {:.1} / {:.1}  (n={})",
                    s.p50, s.p90, s.p99, s.max, s.count
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The exact nearest-rank quantile `slackvm-perf` implements,
    /// inlined here as the oracle.
    fn exact_percentile(samples: &[f64], q: f64) -> Option<f64> {
        if samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    #[test]
    fn unit_buckets_match_exact_nearest_rank() {
        // Integer samples on integer bucket edges: the histogram answer
        // is exactly the nearest-rank answer.
        let mut h = Histogram::with_bounds((1..=100).map(f64::from).collect());
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        for s in &samples {
            h.record(*s);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), exact_percentile(&samples, q), "q={q}");
        }
        let s = h.summary().unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn empty_and_invalid_quantiles() {
        let h = Histogram::duration_us();
        assert_eq!(h.percentile(0.5), None);
        assert!(h.summary().is_none());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let mut h = Histogram::with_bounds(vec![1.0]);
        h.record(0.5);
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.5), None);
    }

    #[test]
    fn merge_is_equivalent_to_recording_into_one() {
        let mut left = Histogram::duration_us();
        let mut right = Histogram::duration_us();
        let mut whole = Histogram::duration_us();
        for (i, s) in [1.0, 7.0, 64.0, 900.0, 12_000.0].iter().enumerate() {
            if i % 2 == 0 { &mut left } else { &mut right }.record(*s);
            whole.record(*s);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        // Merging an empty histogram changes nothing.
        left.merge(&Histogram::duration_us());
        assert_eq!(left, whole);
    }

    #[test]
    fn single_sample_and_overflow_bucket() {
        let mut h = Histogram::with_bounds(vec![10.0, 20.0]);
        h.record(5.0);
        // One sample: every quantile is that sample's bucket, capped at
        // the observed max.
        assert_eq!(h.percentile(0.0), Some(5.0));
        assert_eq!(h.percentile(1.0), Some(5.0));
        // Overflow: beyond the last bound, the exact max is reported.
        h.record(999.0);
        assert_eq!(h.percentile(1.0), Some(999.0));
        assert_eq!(h.max(), Some(999.0));
        assert_eq!(h.min(), Some(5.0));
    }

    #[test]
    fn percentile_caps_at_observed_max() {
        let mut h = Histogram::with_bounds(vec![100.0]);
        h.record(3.0);
        h.record(4.0);
        // Bucket edge is 100 but nothing above 4 was seen.
        assert_eq!(h.percentile(0.5), Some(4.0));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.inc("sim.placements", 2);
        m.inc("sim.placements", 3);
        m.set_gauge("sim.opened_pms", 7.0);
        m.observe("sched.select", 10.0);
        m.observe("sched.select", 20.0);
        assert_eq!(m.counter("sim.placements"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("sim.opened_pms"), Some(7.0));
        assert_eq!(m.histogram("sched.select").unwrap().count(), 2);

        let snap = m.snapshot();
        assert_eq!(snap.counters["sim.placements"], 5);
        assert_eq!(snap.gauges["sim.opened_pms"], 7.0);
        assert_eq!(snap.histograms["sched.select"].count, 2);
        // The summary round-trips through JSON.
        let json = m.to_json();
        let back: MetricsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let text = m.render_text();
        assert!(text.contains("sim.placements"));
        assert!(text.contains("counters:"));
        assert!(text.contains("histograms"));
    }

    #[test]
    fn custom_registration_wins_over_default_layout() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("x", vec![1.0, 2.0]);
        m.observe("x", 1.5);
        assert_eq!(m.histogram("x").unwrap().percentile(1.0), Some(1.5));
    }

    proptest! {
        /// On arbitrary samples the bucket answer brackets the exact
        /// nearest-rank answer: it is >= the exact value and <= the
        /// exact value's bucket upper edge.
        #[test]
        fn bucketed_percentile_brackets_exact(
            samples in prop::collection::vec(0.0f64..1000.0, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let mut h = Histogram::with_bounds((0..=100).map(|i| i as f64 * 10.0).collect());
            for s in &samples {
                h.record(*s);
            }
            let exact = exact_percentile(&samples, q).unwrap();
            let bucketed = h.percentile(q).unwrap();
            prop_assert!(bucketed >= exact - 1e-9, "bucketed {bucketed} < exact {exact}");
            // The exact value's bucket edge: ceil to the next multiple of 10.
            let edge = (exact / 10.0).ceil() * 10.0;
            prop_assert!(bucketed <= edge + 1e-9, "bucketed {bucketed} > edge {edge}");
        }

        #[test]
        fn bucketed_percentile_is_monotone_in_q(
            samples in prop::collection::vec(0.0f64..100.0, 1..100),
            qa in 0.0f64..=1.0,
            qb in 0.0f64..=1.0,
        ) {
            let mut h = Histogram::duration_us();
            for s in &samples {
                h.record(*s);
            }
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(h.percentile(lo).unwrap() <= h.percentile(hi).unwrap());
        }
    }
}
