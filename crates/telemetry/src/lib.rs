//! # slackvm-telemetry
//!
//! The observability substrate of the SlackVM reproduction: a typed
//! **event journal**, a **metrics registry** (counters, gauges,
//! nearest-rank histograms), **span timing** for hot paths, and three
//! exporters — JSONL journal, Chrome trace-event JSON (loadable in
//! Perfetto), and a plain-text / JSON metrics summary.
//!
//! The paper's claims are time-series claims; end-of-run aggregates
//! can't explain *why* a run packed the way it did. This crate records
//! the decisions themselves — placements, rejections, vNode resizes,
//! pooling, compaction moves, failure injections — behind a cheap
//! [`Recorder`] trait whose no-op default ([`NullRecorder`]) makes the
//! instrumented hot paths free when recording is off.
//!
//! ## Recording a run
//!
//! ```
//! use slackvm_telemetry::{Event, Recorder, Telemetry};
//! use slackvm_model::{PmId, VmId};
//!
//! let mut telemetry = Telemetry::new();
//! // Instrumented code records through the trait:
//! if telemetry.enabled() {
//!     telemetry.record(0, Event::PmOpened { pm: PmId(0) });
//!     telemetry.record(0, Event::VmPlaced { vm: VmId(1), pm: PmId(0), level: 3 });
//!     telemetry.count("sim.placements", 1);
//! }
//! let span = telemetry.begin("sched.select");
//! // ... hot work ...
//! telemetry.end(span);
//!
//! assert_eq!(telemetry.journal.len(), 2);
//! assert_eq!(telemetry.metrics.counter("sim.placements"), 1);
//! assert_eq!(telemetry.trace.len(), 1);
//! let jsonl = telemetry.journal.to_jsonl();
//! assert!(jsonl.contains("\"kind\":\"vm_placed\""));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod journal;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use event::Event;
pub use journal::{EventRecord, FsyncGate, FsyncPolicy, Journal, JsonlWriter};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsSummary};
pub use recorder::{NullRecorder, Recorder, SpanTimer};
pub use slo::{SloReport, SloTargets, SloTracker};
pub use timeseries::{Sampler, Series, SeriesPoint, SeriesSummary, TimeSeriesStore};
pub use trace::{SlowOpsDigest, TraceBuilder, TraceSpan};

use std::time::Instant;

/// The full-capture recorder: journal + metrics + trace in one bundle.
///
/// Every recorded event lands in the [`Journal`] and bumps its
/// per-kind counter; every closed span lands in the [`TraceBuilder`]
/// and feeds a duration histogram under the span's name.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The typed event journal.
    pub journal: Journal,
    /// Counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// Wall-clock spans for the Chrome trace.
    pub trace: TraceBuilder,
    /// Top-K slowest operations across all closed spans.
    pub slow_ops: SlowOpsDigest,
    epoch: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh recorder; the trace epoch is *now*.
    pub fn new() -> Self {
        Telemetry {
            journal: Journal::new(),
            metrics: MetricsRegistry::new(),
            trace: TraceBuilder::new(),
            slow_ops: SlowOpsDigest::default(),
            epoch: Instant::now(),
        }
    }

    /// The full plain-text report: the metrics summary followed by the
    /// top-K slowest-operations digest (when any span closed).
    pub fn render_summary(&self) -> String {
        let mut out = self.metrics.render_text();
        let slow = self.slow_ops.render();
        if !slow.is_empty() {
            out.push('\n');
            out.push_str(&slow);
        }
        out
    }

    /// The Prometheus text exposition of the metrics registry.
    pub fn render_prometheus(&self) -> String {
        prometheus::render_metrics(&self.metrics)
    }
}

impl Recorder for Telemetry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, time_secs: u64, event: Event) {
        self.metrics.inc(event.counter_name(), 1);
        self.journal.push(time_secs, event);
    }

    fn count(&mut self, name: &'static str, delta: u64) {
        self.metrics.inc(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.metrics.set_gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.metrics.observe(name, value);
    }

    fn begin(&mut self, name: &'static str) -> Option<SpanTimer> {
        Some(SpanTimer::start(name))
    }

    fn end(&mut self, timer: Option<SpanTimer>) {
        let Some(timer) = timer else { return };
        let dur_us = timer.start.elapsed().as_micros() as u64;
        let start_us = timer
            .start
            .saturating_duration_since(self.epoch)
            .as_micros() as u64;
        let span = TraceSpan {
            name: timer.name,
            start_us,
            dur_us,
        };
        self.trace.push(span);
        self.slow_ops.offer(span);
        self.metrics.observe(timer.name, dur_us as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{PmId, VmId};

    #[test]
    fn telemetry_captures_all_three_streams() {
        let mut t = Telemetry::new();
        assert!(t.enabled());
        t.record(10, Event::PmOpened { pm: PmId(0) });
        t.record(
            10,
            Event::VmPlaced {
                vm: VmId(7),
                pm: PmId(0),
                level: 2,
            },
        );
        t.count("sim.placements", 1);
        t.gauge("sim.opened_pms", 1.0);
        let span = t.begin("sched.select");
        assert!(span.is_some());
        t.end(span);

        assert_eq!(t.journal.len(), 2);
        assert_eq!(t.metrics.counter("events.pm_opened"), 1);
        assert_eq!(t.metrics.counter("events.vm_placed"), 1);
        assert_eq!(t.metrics.counter("sim.placements"), 1);
        assert_eq!(t.metrics.gauge("sim.opened_pms"), Some(1.0));
        assert_eq!(t.trace.len(), 1);
        assert_eq!(t.trace.spans()[0].name, "sched.select");
        // The span also fed its duration histogram and the slow-ops digest.
        assert_eq!(t.metrics.histogram("sched.select").unwrap().count(), 1);
        assert_eq!(t.slow_ops.len(), 1);
        let summary = t.render_summary();
        assert!(summary.contains("histograms"));
        assert!(summary.contains("slowest operations"));
        assert!(summary.contains("sched.select"));
        // And the Prometheus view of the same registry validates.
        let prom = t.render_prometheus();
        assert!(prom.contains("# TYPE slackvm_sched_select histogram"));
        prometheus::validate(&prom).unwrap();
    }

    #[test]
    fn ending_a_none_span_is_a_noop() {
        let mut t = Telemetry::new();
        t.end(None);
        assert!(t.trace.is_empty());
    }

    #[test]
    fn exporters_agree_on_event_counts() {
        let mut t = Telemetry::new();
        for i in 0..5 {
            t.record(i, Event::VmLost { vm: VmId(i) });
        }
        assert_eq!(t.journal.to_jsonl().lines().count(), 5);
        assert_eq!(t.metrics.counter("events.vm_lost"), 5);
        assert_eq!(
            t.journal.count_kind("vm_lost") as u64,
            t.metrics.counter("events.vm_lost")
        );
    }
}
