//! Time-series sampling: fixed-capacity ring-buffer series, a
//! simulated-time [`Sampler`], and CSV import/export.
//!
//! The journal records *decisions*; this module records *trajectories* —
//! utilization, fragmentation, vNode widths, M/C drift — sampled on a
//! fixed simulated-time grid so week-long replays produce bounded,
//! plottable series instead of one point per event. Every series is a
//! ring buffer: when `capacity` points are held the oldest is dropped
//! (and counted), so memory stays constant no matter how long the run.

use std::collections::{BTreeMap, VecDeque};

/// One sampled point: simulated time plus a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Simulation time in seconds.
    pub time_secs: u64,
    /// Sampled value.
    pub value: f64,
}

/// Summary statistics of one series (over the retained window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Points currently retained.
    pub count: usize,
    /// Points dropped by the ring buffer.
    pub dropped: u64,
    /// Minimum retained value.
    pub min: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Maximum retained value.
    pub max: f64,
    /// Mean of retained values.
    pub mean: f64,
    /// Most recent value.
    pub last: f64,
}

/// A named, fixed-capacity ring buffer of [`SeriesPoint`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    capacity: usize,
    points: VecDeque<SeriesPoint>,
    dropped: u64,
}

impl Series {
    /// An empty series holding at most `capacity` points.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "a series needs room for at least one point");
        Series {
            name: name.into(),
            capacity,
            points: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a point, evicting the oldest when full.
    ///
    /// The series stays sorted by time: the common monotone case is an
    /// O(1) append, while a point older than the newest retained one is
    /// inserted at its timestamp's position (stable — it lands after any
    /// existing points with the same timestamp). Bucketed means and
    /// sparkline summaries assume monotone time, so silently appending a
    /// regressed timestamp would corrupt them.
    pub fn push(&mut self, time_secs: u64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        match self.points.back() {
            Some(last) if last.time_secs > time_secs => {
                let at = self.points.partition_point(|p| p.time_secs <= time_secs);
                self.points.insert(at, SeriesPoint { time_secs, value });
            }
            _ => self.points.push_back(SeriesPoint { time_secs, value }),
        }
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact nearest-rank `q`-quantile over retained values. `None` on
    /// an empty series or `q` outside `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.points.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted: Vec<f64> = self.points.iter().map(|p| p.value).collect();
        // total_cmp: a NaN sample must not poison the sort order (with
        // partial_cmp-or-Equal the sort is non-total and the selected
        // rank becomes arbitrary); NaNs sort above every real value.
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Summary statistics, `None` when empty.
    pub fn summary(&self) -> Option<SeriesSummary> {
        if self.points.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.points.iter().map(|p| p.value).collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(SeriesSummary {
            count: values.len(),
            dropped: self.dropped,
            min,
            p50: self.percentile(0.50).expect("non-empty"),
            p99: self.percentile(0.99).expect("non-empty"),
            max,
            mean: values.iter().sum::<f64>() / values.len() as f64,
            last: values.last().copied().expect("non-empty"),
        })
    }

    /// An eight-level unicode sparkline of the series, downsampled to at
    /// most `width` cells (bucket means). Empty string for an empty
    /// series; a flat series renders mid-level blocks.
    pub fn sparkline(&self, width: usize) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.points.is_empty() || width == 0 {
            return String::new();
        }
        let n = self.points.len();
        let cells = width.min(n);
        let mut means = Vec::with_capacity(cells);
        for c in 0..cells {
            let lo = c * n / cells;
            let hi = ((c + 1) * n / cells).max(lo + 1);
            let slice: Vec<f64> = self.points.range(lo..hi).map(|p| p.value).collect();
            means.push(slice.iter().sum::<f64>() / slice.len() as f64);
        }
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = max - min;
        means
            .iter()
            .map(|m| {
                if span <= f64::EPSILON {
                    LEVELS[3]
                } else {
                    let idx = (((m - min) / span) * 7.0).round() as usize;
                    LEVELS[idx.min(7)]
                }
            })
            .collect()
    }
}

/// Default per-series ring-buffer capacity.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// A collection of named series with a shared capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeriesStore {
    capacity: usize,
    series: BTreeMap<String, Series>,
}

impl TimeSeriesStore {
    /// An empty store with the default per-series capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SERIES_CAPACITY)
    }

    /// An empty store with an explicit per-series capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeriesStore {
            capacity: capacity.max(1),
            series: BTreeMap::new(),
        }
    }

    /// Appends a point to `name`, creating the series on first use.
    pub fn record(&mut self, name: &str, time_secs: u64, value: f64) {
        match self.series.get_mut(name) {
            Some(series) => series.push(time_secs, value),
            None => {
                let mut series = Series::new(name, self.capacity);
                series.push(time_secs, value);
                self.series.insert(name.to_string(), series);
            }
        }
    }

    /// A series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All series, ordered by name.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Total retained points across all series.
    pub fn total_points(&self) -> usize {
        self.series.values().map(|s| s.len()).sum()
    }

    /// Serializes every series in long CSV form —
    /// `series,t_secs,value` — ordered by series name then time, so two
    /// identical runs produce byte-identical files.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,t_secs,value\n");
        for series in self.series.values() {
            for p in series.points() {
                out.push_str(series.name());
                out.push(',');
                out.push_str(&p.time_secs.to_string());
                out.push(',');
                out.push_str(&format_value(p.value));
                out.push('\n');
            }
        }
        out
    }

    /// Parses a CSV produced by [`TimeSeriesStore::to_csv`]. The header
    /// line is required; blank lines are skipped.
    pub fn from_csv(raw: &str) -> Result<TimeSeriesStore, String> {
        let mut lines = raw.lines();
        match lines.next() {
            Some(header) if header.trim() == "series,t_secs,value" => {}
            other => return Err(format!("bad CSV header {other:?}")),
        }
        let mut store = TimeSeriesStore::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.rsplitn(3, ',');
            let value = parts.next().ok_or_else(|| bad_line(i, line))?;
            let t = parts.next().ok_or_else(|| bad_line(i, line))?;
            let name = parts.next().ok_or_else(|| bad_line(i, line))?;
            let t: u64 = t.trim().parse().map_err(|_| bad_line(i, line))?;
            let value: f64 = value.trim().parse().map_err(|_| bad_line(i, line))?;
            store.record(name, t, value);
        }
        Ok(store)
    }

    /// Renders an aligned per-series summary table (count, min, p50,
    /// p99, max, sparkline) — the `slackvm obs` dashboard body.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        if self.series.is_empty() {
            return "(no series sampled)\n".to_string();
        }
        let name_w = self
            .series
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$} {:>6} {:>10} {:>10} {:>10} {:>10}  trend",
            "series", "n", "min", "p50", "p99", "max"
        );
        for series in self.series.values() {
            let Some(s) = series.summary() else { continue };
            let _ = writeln!(
                out,
                "{:<name_w$} {:>6} {:>10} {:>10} {:>10} {:>10}  {}",
                series.name(),
                s.count,
                compact(s.min),
                compact(s.p50),
                compact(s.p99),
                compact(s.max),
                series.sparkline(24),
            );
        }
        out
    }
}

fn bad_line(index: usize, line: &str) -> String {
    format!("bad CSV line {}: {line:?}", index + 2)
}

/// Formats a value for CSV: integral values print without a fraction,
/// everything else uses the shortest round-trip representation.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Compact numeric rendering for the dashboard table.
fn compact(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// A fixed-interval simulated-time sampling schedule plus its store.
///
/// The first [`Sampler::due`] query is always true (every run gets an
/// initial sample, even when the interval exceeds the horizon); after a
/// sample is taken the schedule advances to the next multiple of the
/// interval strictly beyond the sampled instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Sampler {
    interval_secs: u64,
    next_due: Option<u64>,
    store: TimeSeriesStore,
}

impl Sampler {
    /// A sampler firing every `interval_secs` of simulated time
    /// (clamped to at least 1 second).
    pub fn new(interval_secs: u64) -> Self {
        Sampler {
            interval_secs: interval_secs.max(1),
            next_due: None,
            store: TimeSeriesStore::new(),
        }
    }

    /// The configured interval.
    pub fn interval_secs(&self) -> u64 {
        self.interval_secs
    }

    /// Whether a sample is due at simulated time `t`.
    pub fn due(&self, t: u64) -> bool {
        self.next_due.map_or(true, |next| t >= next)
    }

    /// Marks a sample as taken at `t` and advances the schedule.
    pub fn advance(&mut self, t: u64) {
        self.next_due = Some((t / self.interval_secs + 1) * self.interval_secs);
    }

    /// Records one point (sampling code calls this while `due`).
    pub fn record(&mut self, name: &str, time_secs: u64, value: f64) {
        self.store.record(name, time_secs, value);
    }

    /// The accumulated series.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// Consumes the sampler, yielding its store.
    pub fn into_store(self) -> TimeSeriesStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut s = Series::new("x", 3);
        for i in 0..5u64 {
            s.push(i, i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let times: Vec<u64> = s.points().map(|p| p.time_secs).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s = Series::new("x", 100);
        for i in 1..=100u64 {
            s.push(i, i as f64);
        }
        assert_eq!(s.percentile(0.5), Some(50.0));
        assert_eq!(s.percentile(0.99), Some(99.0));
        assert_eq!(s.percentile(1.0), Some(100.0));
        assert_eq!(s.percentile(1.5), None);
        let sum = s.summary().unwrap();
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert_eq!(sum.last, 100.0);
        assert!((sum.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_pushes_keep_the_series_sorted() {
        let mut s = Series::new("x", 16);
        for (t, v) in [(0u64, 0.0), (120, 2.0), (60, 1.0), (180, 3.0), (60, 1.5)] {
            s.push(t, v);
        }
        let times: Vec<u64> = s.points().map(|p| p.time_secs).collect();
        assert_eq!(times, vec![0, 60, 60, 120, 180]);
        // Equal timestamps preserve arrival order (stable insert).
        let at_60: Vec<f64> = s
            .points()
            .filter(|p| p.time_secs == 60)
            .map(|p| p.value)
            .collect();
        assert_eq!(at_60, vec![1.0, 1.5]);
        // Bucketed summaries now see monotone time.
        assert_eq!(s.summary().unwrap().last, 3.0);
    }

    #[test]
    fn nan_samples_do_not_poison_percentiles() {
        let mut s = Series::new("x", 16);
        for i in 1..=9u64 {
            s.push(i, i as f64);
        }
        s.push(10, f64::NAN);
        // NaN sorts above every real value: real ranks stay exact
        // regardless of where the NaN arrived in the buffer.
        assert_eq!(s.percentile(0.5), Some(5.0));
        assert_eq!(s.percentile(0.9), Some(9.0));
        assert!(s.percentile(1.0).unwrap().is_nan());
    }

    #[test]
    fn sparkline_shapes() {
        let mut rising = Series::new("up", 64);
        for i in 0..8u64 {
            rising.push(i, i as f64);
        }
        let spark = rising.sparkline(8);
        assert_eq!(spark.chars().count(), 8);
        assert!(spark.starts_with('▁'));
        assert!(spark.ends_with('█'));
        let mut flat = Series::new("flat", 8);
        for i in 0..4u64 {
            flat.push(i, 7.0);
        }
        assert!(flat.sparkline(8).chars().all(|c| c == '▄'));
        assert_eq!(Series::new("e", 1).sparkline(8), "");
    }

    #[test]
    fn store_csv_roundtrips_and_is_ordered() {
        let mut store = TimeSeriesStore::new();
        store.record("b.series", 0, 1.5);
        store.record("a.series", 0, 2.0);
        store.record("b.series", 60, 2.5);
        let csv = store.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,t_secs,value");
        assert_eq!(lines[1], "a.series,0,2");
        assert_eq!(lines[2], "b.series,0,1.5");
        assert_eq!(lines[3], "b.series,60,2.5");
        let back = TimeSeriesStore::from_csv(&csv).unwrap();
        assert_eq!(back.to_csv(), csv);
        assert!(TimeSeriesStore::from_csv("nope\n").is_err());
        assert!(TimeSeriesStore::from_csv("series,t_secs,value\nx,1\n").is_err());
    }

    #[test]
    fn csv_tolerates_commas_in_series_names() {
        let mut store = TimeSeriesStore::new();
        store.record("weird,name", 5, 1.0);
        let back = TimeSeriesStore::from_csv(&store.to_csv()).unwrap();
        assert!(back.series("weird,name").is_some());
    }

    #[test]
    fn sampler_schedule() {
        let mut sampler = Sampler::new(3600);
        // First query is always due, whatever the time.
        assert!(sampler.due(0));
        assert!(sampler.due(10));
        sampler.advance(10);
        assert!(!sampler.due(3599));
        assert!(sampler.due(3600));
        sampler.advance(3600);
        // Advancing from an exact grid point moves to the next slot.
        assert!(!sampler.due(7199));
        assert!(sampler.due(7200));
        // Zero interval clamps instead of dividing by zero.
        assert_eq!(Sampler::new(0).interval_secs(), 1);
    }

    #[test]
    fn render_table_lists_each_series_once() {
        let mut store = TimeSeriesStore::new();
        for t in 0..10u64 {
            store.record("cluster.alive_vms", t * 60, t as f64);
            store.record("cluster.opened_pms", t * 60, 2.0);
        }
        let table = store.render_table();
        assert_eq!(table.matches("cluster.alive_vms").count(), 1);
        assert!(table.contains("p99"));
        assert_eq!(
            TimeSeriesStore::new().render_table(),
            "(no series sampled)\n"
        );
    }
}
