//! Span collection and the Chrome trace-event exporter.
//!
//! The output follows the Trace Event Format's "complete event"
//! (`"ph": "X"`) JSON flavour, which `chrome://tracing` and Perfetto
//! load directly: an object with a `traceEvents` array whose entries
//! carry microsecond `ts`/`dur` fields.

use serde::Serialize;

/// One closed span: a named duration on the wall-clock timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceSpan {
    /// Span label (e.g. `"sched.select"`).
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Collects spans and renders the Chrome trace JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuilder {
    spans: Vec<TraceSpan>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a closed span.
    pub fn push(&mut self, span: TraceSpan) {
        self.spans.push(span);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the Chrome trace-event JSON (open in Perfetto via
    /// <https://ui.perfetto.dev> or `chrome://tracing`).
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<serde_json::Value> = self
            .spans
            .iter()
            .map(|s| {
                serde_json::json!({
                    "name": s.name,
                    "cat": "slackvm",
                    "ph": "X",
                    "ts": s.start_us,
                    "dur": s.dur_us,
                    "pid": 1,
                    "tid": 1,
                })
            })
            .collect();
        let doc = serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
        });
        serde_json::to_string(&doc).expect("trace serializes")
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_chrome(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Default number of operations the slow-ops digest retains.
pub const DEFAULT_SLOW_OPS_K: usize = 10;

/// A bounded top-K digest of the slowest closed spans.
///
/// Keeps only the `k` longest operations seen so far (ties broken by
/// earlier start, then name, for deterministic rendering), so a
/// million-span replay still yields an O(k) "what was slow" answer
/// without retaining the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOpsDigest {
    capacity: usize,
    ops: Vec<TraceSpan>,
}

impl Default for SlowOpsDigest {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_OPS_K)
    }
}

impl SlowOpsDigest {
    /// A digest keeping the `capacity` slowest spans (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SlowOpsDigest {
            capacity,
            ops: Vec::with_capacity(capacity + 1),
        }
    }

    /// Offers one closed span; it is kept only if it ranks in the top K.
    pub fn offer(&mut self, span: TraceSpan) {
        if self.ops.len() == self.capacity && span.dur_us <= self.ops.last().map_or(0, |s| s.dur_us)
        {
            return;
        }
        let rank = |s: &TraceSpan| (std::cmp::Reverse(s.dur_us), s.start_us, s.name);
        let at = self.ops.partition_point(|s| rank(s) <= rank(&span));
        self.ops.insert(at, span);
        self.ops.truncate(self.capacity);
    }

    /// The retained spans, slowest first.
    pub fn ops(&self) -> &[TraceSpan] {
        &self.ops
    }

    /// How many spans are retained (≤ K).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no span was offered yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// An aligned text table of the slowest operations.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.ops.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "slowest operations (top {}, wall-clock):",
            self.capacity
        );
        for (i, s) in self.ops.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>2}. {:<40} {:>10} us  (at +{} us)",
                i + 1,
                s.name,
                s.dur_us,
                s.start_us
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_ops_digest_keeps_top_k_sorted() {
        let mut d = SlowOpsDigest::new(3);
        assert!(d.is_empty());
        for (start, dur) in [(0, 5), (1, 50), (2, 1), (3, 20), (4, 50), (5, 2)] {
            d.offer(TraceSpan {
                name: "op",
                start_us: start,
                dur_us: dur,
            });
        }
        assert_eq!(d.len(), 3);
        let durs: Vec<u64> = d.ops().iter().map(|s| s.dur_us).collect();
        assert_eq!(durs, vec![50, 50, 20]);
        // Ties order by earlier start.
        assert_eq!(d.ops()[0].start_us, 1);
        assert_eq!(d.ops()[1].start_us, 4);
        let text = d.render();
        assert!(text.contains("slowest operations"));
        assert!(text.contains("50 us"));
        assert!(SlowOpsDigest::default().render().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = TraceBuilder::new();
        assert!(t.is_empty());
        t.push(TraceSpan {
            name: "sim.dispatch",
            start_us: 0,
            dur_us: 12,
        });
        t.push(TraceSpan {
            name: "sched.select",
            start_us: 3,
            dur_us: 5,
        });
        assert_eq!(t.len(), 2);

        let json = t.to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"], "sim.dispatch");
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[1]["ts"], 3);
        assert_eq!(events[1]["dur"], 5);
        for e in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
                assert!(!e[key].is_null(), "missing {key}");
            }
        }
    }

    #[test]
    fn empty_trace_still_parses() {
        let json = TraceBuilder::new().to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 0);
    }
}
