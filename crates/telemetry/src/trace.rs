//! Span collection and the Chrome trace-event exporter.
//!
//! The output follows the Trace Event Format's "complete event"
//! (`"ph": "X"`) JSON flavour, which `chrome://tracing` and Perfetto
//! load directly: an object with a `traceEvents` array whose entries
//! carry microsecond `ts`/`dur` fields.

use serde::Serialize;

/// One closed span: a named duration on the wall-clock timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceSpan {
    /// Span label (e.g. `"sched.select"`).
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Collects spans and renders the Chrome trace JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuilder {
    spans: Vec<TraceSpan>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a closed span.
    pub fn push(&mut self, span: TraceSpan) {
        self.spans.push(span);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the Chrome trace-event JSON (open in Perfetto via
    /// <https://ui.perfetto.dev> or `chrome://tracing`).
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<serde_json::Value> = self
            .spans
            .iter()
            .map(|s| {
                serde_json::json!({
                    "name": s.name,
                    "cat": "slackvm",
                    "ph": "X",
                    "ts": s.start_us,
                    "dur": s.dur_us,
                    "pid": 1,
                    "tid": 1,
                })
            })
            .collect();
        let doc = serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
        });
        serde_json::to_string(&doc).expect("trace serializes")
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_chrome(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape() {
        let mut t = TraceBuilder::new();
        assert!(t.is_empty());
        t.push(TraceSpan {
            name: "sim.dispatch",
            start_us: 0,
            dur_us: 12,
        });
        t.push(TraceSpan {
            name: "sched.select",
            start_us: 3,
            dur_us: 5,
        });
        assert_eq!(t.len(), 2);

        let json = t.to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"], "sim.dispatch");
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[1]["ts"], 3);
        assert_eq!(events[1]["dur"], 5);
        for e in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
                assert!(!e[key].is_null(), "missing {key}");
            }
        }
    }

    #[test]
    fn empty_trace_still_parses() {
        let json = TraceBuilder::new().to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 0);
    }
}
