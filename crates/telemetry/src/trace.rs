//! Span collection and the Chrome trace-event exporter.
//!
//! The output follows the Trace Event Format's "complete event"
//! (`"ph": "X"`) JSON flavour, which `chrome://tracing` and Perfetto
//! load directly: an object with a `traceEvents` array whose entries
//! carry microsecond `ts`/`dur` fields.

use serde::Serialize;

/// One closed span: a named duration on the wall-clock timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceSpan {
    /// Span label (e.g. `"sched.select"`).
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// The `tid` spans land on when recorded without an explicit track.
pub const DEFAULT_TRACK: u64 = 1;

/// Collects spans and renders the Chrome trace JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuilder {
    spans: Vec<TraceSpan>,
    /// Chrome `tid` per span, parallel to `spans`. Distinct tracks let
    /// concurrent lifecycles (e.g. one per sampled request) render as
    /// separate rows whose spans nest by time containment.
    tracks: Vec<u64>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a closed span on the default track.
    pub fn push(&mut self, span: TraceSpan) {
        self.push_on(DEFAULT_TRACK, span);
    }

    /// Appends a closed span on an explicit track (Chrome `tid`).
    pub fn push_on(&mut self, track: u64, span: TraceSpan) {
        self.spans.push(span);
        self.tracks.push(track);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// The track (Chrome `tid`) of each span, parallel to
    /// [`spans`](Self::spans).
    pub fn tracks(&self) -> &[u64] {
        &self.tracks
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the Chrome trace-event JSON (open in Perfetto via
    /// <https://ui.perfetto.dev> or `chrome://tracing`).
    ///
    /// Rendered by hand, like the serve wire protocol: span names are
    /// static identifiers and every other field is a number, so the
    /// exporter needs no serialization framework and stays usable from
    /// the service's hot-path drain.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32 + self.spans.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, (s, tid)) in self.spans.iter().zip(self.tracks.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"slackvm\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                s.name, s.start_us, s.dur_us, tid
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_chrome(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Default number of operations the slow-ops digest retains.
pub const DEFAULT_SLOW_OPS_K: usize = 10;

/// A bounded top-K digest of the slowest closed spans.
///
/// Keeps only the `k` longest operations seen so far (ties broken by
/// earlier start, then name, for deterministic rendering), so a
/// million-span replay still yields an O(k) "what was slow" answer
/// without retaining the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOpsDigest {
    capacity: usize,
    ops: Vec<TraceSpan>,
}

impl Default for SlowOpsDigest {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_OPS_K)
    }
}

impl SlowOpsDigest {
    /// A digest keeping the `capacity` slowest spans (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SlowOpsDigest {
            capacity,
            ops: Vec::with_capacity(capacity + 1),
        }
    }

    /// Offers one closed span; it is kept only if it ranks in the top K.
    pub fn offer(&mut self, span: TraceSpan) {
        if self.ops.len() == self.capacity && span.dur_us <= self.ops.last().map_or(0, |s| s.dur_us)
        {
            return;
        }
        let rank = |s: &TraceSpan| (std::cmp::Reverse(s.dur_us), s.start_us, s.name);
        let at = self.ops.partition_point(|s| rank(s) <= rank(&span));
        self.ops.insert(at, span);
        self.ops.truncate(self.capacity);
    }

    /// The retained spans, slowest first.
    pub fn ops(&self) -> &[TraceSpan] {
        &self.ops
    }

    /// How many spans are retained (≤ K).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no span was offered yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// An aligned text table of the slowest operations.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.ops.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "slowest operations (top {}, wall-clock):",
            self.capacity
        );
        for (i, s) in self.ops.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>2}. {:<40} {:>10} us  (at +{} us)",
                i + 1,
                s.name,
                s.dur_us,
                s.start_us
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_ops_digest_keeps_top_k_sorted() {
        let mut d = SlowOpsDigest::new(3);
        assert!(d.is_empty());
        for (start, dur) in [(0, 5), (1, 50), (2, 1), (3, 20), (4, 50), (5, 2)] {
            d.offer(TraceSpan {
                name: "op",
                start_us: start,
                dur_us: dur,
            });
        }
        assert_eq!(d.len(), 3);
        let durs: Vec<u64> = d.ops().iter().map(|s| s.dur_us).collect();
        assert_eq!(durs, vec![50, 50, 20]);
        // Ties order by earlier start.
        assert_eq!(d.ops()[0].start_us, 1);
        assert_eq!(d.ops()[1].start_us, 4);
        let text = d.render();
        assert!(text.contains("slowest operations"));
        assert!(text.contains("50 us"));
        assert!(SlowOpsDigest::default().render().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = TraceBuilder::new();
        assert!(t.is_empty());
        t.push(TraceSpan {
            name: "sim.dispatch",
            start_us: 0,
            dur_us: 12,
        });
        t.push(TraceSpan {
            name: "sched.select",
            start_us: 3,
            dur_us: 5,
        });
        assert_eq!(t.len(), 2);

        let json = t.to_chrome_json();
        // The rendering is deterministic, so the shape can be pinned
        // exactly; a real `serde_json` (when available) must agree.
        assert_eq!(
            json,
            "{\"traceEvents\":[\
             {\"name\":\"sim.dispatch\",\"cat\":\"slackvm\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":12,\"pid\":1,\"tid\":1},\
             {\"name\":\"sched.select\",\"cat\":\"slackvm\",\"ph\":\"X\",\
             \"ts\":3,\"dur\":5,\"pid\":1,\"tid\":1}\
             ],\"displayTimeUnit\":\"ms\"}"
        );
        if let Ok(doc) = serde_json::from_str::<serde_json::Value>(&json) {
            let events = doc["traceEvents"].as_array().unwrap();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0]["name"], "sim.dispatch");
            assert_eq!(events[1]["ts"], 3);
        }
    }

    #[test]
    fn explicit_tracks_land_in_the_tid_field() {
        let mut t = TraceBuilder::new();
        t.push(TraceSpan {
            name: "default",
            start_us: 0,
            dur_us: 1,
        });
        t.push_on(
            42,
            TraceSpan {
                name: "tracked",
                start_us: 5,
                dur_us: 2,
            },
        );
        assert_eq!(t.tracks(), &[DEFAULT_TRACK, 42]);
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\":\"default\",\"cat\":\"slackvm\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1"), "{json}");
        assert!(json.contains("\"name\":\"tracked\",\"cat\":\"slackvm\",\"ph\":\"X\",\"ts\":5,\"dur\":2,\"pid\":1,\"tid\":42"), "{json}");
    }

    #[test]
    fn empty_trace_still_parses() {
        let json = TraceBuilder::new().to_chrome_json();
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
        if let Ok(doc) = serde_json::from_str::<serde_json::Value>(&json) {
            assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 0);
        }
    }
}
