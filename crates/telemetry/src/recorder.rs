//! The recording interface instrumented code talks to.
//!
//! Hot paths are generic over [`Recorder`] and guard every emission with
//! [`Recorder::enabled`]; with the default [`NullRecorder`] the guard is
//! a constant `false` the optimizer folds away, so instrumentation costs
//! nothing when disabled — no clock reads, no allocation, no event
//! construction.

use std::time::Instant;

use crate::event::Event;

/// A running span measurement handed back by [`Recorder::begin`].
///
/// Only a real recorder ever constructs one; the no-op path returns
/// `None` and never touches the clock.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    pub(crate) name: &'static str,
    pub(crate) start: Instant,
}

impl SpanTimer {
    /// Starts a measurement now.
    pub fn start(name: &'static str) -> Self {
        SpanTimer {
            name,
            start: Instant::now(),
        }
    }

    /// The span's label.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// The sink instrumented code records into.
///
/// Every method has a no-op default, so implementations opt into the
/// signals they care about. Call sites on hot paths should wrap event
/// construction in `if recorder.enabled() { ... }` so the disabled path
/// does no work at all.
pub trait Recorder {
    /// Whether this recorder captures anything. Hot paths use this to
    /// skip event construction entirely.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records a journal event at simulation time `time_secs`.
    #[inline]
    fn record(&mut self, time_secs: u64, event: Event) {
        let _ = (time_secs, event);
    }

    /// Increments a named counter.
    #[inline]
    fn count(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a named gauge.
    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Feeds one observation into a named histogram.
    #[inline]
    fn observe(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Opens a timing span. The no-op default returns `None` without
    /// reading the clock.
    #[inline]
    fn begin(&mut self, name: &'static str) -> Option<SpanTimer> {
        let _ = name;
        None
    }

    /// Closes a span opened by [`Recorder::begin`].
    #[inline]
    fn end(&mut self, timer: Option<SpanTimer>) {
        let _ = timer;
    }
}

/// The do-nothing recorder: all trait defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Forwarding impl so a `&mut R` can itself be passed where a recorder
/// is expected (convenient when threading one recorder through several
/// layers).
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn record(&mut self, time_secs: u64, event: Event) {
        (**self).record(time_secs, event)
    }
    #[inline]
    fn count(&mut self, name: &'static str, delta: u64) {
        (**self).count(name, delta)
    }
    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn observe(&mut self, name: &'static str, value: f64) {
        (**self).observe(name, value)
    }
    #[inline]
    fn begin(&mut self, name: &'static str) -> Option<SpanTimer> {
        (**self).begin(name)
    }
    #[inline]
    fn end(&mut self, timer: Option<SpanTimer>) {
        (**self).end(timer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{PmId, VmId};

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let mut null = NullRecorder;
        assert!(!null.enabled());
        null.record(0, Event::PmOpened { pm: PmId(0) });
        null.count("x", 1);
        null.gauge("y", 1.0);
        null.observe("z", 1.0);
        let span = null.begin("w");
        assert!(span.is_none());
        null.end(span);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut null = NullRecorder;
        let mut via_ref: &mut NullRecorder = &mut null;
        assert!(!via_ref.enabled());
        via_ref.record(1, Event::VmLost { vm: VmId(1) });
        assert!(via_ref.begin("s").is_none());
    }
}
