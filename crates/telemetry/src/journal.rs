//! The event journal and its JSONL exporter.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::event::Event;

/// When a buffered log writer forces its bytes to stable storage.
///
/// A `flush` hands the buffer to the OS; only an `fsync` survives a
/// machine crash. The policy trades durability for throughput:
/// [`FsyncPolicy::Every`] makes each flush a durability point,
/// [`FsyncPolicy::Interval`] bounds the data-loss window instead of the
/// record count, and [`FsyncPolicy::Off`] leaves persistence timing to
/// the OS entirely. Shared by [`JsonlWriter`] and the write-ahead log
/// in `slackvm-durable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; the OS writes back when it pleases.
    Off,
    /// fsync on every flush.
    Every,
    /// fsync on a flush at most once per this interval.
    Interval(Duration),
}

impl FsyncPolicy {
    /// Resolves a policy name (`every`, `interval`, `off`);
    /// `interval_ms` applies to `interval` only.
    pub fn parse(name: &str, interval_ms: u64) -> Option<FsyncPolicy> {
        match name {
            "every" => Some(FsyncPolicy::Every),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(interval_ms))),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }

    /// The policy's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Off => "off",
            FsyncPolicy::Every => "every",
            FsyncPolicy::Interval(_) => "interval",
        }
    }
}

/// Decides, flush by flush, whether an fsync is due under a policy.
#[derive(Debug)]
pub struct FsyncGate {
    policy: FsyncPolicy,
    last_sync: Option<Instant>,
}

impl FsyncGate {
    /// A gate enforcing `policy`.
    pub fn new(policy: FsyncPolicy) -> Self {
        FsyncGate {
            policy,
            last_sync: None,
        }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Whether the flush happening now must also fsync. Returning true
    /// restarts the interval clock, so call exactly once per flush.
    pub fn due(&mut self) -> bool {
        match self.policy {
            FsyncPolicy::Off => false,
            FsyncPolicy::Every => true,
            FsyncPolicy::Interval(every) => {
                let due = self.last_sync.map_or(true, |at| at.elapsed() >= every);
                if due {
                    self.last_sync = Some(Instant::now());
                }
                due
            }
        }
    }
}

/// One journal line: a simulation timestamp plus the event.
///
/// Serializes flat — `{"t": 86400, "kind": "vm_placed", ...}` — so a
/// JSONL journal greps cleanly by `kind`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Simulation time in seconds.
    #[serde(rename = "t")]
    pub time_secs: u64,
    /// The recorded event.
    #[serde(flatten)]
    pub event: Event,
}

/// An append-only, time-ordered log of [`EventRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    records: Vec<EventRecord>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at `time_secs`.
    pub fn push(&mut self, time_secs: u64, event: Event) {
        self.records.push(EventRecord { time_secs, event });
    }

    /// All records, in recording order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates `(time, event)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.records.iter()
    }

    /// Counts records whose event satisfies `predicate`.
    pub fn count_where(&self, predicate: impl Fn(&Event) -> bool) -> usize {
        self.records.iter().filter(|r| predicate(&r.event)).count()
    }

    /// Counts records of one `kind` tag (e.g. `"vm_placed"`).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.count_where(|e| e.kind() == kind)
    }

    /// Serializes the journal as JSON Lines: one record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL journal back into typed records. Blank lines are
    /// skipped.
    pub fn from_jsonl(raw: &str) -> Result<Journal, serde_json::Error> {
        let mut journal = Journal::new();
        for line in raw.lines() {
            if line.trim().is_empty() {
                continue;
            }
            journal.records.push(serde_json::from_str(line)?);
        }
        Ok(journal)
    }

    /// Writes the JSONL journal to `path` through a buffered streaming
    /// writer — one serialization per record, no whole-journal string.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut writer = JsonlWriter::create(path)?;
        for record in &self.records {
            writer.write_record(record)?;
        }
        writer.finish()
    }
}

/// A buffered, streaming JSONL writer for [`EventRecord`]s.
///
/// Large replays emit hundreds of thousands of events; writing them one
/// `fs::write` (or worse, one syscall) at a time is the difference
/// between milliseconds and seconds. The writer wraps the file in a
/// [`BufWriter`](std::io::BufWriter) and flushes on [`finish`] — or on
/// drop, best-effort, so a forgotten `finish()` never loses a tail of
/// the journal silently.
#[derive(Debug)]
pub struct JsonlWriter {
    inner: Option<std::io::BufWriter<std::fs::File>>,
    sync: FsyncGate,
}

impl JsonlWriter {
    /// Creates (truncating) `path` behind a buffer.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlWriter {
            inner: Some(std::io::BufWriter::new(file)),
            sync: FsyncGate::new(FsyncPolicy::Off),
        })
    }

    /// Opts into fsync-on-flush under `policy` — the crash-safety mode
    /// journals written alongside a durable WAL should use, so a power
    /// cut cannot keep WAL records the journal never saw.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.sync = FsyncGate::new(policy);
        self
    }

    /// Flushes the buffer to the OS and, when the fsync policy says the
    /// flush is a durability point, forces it to stable storage.
    pub fn flush(&mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        let writer = self.inner.as_mut().expect("flush after finish()");
        writer.flush()?;
        if self.sync.due() {
            writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Appends one record as a JSON line.
    pub fn write_record(&mut self, record: &EventRecord) -> std::io::Result<()> {
        use std::io::Write as _;
        let writer = self.inner.as_mut().expect("write_record after finish()");
        serde_json::to_writer(&mut *writer, record)?;
        writer.write_all(b"\n")
    }

    /// Convenience: appends a `(time, event)` pair.
    pub fn write(&mut self, time_secs: u64, event: Event) -> std::io::Result<()> {
        self.write_record(&EventRecord { time_secs, event })
    }

    /// Flushes the buffer and closes the file. Call this to surface
    /// write errors; the drop path can only swallow them. With any
    /// fsync policy other than [`FsyncPolicy::Off`] the close is a
    /// durability point regardless of the interval clock.
    pub fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        match self.inner.take() {
            Some(mut writer) => {
                writer.flush()?;
                if self.sync.policy() != FsyncPolicy::Off {
                    writer.get_ref().sync_data()?;
                }
                Ok(())
            }
            None => Ok(()),
        }
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        use std::io::Write as _;
        if let Some(mut writer) = self.inner.take() {
            let _ = writer.flush();
            if self.sync.policy() != FsyncPolicy::Off {
                let _ = writer.get_ref().sync_data();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{PmId, VmId};

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.push(0, Event::PmOpened { pm: PmId(0) });
        j.push(
            0,
            Event::VmPlaced {
                vm: VmId(1),
                pm: PmId(0),
                level: 3,
            },
        );
        j.push(
            3600,
            Event::VNodeGrew {
                pm: PmId(0),
                level: 3,
                cores_before: 1,
                cores_after: 2,
            },
        );
        j.push(
            7200,
            Event::VmDeparted {
                vm: VmId(1),
                pm: PmId(0),
            },
        );
        j
    }

    #[test]
    fn jsonl_roundtrips() {
        let journal = sample_journal();
        let jsonl = journal.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"t\":")));
        let back = Journal::from_jsonl(&jsonl).unwrap();
        assert_eq!(back, journal);
        // Blank lines are tolerated.
        let padded = format!("\n{jsonl}\n\n");
        assert_eq!(Journal::from_jsonl(&padded).unwrap(), journal);
    }

    #[test]
    fn flat_schema_is_grepable() {
        let jsonl = sample_journal().to_jsonl();
        assert!(jsonl.contains("\"kind\":\"vm_placed\""));
        assert!(jsonl.contains("\"kind\":\"v_node_grew\""));
        // No nested "event" object: the record is flat.
        assert!(!jsonl.contains("\"event\""));
    }

    #[test]
    fn counting_helpers() {
        let journal = sample_journal();
        assert_eq!(journal.len(), 4);
        assert!(!journal.is_empty());
        assert_eq!(journal.count_kind("vm_placed"), 1);
        assert_eq!(journal.count_kind("nope"), 0);
        assert_eq!(
            journal.count_where(|e| matches!(e, Event::VNodeGrew { .. })),
            1
        );
    }

    #[test]
    fn buffered_writer_roundtrips_through_disk() {
        let journal = sample_journal();
        let path =
            std::env::temp_dir().join(format!("slackvm-journal-test-{}.jsonl", std::process::id()));
        // The streaming writer and the one-shot writer agree.
        {
            let mut writer = JsonlWriter::create(&path).unwrap();
            for record in journal.iter() {
                writer.write_record(record).unwrap();
            }
            writer.finish().unwrap();
        }
        let streamed = std::fs::read_to_string(&path).unwrap();
        journal.write_jsonl(&path).unwrap();
        let oneshot = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, oneshot);
        assert_eq!(Journal::from_jsonl(&streamed).unwrap(), journal);
        // Dropping without finish() still flushes.
        {
            let mut writer = JsonlWriter::create(&path).unwrap();
            writer.write(5, Event::PmOpened { pm: PmId(9) }).unwrap();
        }
        let dropped = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Journal::from_jsonl(&dropped).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Journal::from_jsonl("{\"t\":1}").is_err());
        assert!(Journal::from_jsonl("not json").is_err());
    }

    #[test]
    fn fsync_policy_parses_and_names() {
        assert_eq!(FsyncPolicy::parse("every", 0), Some(FsyncPolicy::Every));
        assert_eq!(FsyncPolicy::parse("off", 0), Some(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("interval", 50),
            Some(FsyncPolicy::Interval(std::time::Duration::from_millis(50)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes", 0), None);
        for name in ["every", "interval", "off"] {
            assert_eq!(FsyncPolicy::parse(name, 1).unwrap().name(), name);
        }
    }

    #[test]
    fn fsync_gate_follows_its_policy() {
        let mut off = FsyncGate::new(FsyncPolicy::Off);
        let mut every = FsyncGate::new(FsyncPolicy::Every);
        for _ in 0..3 {
            assert!(!off.due());
            assert!(every.due());
        }
        // A long interval syncs once (the first flush) then goes quiet.
        let mut interval =
            FsyncGate::new(FsyncPolicy::Interval(std::time::Duration::from_secs(3600)));
        assert!(interval.due());
        assert!(!interval.due());
        // A zero interval syncs on every flush.
        let mut eager = FsyncGate::new(FsyncPolicy::Interval(std::time::Duration::ZERO));
        assert!(eager.due() && eager.due());
    }

    #[test]
    fn fsync_writer_persists_through_every_exit_path() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "slackvm-journal-fsync-{}.jsonl",
            std::process::id()
        ));
        // Explicit flush mid-stream, then finish.
        let mut writer = JsonlWriter::create(&path)
            .unwrap()
            .with_fsync(FsyncPolicy::Every);
        writer.write(1, Event::PmOpened { pm: PmId(1) }).unwrap();
        writer.flush().unwrap();
        assert_eq!(
            Journal::from_jsonl(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .len(),
            1
        );
        writer.write(2, Event::PmOpened { pm: PmId(2) }).unwrap();
        writer.finish().unwrap();
        // Drop path with a policy still flushes and syncs best-effort.
        {
            let mut writer = JsonlWriter::create(&path)
                .unwrap()
                .with_fsync(FsyncPolicy::Interval(std::time::Duration::from_secs(1)));
            writer.write(3, Event::PmOpened { pm: PmId(3) }).unwrap();
        }
        assert_eq!(
            Journal::from_jsonl(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .len(),
            1
        );
        let _ = std::fs::remove_file(&path);
    }
}
