//! Rolling-window SLO accounting for the serving path.
//!
//! An [`SloTracker`] folds request latencies and failure marks into a
//! ring of per-second buckets, so "p99 over the last minute" and
//! "error budget left this window" are O(window) queries against live
//! state instead of offline log crunching. The window slides by bucket
//! reuse: writing into a second whose slot holds stale data resets that
//! slot, so the tracker never allocates after construction.
//!
//! Two objectives are tracked against configurable [`SloTargets`]:
//!
//! - **latency**: windowed p99 of request latency vs `p99_us`;
//! - **availability**: the fraction of requests answered successfully
//!   (not shed, not refused at the door) vs `availability`. The error
//!   budget is the classic SRE formulation: a target of 0.999 allows
//!   0.1% bad requests per window; the report says how much of that
//!   allowance is still unspent.

use crate::metrics::Histogram;

/// Service-level objectives the tracker scores against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTargets {
    /// Rolling window width, seconds.
    pub window_secs: u64,
    /// Windowed p99 request-latency objective, microseconds.
    pub p99_us: u64,
    /// Fraction of requests that must be answered successfully
    /// (e.g. `0.999` tolerates one bad request per thousand).
    pub availability: f64,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            window_secs: 60,
            p99_us: 100_000,
            availability: 0.999,
        }
    }
}

impl SloTargets {
    /// Rejects degenerate targets (zero window, availability outside
    /// `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.window_secs == 0 {
            return Err("SLO window must be >= 1 second".into());
        }
        if !(self.availability > 0.0 && self.availability <= 1.0) {
            return Err(format!(
                "SLO availability target {} outside (0, 1]",
                self.availability
            ));
        }
        Ok(())
    }
}

/// One second of observations.
#[derive(Debug, Clone)]
struct Bucket {
    /// Which absolute second this slot currently holds (`u64::MAX`:
    /// never written).
    second: u64,
    latency: Histogram,
    total: u64,
    bad: u64,
}

impl Bucket {
    fn empty() -> Self {
        Bucket {
            second: u64::MAX,
            latency: Histogram::duration_us(),
            total: 0,
            bad: 0,
        }
    }

    fn reset(&mut self, second: u64) {
        self.second = second;
        self.latency = Histogram::duration_us();
        self.total = 0;
        self.bad = 0;
    }
}

/// What the window looks like right now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// Window width the figures cover, seconds.
    pub window_secs: u64,
    /// Requests observed inside the window.
    pub total: u64,
    /// Requests that failed the availability objective (shed / refused).
    pub bad: u64,
    /// Windowed p99 request latency, microseconds (0 when idle).
    pub p99_us: u64,
    /// The latency objective.
    pub target_p99_us: u64,
    /// Whether the windowed p99 meets the objective.
    pub latency_ok: bool,
    /// `bad / total` (0 when idle).
    pub shed_rate: f64,
    /// Fraction of the window's error budget still unspent, clamped to
    /// `[0, 1]`. 1.0 means no budget burned; 0.0 means the allowance is
    /// exhausted (or overdrawn).
    pub error_budget_remaining: f64,
}

impl SloReport {
    /// Whether both objectives currently hold.
    pub fn healthy(&self) -> bool {
        self.latency_ok && self.error_budget_remaining > 0.0
    }

    /// The report as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window_secs\":{},\"total\":{},\"bad\":{},\"p99_us\":{},\
             \"target_p99_us\":{},\"latency_ok\":{},\"shed_rate\":{:.6},\
             \"error_budget_remaining\":{:.6},\"healthy\":{}}}",
            self.window_secs,
            self.total,
            self.bad,
            self.p99_us,
            self.target_p99_us,
            self.latency_ok,
            self.shed_rate,
            self.error_budget_remaining,
            self.healthy(),
        )
    }

    /// A short human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "slo[{}s]: p99 {} us (target {} us, {})  shed {:.3}%  budget {:.1}% left  ({} reqs)",
            self.window_secs,
            self.p99_us,
            self.target_p99_us,
            if self.latency_ok { "ok" } else { "BREACH" },
            self.shed_rate * 100.0,
            self.error_budget_remaining * 100.0,
            self.total,
        )
    }
}

/// Rolling-window SLO accounting: see the module docs.
#[derive(Debug, Clone)]
pub struct SloTracker {
    targets: SloTargets,
    buckets: Vec<Bucket>,
}

impl SloTracker {
    /// A tracker with `targets.window_secs` one-second buckets.
    pub fn new(targets: SloTargets) -> Self {
        let width = targets.window_secs.clamp(1, 3600) as usize;
        SloTracker {
            targets,
            buckets: vec![Bucket::empty(); width],
        }
    }

    /// The configured objectives.
    pub fn targets(&self) -> SloTargets {
        self.targets
    }

    fn bucket_at(&mut self, t_ms: u64) -> &mut Bucket {
        let second = t_ms / 1000;
        let idx = (second % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[idx];
        if bucket.second != second {
            bucket.reset(second);
        }
        bucket
    }

    /// Records one answered request at `t_ms` (milliseconds since the
    /// service epoch). `ok` is false for requests that failed the
    /// availability objective (shed past deadline, refused at the door).
    pub fn record(&mut self, t_ms: u64, latency_us: u64, ok: bool) {
        let bucket = self.bucket_at(t_ms);
        bucket.total += 1;
        if ok {
            bucket.latency.record(latency_us as f64);
        } else {
            bucket.bad += 1;
        }
    }

    /// Scores the window ending at `t_ms`.
    pub fn report(&self, t_ms: u64) -> SloReport {
        let now_sec = t_ms / 1000;
        let oldest = now_sec.saturating_sub(self.targets.window_secs - 1);
        let mut latency = Histogram::duration_us();
        let (mut total, mut bad) = (0u64, 0u64);
        for bucket in &self.buckets {
            if bucket.second == u64::MAX || bucket.second < oldest || bucket.second > now_sec {
                continue;
            }
            total += bucket.total;
            bad += bucket.bad;
            latency.merge(&bucket.latency);
        }
        let p99_us = latency.percentile(0.99).unwrap_or(0.0) as u64;
        let allowed = (1.0 - self.targets.availability) * total as f64;
        let error_budget_remaining = if total == 0 {
            1.0
        } else if allowed <= 0.0 {
            // A 1.0 availability target has no budget: any bad request
            // exhausts it.
            if bad == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            (1.0 - bad as f64 / allowed).clamp(0.0, 1.0)
        };
        SloReport {
            window_secs: self.targets.window_secs,
            total,
            bad,
            p99_us,
            target_p99_us: self.targets.p99_us,
            latency_ok: p99_us <= self.targets.p99_us,
            shed_rate: if total == 0 {
                0.0
            } else {
                bad as f64 / total as f64
            },
            error_budget_remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_tracker_reports_full_budget() {
        let t = SloTracker::new(SloTargets::default());
        let r = t.report(5_000);
        assert_eq!(r.total, 0);
        assert_eq!(r.p99_us, 0);
        assert!(r.latency_ok);
        assert_eq!(r.error_budget_remaining, 1.0);
        assert!(r.healthy());
        let json = r.to_json();
        assert!(json.contains("\"healthy\":true"), "{json}");
        assert!(r.render().contains("p99 0 us"));
    }

    #[test]
    fn shed_requests_burn_the_error_budget() {
        let mut t = SloTracker::new(SloTargets {
            window_secs: 10,
            p99_us: 1_000,
            availability: 0.9,
        });
        // 100 requests, 5 shed: half of the 10% allowance burned.
        for i in 0..100u64 {
            t.record(1_000, 10, i >= 5);
        }
        let r = t.report(1_000);
        assert_eq!((r.total, r.bad), (100, 5));
        assert!((r.shed_rate - 0.05).abs() < 1e-9);
        assert!((r.error_budget_remaining - 0.5).abs() < 1e-9, "{r:?}");
        assert!(r.healthy());
        // 10 more sheds overdraw the allowance entirely.
        for _ in 0..10 {
            t.record(1_500, 0, false);
        }
        let r = t.report(1_500);
        assert_eq!(r.error_budget_remaining, 0.0);
        assert!(!r.healthy());
    }

    #[test]
    fn latency_breach_flips_the_objective() {
        let mut t = SloTracker::new(SloTargets {
            window_secs: 5,
            p99_us: 100,
            availability: 0.99,
        });
        for _ in 0..50 {
            t.record(0, 10, true);
        }
        assert!(t.report(0).latency_ok);
        for _ in 0..50 {
            t.record(0, 10_000, true);
        }
        let r = t.report(0);
        assert!(!r.latency_ok, "{r:?}");
        assert!(!r.healthy());
    }

    #[test]
    fn old_buckets_slide_out_of_the_window() {
        let mut t = SloTracker::new(SloTargets {
            window_secs: 3,
            ..SloTargets::default()
        });
        t.record(0, 50, true);
        assert_eq!(t.report(0).total, 1);
        // Three seconds later the sample has aged out.
        assert_eq!(t.report(3_000).total, 0);
        // Writing into the wrapped slot resets the stale second.
        t.record(3_000, 70, true);
        assert_eq!(t.report(3_000).total, 1);
    }

    #[test]
    fn degenerate_targets_are_rejected() {
        assert!(SloTargets::default().validate().is_ok());
        assert!(SloTargets {
            window_secs: 0,
            ..SloTargets::default()
        }
        .validate()
        .is_err());
        assert!(SloTargets {
            availability: 1.5,
            ..SloTargets::default()
        }
        .validate()
        .is_err());
    }
}
