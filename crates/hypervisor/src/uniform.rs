//! The dedicated-cluster baseline worker.

use std::collections::BTreeMap;

use slackvm_model::{AllocView, Millicores, OversubLevel, PmConfig, PmId, VmId, VmSpec};

use crate::error::HypervisorError;
use crate::host::Host;

/// A single-level worker: the whole machine adheres to one
/// oversubscription ratio, as in conventional clusters ("each PM adhering
/// to at most a single oversubscription ratio", paper §I).
///
/// Capacity is a pair of counters — up to `n × cores` vCPUs and the
/// machine's DRAM — with no partitioning or pinning. Its [`Host::alloc`]
/// reports *physical* consumption (`Σ vCPUs / n`, rounded up per VM) so
/// baseline and SlackVM clusters expose comparable allocation views.
#[derive(Debug, Clone)]
pub struct UniformMachine {
    id: PmId,
    config: PmConfig,
    level: OversubLevel,
    vcpus_used: u32,
    mem_used_mib: u64,
    vms: BTreeMap<VmId, VmSpec>,
}

impl UniformMachine {
    /// Creates a worker dedicated to `level`.
    pub fn new(id: PmId, config: PmConfig, level: OversubLevel) -> Self {
        UniformMachine {
            id,
            config,
            level,
            vcpus_used: 0,
            mem_used_mib: 0,
            vms: BTreeMap::new(),
        }
    }

    /// The level this worker is dedicated to.
    pub fn level(&self) -> OversubLevel {
        self.level
    }

    /// Exposed vCPU capacity (`n × cores`).
    pub fn vcpu_capacity(&self) -> u32 {
        self.level.vcpu_capacity(self.config.cores)
    }

    /// vCPUs currently sold.
    pub fn vcpus_used(&self) -> u32 {
        self.vcpus_used
    }

    /// Free memory in MiB.
    pub fn free_mem_mib(&self) -> u64 {
        self.config.mem_mib - self.mem_used_mib
    }

    /// Free vCPU capacity at this worker's level.
    pub fn free_vcpus(&self) -> u32 {
        self.vcpu_capacity() - self.vcpus_used
    }
}

impl Host for UniformMachine {
    fn id(&self) -> PmId {
        self.id
    }

    fn config(&self) -> PmConfig {
        self.config
    }

    fn alloc(&self) -> AllocView {
        // Physical view: total vCPUs collapsed by the machine's ratio.
        AllocView::new(
            Millicores::for_vcpus_at_level(self.vcpus_used, self.level.ratio()),
            self.mem_used_mib,
        )
    }

    fn can_host(&self, spec: &VmSpec) -> bool {
        spec.level == self.level
            && self.vcpus_used + spec.vcpus() <= self.vcpu_capacity()
            && spec.mem_mib() <= self.free_mem_mib()
    }

    fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<(), HypervisorError> {
        if self.vms.contains_key(&id) {
            return Err(HypervisorError::DuplicateVm(id));
        }
        if spec.level != self.level {
            return Err(HypervisorError::LevelMismatch {
                host_level: self.level,
                vm_level: spec.level,
            });
        }
        if self.vcpus_used + spec.vcpus() > self.vcpu_capacity() {
            let needed = self
                .level
                .cores_needed(self.vcpus_used + spec.vcpus())
                .saturating_sub(self.config.cores);
            return Err(HypervisorError::InsufficientCpu {
                level: self.level,
                needed,
                free: 0,
            });
        }
        if spec.mem_mib() > self.free_mem_mib() {
            return Err(HypervisorError::InsufficientMemory {
                requested_mib: spec.mem_mib(),
                free_mib: self.free_mem_mib(),
            });
        }
        self.vcpus_used += spec.vcpus();
        self.mem_used_mib += spec.mem_mib();
        self.vms.insert(id, spec);
        Ok(())
    }

    fn remove(&mut self, id: VmId) -> Result<VmSpec, HypervisorError> {
        let spec = self.vms.remove(&id).ok_or(HypervisorError::UnknownVm(id))?;
        self.vcpus_used -= spec.vcpus();
        self.mem_used_mib -= spec.mem_mib();
        Ok(spec)
    }

    /// Vertically resizes a hosted VM (same level). Atomic: feasibility
    /// is checked before any counter moves. Zero dimensions clamp to 1.
    fn resize_vm(
        &mut self,
        id: VmId,
        new_vcpus: u32,
        new_mem_mib: u64,
    ) -> Result<(), HypervisorError> {
        let old = *self.vms.get(&id).ok_or(HypervisorError::UnknownVm(id))?;
        let new_spec = VmSpec::of(new_vcpus.max(1), new_mem_mib.max(1), self.level);
        let post_vcpus = self.vcpus_used - old.vcpus() + new_spec.vcpus();
        if post_vcpus > self.vcpu_capacity() {
            return Err(HypervisorError::InsufficientCpu {
                level: self.level,
                needed: self
                    .level
                    .cores_needed(post_vcpus)
                    .saturating_sub(self.config.cores),
                free: 0,
            });
        }
        let post_mem = self.mem_used_mib - old.mem_mib() + new_spec.mem_mib();
        if post_mem > self.config.mem_mib {
            return Err(HypervisorError::InsufficientMemory {
                requested_mib: new_spec.mem_mib() - old.mem_mib(),
                free_mib: self.free_mem_mib(),
            });
        }
        self.vcpus_used = post_vcpus;
        self.mem_used_mib = post_mem;
        self.vms.insert(id, new_spec);
        Ok(())
    }

    fn num_vms(&self) -> usize {
        self.vms.len()
    }

    fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    fn placements(&self) -> Vec<(VmId, VmSpec)> {
        self.vms.iter().map(|(id, spec)| (*id, *spec)).collect()
    }

    fn admission_headroom(&self) -> crate::host::AdmissionHeadroom {
        // Both bounds are exact here: a single-level worker's only
        // constraints are the vCPU counter and DRAM (a level mismatch is
        // caught by the authoritative check on admitted candidates).
        crate::host::AdmissionHeadroom {
            free_mem_mib: self.free_mem_mib(),
            free_vcpus: Some(self.free_vcpus()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;

    fn host(level: u32) -> UniformMachine {
        UniformMachine::new(
            PmId(0),
            PmConfig::simulation_host(),
            OversubLevel::of(level),
        )
    }

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    #[test]
    fn capacity_scales_with_level() {
        assert_eq!(host(1).vcpu_capacity(), 32);
        assert_eq!(host(2).vcpu_capacity(), 64);
        assert_eq!(host(3).vcpu_capacity(), 96);
    }

    #[test]
    fn rejects_foreign_levels() {
        let mut h = host(2);
        assert!(!h.can_host(&spec(1, 1, 1)));
        assert!(matches!(
            h.deploy(VmId(0), spec(1, 1, 3)).unwrap_err(),
            HypervisorError::LevelMismatch { .. }
        ));
    }

    #[test]
    fn fills_to_vcpu_capacity() {
        let mut h = host(3);
        for i in 0..24 {
            h.deploy(VmId(i), spec(4, 1, 3)).unwrap(); // 96 vCPUs total
        }
        assert_eq!(h.vcpus_used(), 96);
        assert!(!h.can_host(&spec(1, 1, 3)));
        assert!(matches!(
            h.deploy(VmId(99), spec(1, 1, 3)).unwrap_err(),
            HypervisorError::InsufficientCpu { .. }
        ));
    }

    #[test]
    fn memory_bounds_oversubscribed_hosts_first_when_ratio_is_high() {
        // At 3:1 with 8 GiB VMs of 2 vCPUs (M/C 12 per core): memory is
        // the binding constraint on a 4 GiB/core machine.
        let mut h = host(3);
        let mut deployed = 0;
        for i in 0..1000 {
            if h.deploy(VmId(i), spec(2, 8, 3)).is_err() {
                break;
            }
            deployed += 1;
        }
        assert_eq!(deployed, 16, "128 GiB / 8 GiB = 16 VMs, not vCPU-bound");
        let alloc = h.alloc();
        assert!(alloc.unallocated_cpu_share(&h.config()) > 0.5);
        assert_eq!(alloc.unallocated_mem_share(&h.config()), 0.0);
    }

    #[test]
    fn alloc_reports_physical_cpu() {
        let mut h = host(2);
        h.deploy(VmId(0), spec(4, 4, 2)).unwrap();
        assert_eq!(h.alloc().cpu, Millicores::from_cores(2));
        h.remove(VmId(0)).unwrap();
        assert_eq!(h.alloc(), AllocView::EMPTY);
        assert!(h.is_idle());
    }

    #[test]
    fn resize_adjusts_counters_atomically() {
        let mut h = host(2); // 64 vCPU capacity
        h.deploy(VmId(0), spec(4, 8, 2)).unwrap();
        h.resize_vm(VmId(0), 8, gib(16)).unwrap();
        assert_eq!(h.vcpus_used(), 8);
        assert_eq!(h.free_mem_mib(), gib(112));
        // Infeasible resize leaves state untouched.
        assert!(h.resize_vm(VmId(0), 100, gib(1)).is_err());
        assert!(h.resize_vm(VmId(0), 1, gib(200)).is_err());
        assert_eq!(h.vcpus_used(), 8);
        assert!(matches!(
            h.resize_vm(VmId(5), 1, 1).unwrap_err(),
            HypervisorError::UnknownVm(_)
        ));
    }

    #[test]
    fn duplicate_and_unknown_errors() {
        let mut h = host(1);
        h.deploy(VmId(0), spec(1, 1, 1)).unwrap();
        assert!(matches!(
            h.deploy(VmId(0), spec(1, 1, 1)).unwrap_err(),
            HypervisorError::DuplicateVm(_)
        ));
        assert!(matches!(
            h.remove(VmId(5)).unwrap_err(),
            HypervisorError::UnknownVm(_)
        ));
    }
}
