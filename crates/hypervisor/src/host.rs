//! The common host interface shared by SlackVM and baseline workers.

use slackvm_model::{AllocView, PmConfig, PmId, VmId, VmSpec};

use crate::error::HypervisorError;

/// A machine that can admit and release VMs.
///
/// Both the partitioned SlackVM worker ([`crate::PhysicalMachine`]) and
/// the dedicated-cluster baseline worker ([`crate::UniformMachine`])
/// implement this; the simulator and the global scheduler only ever see
/// this interface plus the pure `(PmConfig, AllocView)` scoring inputs.
pub trait Host {
    /// Stable identifier within the cluster.
    fn id(&self) -> PmId;

    /// Hardware configuration.
    fn config(&self) -> PmConfig;

    /// Current physical allocation (whole-core accounting for
    /// partitioned hosts — oversubscribed vNodes are "considered through
    /// the PM allocation", paper §VI).
    fn alloc(&self) -> AllocView;

    /// Whether `spec` could be deployed right now.
    fn can_host(&self, spec: &VmSpec) -> bool;

    /// Deploys a VM. Must succeed when [`Host::can_host`] just returned
    /// true and no other mutation intervened.
    fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<(), HypervisorError>;

    /// Removes a VM, returning its spec.
    fn remove(&mut self, id: VmId) -> Result<VmSpec, HypervisorError>;

    /// Number of hosted VMs.
    fn num_vms(&self) -> usize;

    /// Ids of the hosted VMs, ascending (used for eviction on host
    /// failure and for snapshots).
    fn vm_ids(&self) -> Vec<VmId>;

    /// True when nothing is hosted.
    fn is_idle(&self) -> bool {
        self.num_vms() == 0
    }
}
