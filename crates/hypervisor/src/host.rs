//! The common host interface shared by SlackVM and baseline workers.

use slackvm_model::{AllocView, PmConfig, PmId, VmId, VmSpec};

use crate::error::HypervisorError;

/// A conservative admission bound a host publishes for cheap pre-filtering
/// (the placement index's bucket key).
///
/// "Conservative" means: a VM exceeding either bound is *provably*
/// unhostable, while one within both bounds may still be rejected by
/// [`Host::can_host`]. Skipping hosts on these bounds can therefore never
/// change a placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionHeadroom {
    /// Free physical memory in MiB — exact for every host kind, since
    /// memory is never oversubscribed.
    pub free_mem_mib: u64,
    /// Free vCPU capacity, when the host kind can bound it cheaply and
    /// exactly (single-level workers). `None` means "no cheap CPU bound":
    /// partitioned hosts can absorb vCPUs into existing vNode slack, so
    /// their marginal core cost is not a simple subtraction.
    pub free_vcpus: Option<u32>,
}

/// A machine that can admit and release VMs.
///
/// Both the partitioned SlackVM worker ([`crate::PhysicalMachine`]) and
/// the dedicated-cluster baseline worker ([`crate::UniformMachine`])
/// implement this; the simulator and the global scheduler only ever see
/// this interface plus the pure `(PmConfig, AllocView)` scoring inputs.
pub trait Host {
    /// Stable identifier within the cluster.
    fn id(&self) -> PmId;

    /// Hardware configuration.
    fn config(&self) -> PmConfig;

    /// Current physical allocation (whole-core accounting for
    /// partitioned hosts — oversubscribed vNodes are "considered through
    /// the PM allocation", paper §VI).
    fn alloc(&self) -> AllocView;

    /// Whether `spec` could be deployed right now.
    fn can_host(&self, spec: &VmSpec) -> bool;

    /// Deploys a VM. Must succeed when [`Host::can_host`] just returned
    /// true and no other mutation intervened.
    fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<(), HypervisorError>;

    /// Removes a VM, returning its spec.
    fn remove(&mut self, id: VmId) -> Result<VmSpec, HypervisorError>;

    /// Vertically resizes a hosted VM in place. Atomic: either the VM
    /// ends up with the new dimensions or the host is unchanged.
    fn resize_vm(
        &mut self,
        id: VmId,
        new_vcpus: u32,
        new_mem_mib: u64,
    ) -> Result<(), HypervisorError>;

    /// The host's conservative admission bounds (see
    /// [`AdmissionHeadroom`]). The default derives the exact memory
    /// bound from `config`/`alloc` and declines to bound CPU; hosts
    /// with cheap exact CPU accounting should override.
    fn admission_headroom(&self) -> AdmissionHeadroom {
        AdmissionHeadroom {
            free_mem_mib: self.config().mem_mib.saturating_sub(self.alloc().mem_mib),
            free_vcpus: None,
        }
    }

    /// Number of hosted VMs.
    fn num_vms(&self) -> usize;

    /// Ids of the hosted VMs, ascending (used for eviction on host
    /// failure and for snapshots).
    fn vm_ids(&self) -> Vec<VmId>;

    /// The hosted VMs with their current specs, ascending by id — the
    /// non-destructive spec lookup durable state capture needs.
    fn placements(&self) -> Vec<(VmId, VmSpec)>;

    /// True when nothing is hosted.
    fn is_idle(&self) -> bool {
        self.num_vms() == 0
    }
}
