//! Dynamic oversubscription levels — the paper's §VIII perspective
//! ("While our vNodes adopted static oversubscription levels, they could
//! potentially benefit from dynamically computed levels"), following the
//! peak-prediction approach of the paper's reference \[1\] (Bashir et al.,
//! "Take it to the limit"): a vNode whose VMs collectively peak well
//! below their allocation can safely expose more vCPUs per core.
//!
//! Like [`crate::compaction`], this module is *advisory*: it recommends
//! levels and quantifies the cores a retune would free; the actual knob
//! ("used to tune the performances of hosted services according to
//! agreed SLA") belongs to the provider's control loop.

use serde::{Deserialize, Serialize};

use slackvm_model::OversubLevel;

/// Tuning parameters of the level recommender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicLevelConfig {
    /// Demand quantile treated as the "peak" (reference \[1\] uses
    /// high percentiles of historical usage).
    pub peak_quantile: f64,
    /// Multiplicative head-room on the predicted peak.
    pub safety_margin: f64,
    /// Hardest oversubscription the provider is willing to sell.
    pub max_level: u32,
}

impl Default for DynamicLevelConfig {
    fn default() -> Self {
        DynamicLevelConfig {
            peak_quantile: 0.98,
            safety_margin: 1.25,
            max_level: 8,
        }
    }
}

/// The recommendation for one vNode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelRecommendation {
    /// The level the vNode currently enforces.
    pub current: OversubLevel,
    /// The level the demand history supports.
    pub recommended: OversubLevel,
    /// The peak (quantile) demand observed, in core-units.
    pub peak_demand_cores: f64,
    /// Span size at the current level.
    pub cores_now: u32,
    /// Span size at the recommended level.
    pub cores_after: u32,
}

impl LevelRecommendation {
    /// Cores a retune would free (negative when the vNode must grow).
    pub fn cores_freed(&self) -> i64 {
        self.cores_now as i64 - self.cores_after as i64
    }
}

/// Recommends an oversubscription level for a vNode exposing
/// `total_vcpus`, given its aggregate demand history (core-units per
/// sample).
///
/// The recommendation never *loosens* a guarantee the provider sold:
/// it is clamped to be at least as strict as... rather, at most as
/// *oversubscribed* as `config.max_level`, and at least 1:1. Note that
/// raising the level of already-sold premium VMs would break their SLA;
/// callers apply recommendations per vNode *policy*, not per VM.
pub fn recommend_level(
    demand_history: &[f64],
    total_vcpus: u32,
    current: OversubLevel,
    config: &DynamicLevelConfig,
) -> LevelRecommendation {
    let peak = peak_demand(demand_history, config.peak_quantile);
    let padded = peak * config.safety_margin;
    let recommended_ratio = if padded <= f64::EPSILON {
        config.max_level
    } else {
        // The span must keep `padded` cores available; at level n the
        // span has ceil(vcpus/n) cores, so pick the largest n with
        // vcpus/n >= padded.
        ((total_vcpus as f64 / padded).floor() as u32).clamp(1, config.max_level)
    };
    let recommended = OversubLevel::of(recommended_ratio.clamp(1, 64));
    LevelRecommendation {
        current,
        recommended,
        peak_demand_cores: peak,
        cores_now: current.cores_needed(total_vcpus),
        cores_after: recommended.cores_needed(total_vcpus),
    }
}

/// The demand quantile over a history (nearest-rank; 0 on empty input).
fn peak_demand(history: &[f64], quantile: f64) -> f64 {
    if history.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = history.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank =
        ((quantile.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// [`recommend_level`] with telemetry: journals a
/// [`LevelRecommended`](slackvm_telemetry::Event::LevelRecommended)
/// event at `time_secs` whenever the recommendation differs from the
/// current level (no-op retunes are not journalled; the call is still
/// counted under `hypervisor.level_checks`).
pub fn recommend_level_recorded<R: slackvm_telemetry::Recorder>(
    demand_history: &[f64],
    total_vcpus: u32,
    current: OversubLevel,
    config: &DynamicLevelConfig,
    time_secs: u64,
    recorder: &mut R,
) -> LevelRecommendation {
    let rec = recommend_level(demand_history, total_vcpus, current, config);
    if recorder.enabled() {
        recorder.count("hypervisor.level_checks", 1);
        if rec.recommended != rec.current {
            recorder.record(
                time_secs,
                slackvm_telemetry::Event::LevelRecommended {
                    vcpus: total_vcpus,
                    current: rec.current.ratio(),
                    recommended: rec.recommended.ratio(),
                    cores_freed: rec.cores_freed(),
                },
            );
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> DynamicLevelConfig {
        DynamicLevelConfig::default()
    }

    #[test]
    fn quiet_vnode_can_tighten_to_the_cap() {
        // 48 vCPUs peaking at 4 cores of demand: 48 / (4·1.25) = 9.6 ->
        // clamped to max_level 8.
        let history = vec![2.0, 3.0, 4.0, 3.5, 2.5];
        let rec = recommend_level(&history, 48, OversubLevel::of(3), &cfg());
        assert_eq!(rec.recommended.ratio(), 8);
        assert_eq!(rec.cores_now, 16);
        assert_eq!(rec.cores_after, 6);
        assert_eq!(rec.cores_freed(), 10);
    }

    #[test]
    fn hot_vnode_falls_back_to_premium() {
        // 16 vCPUs peaking at 15 cores: only 1:1 is safe.
        let history = vec![14.0, 15.0, 13.0];
        let rec = recommend_level(&history, 16, OversubLevel::of(2), &cfg());
        assert_eq!(rec.recommended, OversubLevel::PREMIUM);
        assert!(rec.cores_freed() < 0, "the span must grow");
    }

    #[test]
    fn idle_history_recommends_the_cap() {
        let rec = recommend_level(&[0.0, 0.0], 12, OversubLevel::of(2), &cfg());
        assert_eq!(rec.recommended.ratio(), 8);
        let rec = recommend_level(&[], 12, OversubLevel::of(2), &cfg());
        assert_eq!(rec.recommended.ratio(), 8);
        assert_eq!(rec.peak_demand_cores, 0.0);
    }

    #[test]
    fn peak_uses_the_requested_quantile() {
        // 100 samples at 1.0 plus one spike of 50: p98 ignores...
        // actually with 101 samples rank(0.98)=99 -> 1.0; max would be 50.
        let mut history = vec![1.0; 100];
        history.push(50.0);
        let rec = recommend_level(&history, 32, OversubLevel::of(2), &cfg());
        assert!((rec.peak_demand_cores - 1.0).abs() < 1e-12);
        let strict = DynamicLevelConfig {
            peak_quantile: 1.0,
            ..cfg()
        };
        let rec = recommend_level(&history, 32, OversubLevel::of(2), &strict);
        assert!((rec.peak_demand_cores - 50.0).abs() < 1e-12);
    }

    #[test]
    fn recorded_recommendation_journals_only_retunes() {
        use slackvm_telemetry::{Event, Telemetry};
        let mut telemetry = Telemetry::new();
        // A quiet vNode: retune recommended, so an event lands.
        let history = vec![2.0, 3.0, 4.0, 3.5, 2.5];
        let rec = recommend_level_recorded(
            &history,
            48,
            OversubLevel::of(3),
            &cfg(),
            7200,
            &mut telemetry,
        );
        assert_eq!(
            rec,
            recommend_level(&history, 48, OversubLevel::of(3), &cfg())
        );
        assert_eq!(telemetry.journal.count_kind("level_recommended"), 1);
        match &telemetry.journal.records()[0].event {
            Event::LevelRecommended {
                current,
                recommended,
                cores_freed,
                ..
            } => {
                assert_eq!(*current, 3);
                assert_eq!(*recommended, 8);
                assert_eq!(*cores_freed, 10);
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Already at the recommended level: counted, not journalled.
        recommend_level_recorded(
            &history,
            48,
            OversubLevel::of(8),
            &cfg(),
            7200,
            &mut telemetry,
        );
        assert_eq!(telemetry.journal.len(), 1);
        assert_eq!(telemetry.metrics.counter("hypervisor.level_checks"), 2);
    }

    proptest! {
        #[test]
        fn recommendation_is_always_safe(
            history in prop::collection::vec(0.0f64..64.0, 1..200),
            vcpus in 1u32..256,
        ) {
            let rec = recommend_level(&history, vcpus, OversubLevel::of(3), &cfg());
            let n = rec.recommended.ratio();
            prop_assert!((1..=cfg().max_level).contains(&n));
            // The recommended span still covers the padded peak:
            // vcpus/n >= peak·margin (up to the floor's slack of one n).
            let span_capacity = vcpus as f64 / n as f64;
            if n > 1 {
                prop_assert!(
                    span_capacity >= rec.peak_demand_cores * cfg().safety_margin - 1e-9,
                    "span {span_capacity} vs padded peak {}",
                    rec.peak_demand_cores * cfg().safety_margin
                );
            }
        }

        #[test]
        fn lower_demand_never_lowers_the_level(
            history in prop::collection::vec(0.1f64..32.0, 5..100),
            vcpus in 8u32..128,
            scale in 0.1f64..1.0,
        ) {
            let rec_full = recommend_level(&history, vcpus, OversubLevel::of(2), &cfg());
            let scaled: Vec<f64> = history.iter().map(|d| d * scale).collect();
            let rec_scaled = recommend_level(&scaled, vcpus, OversubLevel::of(2), &cfg());
            prop_assert!(rec_scaled.recommended.ratio() >= rec_full.recommended.ratio());
        }
    }
}
