//! vNode pooling (paper §V-B): execution spans.
//!
//! For *allocation*, every vNode owns its cores exclusively. For
//! *execution*, SlackVM may pool the oversubscribed vNodes — letting
//! their VMs schedule over the union of their cores plus any unassigned
//! cores — provided the union still honours the **strictest** pooled
//! level's `n:1` guarantee ("a VM with a 2:1 oversubscription level may
//! coexist with VM belonging to a 3:1 oversubscription level, if and only
//! if the set of physical resources still complies with the 2:1 ratio").
//!
//! Pooling increases workload heterogeneity inside the span (more VMs →
//! more statistical multiplexing), which is why the perf model consumes
//! these spans rather than raw vNodes. Premium (1:1) vNodes are never
//! pooled.

use serde::{Deserialize, Serialize};

use slackvm_model::OversubLevel;
use slackvm_model::VmId;
use slackvm_topology::CoreId;

use crate::machine::PhysicalMachine;

/// A set of cores over which a set of VMs is actually scheduled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSpan {
    /// Oversubscription levels whose VMs run on this span.
    pub levels: Vec<OversubLevel>,
    /// The cores of the span, ascending.
    pub cores: Vec<CoreId>,
    /// VMs scheduled on the span.
    pub vm_ids: Vec<VmId>,
    /// Total vCPUs exposed on the span.
    pub total_vcpus: u32,
    /// The guarantee the span must honour (strictest pooled level).
    pub guarantee: OversubLevel,
}

impl ExecutionSpan {
    /// vCPUs per core over the span — must not exceed `guarantee.ratio()`.
    pub fn pressure(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.total_vcpus as f64 / self.cores.len() as f64
        }
    }

    /// True when the span honours its guarantee.
    pub fn is_valid(&self) -> bool {
        self.total_vcpus <= self.guarantee.vcpu_capacity(self.cores.len() as u32)
    }
}

/// Computes the machine's execution spans.
///
/// With `pooling` disabled every vNode is its own span. With it enabled,
/// all oversubscribed vNodes merge — together with the machine's free
/// cores — when the merged span still honours the strictest level;
/// otherwise vNodes stay separate (deterministic, conservative fallback).
pub fn execution_spans(machine: &PhysicalMachine, pooling: bool) -> Vec<ExecutionSpan> {
    let own_span = |vnode: &crate::vnode::VNode| ExecutionSpan {
        levels: vec![vnode.level()],
        cores: vnode.core_vec(),
        vm_ids: vnode.vms().map(|(id, _)| *id).collect(),
        total_vcpus: vnode.total_vcpus(),
        guarantee: vnode.level(),
    };

    let mut spans = Vec::new();
    let mut pooled_levels = Vec::new();
    let mut pooled_cores = Vec::new();
    let mut pooled_vms = Vec::new();
    let mut pooled_vcpus = 0u32;
    let mut strictest: Option<OversubLevel> = None;

    for vnode in machine.vnodes() {
        if vnode.level().is_premium() || !pooling {
            spans.push(own_span(vnode));
        } else {
            pooled_levels.push(vnode.level());
            pooled_cores.extend(vnode.core_vec());
            pooled_vms.extend(vnode.vms().map(|(id, _)| *id));
            pooled_vcpus += vnode.total_vcpus();
            strictest = Some(match strictest {
                Some(s) if s.satisfies(vnode.level()) => s,
                _ => vnode.level(),
            });
        }
    }

    if let Some(guarantee) = strictest {
        // Fold in the machine's unassigned cores: resources "that remain
        // unallocated by the non-oversubscribed vNode on the same PM".
        pooled_cores.extend(machine.free_cores());
        pooled_cores.sort_unstable();
        let candidate = ExecutionSpan {
            levels: pooled_levels,
            cores: pooled_cores,
            vm_ids: pooled_vms,
            total_vcpus: pooled_vcpus,
            guarantee,
        };
        if candidate.is_valid() {
            spans.push(candidate);
        } else {
            // Conservative fallback: no pooling for this machine state.
            for vnode in machine.vnodes() {
                if !vnode.level().is_premium() {
                    spans.push(own_span(vnode));
                }
            }
        }
    }
    spans.sort_by_key(|s| s.guarantee);
    spans
}

/// [`execution_spans`] with telemetry.
///
/// When pooling is requested and the machine hosts oversubscribed
/// vNodes, exactly one of two events is journalled at `time_secs`:
/// [`VNodePooled`](slackvm_telemetry::Event::VNodePooled) describing the
/// merged span, or
/// [`VNodeUnpooled`](slackvm_telemetry::Event::VNodeUnpooled) when the
/// union would violate the strictest guarantee and the vNodes kept their
/// own spans.
pub fn execution_spans_recorded<R: slackvm_telemetry::Recorder>(
    machine: &PhysicalMachine,
    pooling: bool,
    time_secs: u64,
    recorder: &mut R,
) -> Vec<ExecutionSpan> {
    let span = recorder.begin("hypervisor.pooling.spans");
    let spans = execution_spans(machine, pooling);
    recorder.end(span);
    if recorder.enabled() && pooling {
        use crate::host::Host;
        let oversub: Vec<u32> = machine
            .vnodes()
            .filter(|v| !v.level().is_premium())
            .map(|v| v.level().ratio())
            .collect();
        if !oversub.is_empty() {
            // A successful merge leaves exactly one non-premium span;
            // the conservative fallback leaves one per vNode.
            let merged: Vec<&ExecutionSpan> =
                spans.iter().filter(|s| !s.guarantee.is_premium()).collect();
            if let [only] = merged.as_slice() {
                recorder.record(
                    time_secs,
                    slackvm_telemetry::Event::VNodePooled {
                        pm: machine.id(),
                        levels: only.levels.iter().map(|l| l.ratio()).collect(),
                        cores: only.cores.len() as u32,
                        vcpus: only.total_vcpus,
                        guarantee: only.guarantee.ratio(),
                    },
                );
            } else {
                recorder.record(
                    time_secs,
                    slackvm_telemetry::Event::VNodeUnpooled {
                        pm: machine.id(),
                        levels: oversub,
                    },
                );
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use slackvm_model::{gib, PmId, VmSpec};
    use slackvm_topology::builders;
    use std::sync::Arc;

    fn machine() -> PhysicalMachine {
        PhysicalMachine::with_topology_policy(PmId(0), Arc::new(builders::flat(32)), gib(128))
    }

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    #[test]
    fn premium_never_pools() {
        let mut m = machine();
        m.deploy(VmId(0), spec(4, 4, 1)).unwrap();
        m.deploy(VmId(1), spec(4, 4, 2)).unwrap();
        m.deploy(VmId(2), spec(3, 3, 3)).unwrap();
        let spans = execution_spans(&m, true);
        assert_eq!(spans.len(), 2);
        let premium = &spans[0];
        assert_eq!(premium.levels, vec![OversubLevel::of(1)]);
        assert_eq!(premium.cores.len(), 4);
        let pooled = &spans[1];
        assert_eq!(pooled.levels.len(), 2);
        assert_eq!(pooled.guarantee, OversubLevel::of(2));
        assert!(pooled.is_valid());
    }

    #[test]
    fn pooled_span_absorbs_free_cores() {
        let mut m = machine();
        m.deploy(VmId(0), spec(6, 6, 3)).unwrap(); // 2 cores
        let spans = execution_spans(&m, true);
        assert_eq!(spans.len(), 1);
        // All 32 cores: 2 assigned + 30 free.
        assert_eq!(spans[0].cores.len(), 32);
        assert!(spans[0].pressure() < 1.0);
    }

    #[test]
    fn pooling_disabled_keeps_vnodes_separate() {
        let mut m = machine();
        m.deploy(VmId(0), spec(4, 4, 2)).unwrap();
        m.deploy(VmId(1), spec(3, 3, 3)).unwrap();
        let spans = execution_spans(&m, false);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.levels.len() == 1));
        // Each span is exactly its vNode.
        assert_eq!(spans[0].cores.len(), 2); // 4 vCPUs @ 2:1
        assert_eq!(spans[1].cores.len(), 1); // 3 vCPUs @ 3:1
    }

    #[test]
    fn infeasible_pool_falls_back() {
        // Fill the machine completely: premium 26 cores, 2:1 with 8
        // vCPUs (4 cores), 3:1 with 6 vCPUs (2 cores). No free cores.
        // Pooled union: 14 vCPUs on 6 cores = 2.33 > 2 -> infeasible.
        let mut m = machine();
        m.deploy(VmId(0), spec(26, 26, 1)).unwrap();
        m.deploy(VmId(1), spec(8, 8, 2)).unwrap();
        m.deploy(VmId(2), spec(6, 6, 3)).unwrap();
        assert_eq!(m.free_core_count(), 0);
        let spans = execution_spans(&m, true);
        // Fallback: three single-level spans.
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.is_valid()));
    }

    #[test]
    fn span_pressure_and_validity() {
        let span = ExecutionSpan {
            levels: vec![OversubLevel::of(2)],
            cores: (0..4).map(CoreId).collect(),
            vm_ids: vec![],
            total_vcpus: 8,
            guarantee: OversubLevel::of(2),
        };
        assert!((span.pressure() - 2.0).abs() < 1e-12);
        assert!(span.is_valid());
        let over = ExecutionSpan {
            total_vcpus: 9,
            ..span
        };
        assert!(!over.is_valid());
    }

    #[test]
    fn empty_machine_has_no_spans() {
        let m = machine();
        assert!(execution_spans(&m, true).is_empty());
    }

    #[test]
    fn recorded_spans_journal_pooling_outcome() {
        use slackvm_telemetry::{Event, Telemetry};
        // Feasible pool: 2:1 and 3:1 merge.
        let mut m = machine();
        m.deploy(VmId(0), spec(4, 4, 2)).unwrap();
        m.deploy(VmId(1), spec(3, 3, 3)).unwrap();
        let mut telemetry = Telemetry::new();
        let spans = execution_spans_recorded(&m, true, 60, &mut telemetry);
        assert_eq!(spans, execution_spans(&m, true));
        assert_eq!(telemetry.journal.count_kind("v_node_pooled"), 1);
        match &telemetry.journal.records()[0].event {
            Event::VNodePooled {
                pm,
                levels,
                guarantee,
                ..
            } => {
                assert_eq!(*pm, PmId(0));
                assert_eq!(levels, &vec![2, 3]);
                assert_eq!(*guarantee, 2);
            }
            other => panic!("unexpected event {other:?}"),
        }

        // Infeasible pool: the fallback is journalled as unpooled.
        let mut full = machine();
        full.deploy(VmId(0), spec(26, 26, 1)).unwrap();
        full.deploy(VmId(1), spec(8, 8, 2)).unwrap();
        full.deploy(VmId(2), spec(6, 6, 3)).unwrap();
        let mut telemetry = Telemetry::new();
        execution_spans_recorded(&full, true, 60, &mut telemetry);
        assert_eq!(telemetry.journal.count_kind("v_node_unpooled"), 1);

        // Pooling off: spans are computed but nothing is journalled.
        let mut telemetry = Telemetry::new();
        execution_spans_recorded(&m, false, 60, &mut telemetry);
        assert!(telemetry.journal.is_empty());
        assert_eq!(telemetry.trace.spans()[0].name, "hypervisor.pooling.spans");
    }
}
