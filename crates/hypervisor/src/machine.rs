//! The partitioned SlackVM worker.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use slackvm_model::{AllocView, Millicores, OversubLevel, PmConfig, PmId, VmId, VmSpec};
use slackvm_topology::{CoreId, CpuTopology, DistanceMatrix, SelectionPolicy, TopologySelection};

use crate::error::HypervisorError;
use crate::host::Host;
use crate::stats::PinChurn;
use crate::vnode::VNode;

/// A physical machine managed by the SlackVM local scheduler: its cores
/// are partitioned into per-level vNodes that grow and shrink with the
/// hosted VM set (paper §V).
///
/// CPU accounting is whole-core: the machine's allocated CPU is the union
/// of its vNode spans, which is also exactly what the pinning layer would
/// reserve. Memory is not oversubscribed unless a `mem_ratio` is set.
///
/// ```
/// use slackvm_hypervisor::{Host, PhysicalMachine};
/// use slackvm_model::{gib, OversubLevel, PmId, VmId, VmSpec};
/// use slackvm_topology::builders::flat;
/// use std::sync::Arc;
///
/// let mut pm = PhysicalMachine::with_topology_policy(PmId(0), Arc::new(flat(32)), gib(128));
/// // Three 1-vCPU VMs at 3:1 share a single physical core.
/// for i in 0..3 {
///     pm.deploy(VmId(i), VmSpec::of(1, gib(1), OversubLevel::of(3))).unwrap();
/// }
/// assert_eq!(pm.vnode(OversubLevel::of(3)).unwrap().num_cores(), 1);
/// ```
#[derive(Clone)]
pub struct PhysicalMachine {
    id: PmId,
    topology: Arc<CpuTopology>,
    policy: Arc<dyn SelectionPolicy + Send + Sync>,
    mem_capacity_mib: u64,
    mem_used_mib: u64,
    vnodes: BTreeMap<OversubLevel, VNode>,
    /// Union of all vNode spans.
    assigned: BTreeSet<CoreId>,
    vm_index: BTreeMap<VmId, OversubLevel>,
    churn: PinChurn,
}

impl std::fmt::Debug for PhysicalMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalMachine")
            .field("id", &self.id)
            .field("cores", &self.topology.num_cores())
            .field("mem_capacity_mib", &self.mem_capacity_mib)
            .field("mem_used_mib", &self.mem_used_mib)
            .field("vnodes", &self.vnodes.len())
            .field("vms", &self.vm_index.len())
            .finish()
    }
}

impl PhysicalMachine {
    /// Creates a machine with an explicit selection policy.
    pub fn new(
        id: PmId,
        topology: Arc<CpuTopology>,
        mem_capacity_mib: u64,
        policy: Arc<dyn SelectionPolicy + Send + Sync>,
    ) -> Self {
        PhysicalMachine {
            id,
            topology,
            policy,
            mem_capacity_mib,
            mem_used_mib: 0,
            vnodes: BTreeMap::new(),
            assigned: BTreeSet::new(),
            vm_index: BTreeMap::new(),
            churn: PinChurn::default(),
        }
    }

    /// Creates a machine with the paper's topology-driven selection
    /// policy (distance matrix precomputed from `topology`).
    pub fn with_topology_policy(
        id: PmId,
        topology: Arc<CpuTopology>,
        mem_capacity_mib: u64,
    ) -> Self {
        let policy = Arc::new(TopologySelection::new(DistanceMatrix::build(&topology)));
        Self::new(id, topology, mem_capacity_mib, policy)
    }

    /// Creates a machine whose memory is oversubscribed per `policy`
    /// (the §VIII "memory knob" perspective): the machine exposes
    /// `physical_mem_mib × policy.mem_ratio` MiB to its allocations.
    pub fn with_mem_oversub(
        id: PmId,
        topology: Arc<CpuTopology>,
        physical_mem_mib: u64,
        policy: slackvm_model::OversubPolicy,
    ) -> Self {
        let effective = policy.effective_mem_mib(physical_mem_mib);
        Self::with_topology_policy(id, topology, effective)
    }

    /// The machine's topology.
    pub fn topology(&self) -> &CpuTopology {
        &self.topology
    }

    /// The selection policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The vNode hosting `level`, if any.
    pub fn vnode(&self, level: OversubLevel) -> Option<&VNode> {
        self.vnodes.get(&level)
    }

    /// All vNodes, ascending by level.
    pub fn vnodes(&self) -> impl Iterator<Item = &VNode> {
        self.vnodes.values()
    }

    /// Cores not assigned to any vNode, ascending.
    pub fn free_cores(&self) -> Vec<CoreId> {
        self.topology
            .core_ids()
            .filter(|c| !self.assigned.contains(c))
            .collect()
    }

    /// Number of unassigned cores.
    pub fn free_core_count(&self) -> u32 {
        self.topology.num_cores() - self.assigned.len() as u32
    }

    /// Free memory in MiB.
    pub fn free_mem_mib(&self) -> u64 {
        self.mem_capacity_mib - self.mem_used_mib
    }

    /// Accumulated pin-churn counters.
    pub fn churn(&self) -> &PinChurn {
        &self.churn
    }

    /// The level a hosted VM belongs to.
    pub fn level_of(&self, id: VmId) -> Option<OversubLevel> {
        self.vm_index.get(&id).copied()
    }

    /// The guest-visible topology of a level's vNode (paper §V-A's
    /// "exposing a virtual topology").
    pub fn virtual_topology(&self, level: OversubLevel) -> Option<crate::VirtualTopology> {
        self.vnodes
            .get(&level)
            .map(|v| crate::VirtualTopology::of(&self.topology, &v.core_vec()))
    }

    /// A planning snapshot of the machine (config + hosted VMs), the
    /// input of the compaction analyzer.
    pub fn snapshot(&self) -> crate::MachineSnapshot {
        let mut vms = Vec::with_capacity(self.vm_index.len());
        for vnode in self.vnodes.values() {
            vms.extend(vnode.vms().map(|(id, spec)| (*id, *spec)));
        }
        vms.sort_by_key(|(id, _)| *id);
        crate::MachineSnapshot {
            pm: self.id,
            config: self.config(),
            vms,
        }
    }

    /// Cores the deployment of `spec` would add to its vNode (zero when
    /// headroom inside the existing span suffices).
    fn growth_required(&self, spec: &VmSpec) -> u32 {
        match self.vnodes.get(&spec.level) {
            Some(vnode) => vnode.growth_for(spec.vcpus()),
            None => spec.level.cores_needed(spec.vcpus()),
        }
    }

    /// Grows (or seeds) the vNode for `level` by `growth` cores, chosen
    /// one at a time by the selection policy.
    fn grow_vnode(&mut self, level: OversubLevel, growth: u32) -> Result<(), HypervisorError> {
        let mut free = self.free_cores();
        if (free.len() as u32) < growth {
            return Err(HypervisorError::InsufficientCpu {
                level,
                needed: growth,
                free: free.len() as u32,
            });
        }
        let fresh = !self.vnodes.contains_key(&level);
        let occupied: Vec<CoreId> = self.assigned.iter().copied().collect();
        let vnode = self
            .vnodes
            .entry(level)
            .or_insert_with(|| VNode::new(level));
        if fresh {
            self.churn.vnodes_created += 1;
        }
        for step in 0..growth {
            let members = vnode.core_vec();
            let chosen = if members.is_empty() {
                self.policy.pick_seed(&occupied, &free)
            } else {
                self.policy.pick_expansion(&members, &free)
            }
            .unwrap_or_else(|| unreachable!("free list sized above; step {step}"));
            vnode.add_core(chosen);
            self.assigned.insert(chosen);
            free.retain(|&c| c != chosen);
        }
        if growth > 0 {
            let vms = vnode.num_vms();
            self.churn.record_expansion(growth, vms);
        }
        Ok(())
    }

    /// Shrinks the vNode of `level` to its tight size, releasing surplus
    /// cores chosen by the policy; dissolves the vNode when empty.
    fn shrink_vnode(&mut self, level: OversubLevel) {
        let Some(vnode) = self.vnodes.get_mut(&level) else {
            return;
        };
        let surplus = vnode.surplus_cores();
        if surplus > 0 {
            for _ in 0..surplus {
                let members = vnode.core_vec();
                if let Some(victim) = self.policy.pick_release(&members) {
                    vnode.release_core(victim);
                    self.assigned.remove(&victim);
                }
            }
            let vms = vnode.num_vms();
            self.churn.record_shrink(surplus, vms);
        }
        if vnode.is_empty() {
            debug_assert_eq!(vnode.num_cores(), 0, "empty vNode kept cores");
            self.vnodes.remove(&level);
            self.churn.vnodes_dissolved += 1;
        }
    }

    /// Vertically resizes a hosted VM in place (same oversubscription
    /// level). The operation is atomic: feasibility is checked before
    /// any mutation, so failure leaves the machine untouched. The vNode
    /// grows or shrinks exactly as if the VM had been redeployed, but
    /// without releasing its slot in between — no other tenant can steal
    /// the capacity mid-resize. Zero dimensions are clamped to 1 (a VM
    /// cannot resize itself away; use [`Host::remove`] for that).
    pub fn resize_vm(
        &mut self,
        id: VmId,
        new_vcpus: u32,
        new_mem_mib: u64,
    ) -> Result<(), HypervisorError> {
        let level = self
            .vm_index
            .get(&id)
            .copied()
            .ok_or(HypervisorError::UnknownVm(id))?;
        let new_spec = VmSpec::of(new_vcpus.max(1), new_mem_mib.max(1), level);
        let vnode = self.vnodes.get(&level).expect("indexed vNode exists");
        let old_spec = *vnode
            .vms()
            .find(|(vm, _)| **vm == id)
            .map(|(_, spec)| spec)
            .expect("indexed VM exists in vNode");

        // Feasibility first: memory...
        let mem_grow = new_spec.mem_mib().saturating_sub(old_spec.mem_mib());
        if mem_grow > self.free_mem_mib() {
            return Err(HypervisorError::InsufficientMemory {
                requested_mib: mem_grow,
                free_mib: self.free_mem_mib(),
            });
        }
        // ...then cores for the post-resize vNode population.
        let post_vcpus = vnode.total_vcpus() - old_spec.vcpus() + new_spec.vcpus();
        let needed = level.cores_needed(post_vcpus);
        let growth = needed.saturating_sub(vnode.num_cores());
        if growth > self.free_core_count() {
            return Err(HypervisorError::InsufficientCpu {
                level,
                needed: growth,
                free: self.free_core_count(),
            });
        }

        // Commit: grow the span, swap the spec, shrink if oversized.
        self.grow_vnode(level, growth)
            .expect("feasibility checked above");
        let vnode = self.vnodes.get_mut(&level).expect("still present");
        vnode.remove_vm(id).expect("checked above");
        vnode.insert_vm(id, new_spec);
        self.mem_used_mib = self.mem_used_mib - old_spec.mem_mib() + new_spec.mem_mib();
        self.shrink_vnode(level);
        Ok(())
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        for vnode in self.vnodes.values() {
            // Spans are disjoint.
            for core in vnode.cores() {
                if !seen.insert(*core) {
                    return Err(format!("core {core} in two vNodes"));
                }
                if !self.assigned.contains(core) {
                    return Err(format!("core {core} missing from assigned set"));
                }
            }
            // Each span satisfies its level.
            let needed = vnode.level().cores_needed(vnode.total_vcpus());
            if needed > vnode.num_cores() {
                return Err(format!(
                    "vNode {} has {} cores but needs {}",
                    vnode.level(),
                    vnode.num_cores(),
                    needed
                ));
            }
            // Spans are tight (machine shrinks eagerly).
            if vnode.num_cores() > needed {
                return Err(format!(
                    "vNode {} holds {} surplus core(s)",
                    vnode.level(),
                    vnode.num_cores() - needed
                ));
            }
        }
        if seen.len() != self.assigned.len() {
            return Err("assigned set contains cores of no vNode".into());
        }
        let mem: u64 = self.vnodes.values().map(|v| v.total_mem_mib()).sum();
        if mem != self.mem_used_mib {
            return Err(format!(
                "memory accounting drift: vNodes sum {mem}, counter {}",
                self.mem_used_mib
            ));
        }
        Ok(())
    }
}

impl Host for PhysicalMachine {
    fn id(&self) -> PmId {
        self.id
    }

    fn config(&self) -> PmConfig {
        PmConfig::of(self.topology.num_cores(), self.mem_capacity_mib)
    }

    fn alloc(&self) -> AllocView {
        AllocView::new(
            Millicores::from_cores(self.assigned.len() as u32),
            self.mem_used_mib,
        )
    }

    fn can_host(&self, spec: &VmSpec) -> bool {
        spec.mem_mib() <= self.free_mem_mib()
            && self.growth_required(spec) <= self.free_core_count()
    }

    fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<(), HypervisorError> {
        if self.vm_index.contains_key(&id) {
            return Err(HypervisorError::DuplicateVm(id));
        }
        if spec.mem_mib() > self.free_mem_mib() {
            return Err(HypervisorError::InsufficientMemory {
                requested_mib: spec.mem_mib(),
                free_mib: self.free_mem_mib(),
            });
        }
        let growth = self.growth_required(&spec);
        self.grow_vnode(spec.level, growth)?;
        let vnode = self
            .vnodes
            .get_mut(&spec.level)
            .expect("grow_vnode created the vNode");
        vnode.insert_vm(id, spec);
        self.mem_used_mib += spec.mem_mib();
        self.vm_index.insert(id, spec.level);
        Ok(())
    }

    fn remove(&mut self, id: VmId) -> Result<VmSpec, HypervisorError> {
        let level = self
            .vm_index
            .remove(&id)
            .ok_or(HypervisorError::UnknownVm(id))?;
        let vnode = self.vnodes.get_mut(&level).expect("indexed vNode exists");
        let spec = vnode.remove_vm(id).expect("indexed VM exists in vNode");
        self.mem_used_mib -= spec.mem_mib();
        self.shrink_vnode(level);
        Ok(spec)
    }

    fn resize_vm(
        &mut self,
        id: VmId,
        new_vcpus: u32,
        new_mem_mib: u64,
    ) -> Result<(), HypervisorError> {
        PhysicalMachine::resize_vm(self, id, new_vcpus, new_mem_mib)
    }

    fn num_vms(&self) -> usize {
        self.vm_index.len()
    }

    fn vm_ids(&self) -> Vec<VmId> {
        self.vm_index.keys().copied().collect()
    }

    fn placements(&self) -> Vec<(VmId, VmSpec)> {
        self.snapshot().vms
    }

    // `admission_headroom` uses the trait default: the memory bound is
    // exact (config mem − allocated mem = free mem), and no cheap vCPU
    // bound exists — existing vNode slack can make a VM's marginal core
    // cost zero, so only `can_host` can rule on CPU.
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;
    use slackvm_topology::builders;

    fn epyc_machine() -> PhysicalMachine {
        PhysicalMachine::with_topology_policy(
            PmId(0),
            Arc::new(builders::dual_epyc_7662()),
            gib(1024),
        )
    }

    fn sim_machine() -> PhysicalMachine {
        PhysicalMachine::with_topology_policy(PmId(1), Arc::new(builders::flat(32)), gib(128))
    }

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    #[test]
    fn deploy_seeds_grows_and_accounts() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(2, 4, 1)).unwrap();
        assert_eq!(m.vnode(OversubLevel::of(1)).unwrap().num_cores(), 2);
        assert_eq!(m.alloc().cpu, Millicores::from_cores(2));
        assert_eq!(m.alloc().mem_mib, gib(4));
        // Three 1-vCPU VMs at 3:1 fit in one core.
        m.deploy(VmId(1), spec(1, 1, 3)).unwrap();
        m.deploy(VmId(2), spec(1, 1, 3)).unwrap();
        m.deploy(VmId(3), spec(1, 1, 3)).unwrap();
        assert_eq!(m.vnode(OversubLevel::of(3)).unwrap().num_cores(), 1);
        assert_eq!(m.alloc().cpu, Millicores::from_cores(3));
        m.check_invariants().unwrap();
    }

    #[test]
    fn remove_shrinks_and_dissolves() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(3, 3, 3)).unwrap();
        m.deploy(VmId(1), spec(3, 3, 3)).unwrap(); // second core
        assert_eq!(m.vnode(OversubLevel::of(3)).unwrap().num_cores(), 2);
        m.remove(VmId(0)).unwrap();
        assert_eq!(m.vnode(OversubLevel::of(3)).unwrap().num_cores(), 1);
        m.remove(VmId(1)).unwrap();
        assert!(m.vnode(OversubLevel::of(3)).is_none());
        assert!(m.is_idle());
        assert_eq!(m.alloc(), AllocView::EMPTY);
        assert_eq!(m.churn().vnodes_dissolved, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn memory_is_a_hard_wall() {
        let mut m = sim_machine(); // 128 GiB
        m.deploy(VmId(0), spec(1, 100, 1)).unwrap();
        let err = m.deploy(VmId(1), spec(1, 29, 1)).unwrap_err();
        assert!(matches!(err, HypervisorError::InsufficientMemory { .. }));
        assert!(!m.can_host(&spec(1, 29, 1)));
        assert!(m.can_host(&spec(1, 28, 1)));
    }

    #[test]
    fn cpu_is_a_hard_wall() {
        let mut m = sim_machine(); // 32 cores
        m.deploy(VmId(0), spec(30, 30, 1)).unwrap();
        assert!(m.can_host(&spec(2, 1, 1)));
        assert!(!m.can_host(&spec(3, 1, 1)));
        let err = m.deploy(VmId(1), spec(3, 1, 1)).unwrap_err();
        assert!(matches!(err, HypervisorError::InsufficientCpu { .. }));
        // But an oversubscribed VM still fits: 6 vCPUs at 3:1 = 2 cores.
        m.deploy(VmId(2), spec(6, 1, 3)).unwrap();
        m.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_and_unknown_vm_errors() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(1, 1, 1)).unwrap();
        assert_eq!(
            m.deploy(VmId(0), spec(1, 1, 1)).unwrap_err(),
            HypervisorError::DuplicateVm(VmId(0))
        );
        assert_eq!(
            m.remove(VmId(9)).unwrap_err(),
            HypervisorError::UnknownVm(VmId(9))
        );
    }

    #[test]
    fn failed_memory_deploy_leaves_state_untouched() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(1, 120, 1)).unwrap();
        let before = m.alloc();
        let _ = m.deploy(VmId(1), spec(1, 100, 2)).unwrap_err();
        assert_eq!(m.alloc(), before);
        assert!(m.vnode(OversubLevel::of(2)).is_none());
        m.check_invariants().unwrap();
    }

    #[test]
    fn three_levels_are_isolated_on_epyc_sockets() {
        let mut m = epyc_machine();
        m.deploy(VmId(0), spec(4, 4, 1)).unwrap();
        m.deploy(VmId(1), spec(4, 4, 2)).unwrap();
        m.deploy(VmId(2), spec(4, 4, 3)).unwrap();
        let v1 = m.vnode(OversubLevel::of(1)).unwrap().core_vec();
        let v2 = m.vnode(OversubLevel::of(2)).unwrap().core_vec();
        let topo = builders::dual_epyc_7662();
        // Second vNode seeded on the other socket.
        let socket = |c: CoreId| topo.core(c).socket;
        assert_eq!(socket(v1[0]), 0);
        assert_eq!(socket(v2[0]), 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn vnode_growth_prefers_adjacent_cores() {
        let mut m = epyc_machine();
        m.deploy(VmId(0), spec(1, 1, 1)).unwrap();
        m.deploy(VmId(1), spec(1, 1, 1)).unwrap();
        let v1 = m.vnode(OversubLevel::of(1)).unwrap().core_vec();
        // Growth picked the SMT sibling (distance 0).
        assert_eq!(v1, vec![CoreId(0), CoreId(1)]);
    }

    #[test]
    fn churn_counters_track_operations() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(1, 1, 2)).unwrap(); // create + expand 1
        m.deploy(VmId(1), spec(1, 1, 2)).unwrap(); // headroom: no expand
        m.deploy(VmId(2), spec(1, 1, 2)).unwrap(); // expand 1
        assert_eq!(m.churn().vnodes_created, 1);
        assert_eq!(m.churn().expansions, 2);
        assert_eq!(m.churn().cores_added, 2);
        m.remove(VmId(2)).unwrap(); // shrink 1
        assert_eq!(m.churn().shrinks, 1);
    }

    #[test]
    fn virtual_topology_and_snapshot_roundtrip() {
        let mut m = epyc_machine();
        m.deploy(VmId(0), spec(4, 4, 1)).unwrap();
        m.deploy(VmId(1), spec(3, 3, 3)).unwrap();
        let vt = m.virtual_topology(OversubLevel::of(1)).unwrap();
        assert_eq!(vt.threads, 4);
        assert_eq!(vt.smt_pairs, 2, "growth picked sibling pairs");
        assert!(vt.single_socket());
        assert!(m.virtual_topology(OversubLevel::of(2)).is_none());

        let snap = m.snapshot();
        assert_eq!(snap.pm, m.id());
        assert_eq!(snap.vms.len(), 2);
        assert_eq!(snap.alloc(), m.alloc());
    }

    #[test]
    fn mem_oversubscription_expands_effective_capacity() {
        let policy = slackvm_model::OversubPolicy::new(OversubLevel::of(1), 1.5).unwrap();
        let m = PhysicalMachine::with_mem_oversub(
            PmId(7),
            Arc::new(builders::flat(32)),
            gib(128),
            policy,
        );
        assert_eq!(m.config().mem_mib, gib(192));
        assert!(m.can_host(&spec(1, 150, 1)));
    }

    #[test]
    fn resize_grows_and_shrinks_in_place() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(3, 4, 3)).unwrap(); // 1 core at 3:1
        assert_eq!(m.vnode(OversubLevel::of(3)).unwrap().num_cores(), 1);
        // Grow to 7 vCPUs: span becomes 3 cores.
        m.resize_vm(VmId(0), 7, gib(6)).unwrap();
        let v = m.vnode(OversubLevel::of(3)).unwrap();
        assert_eq!(v.total_vcpus(), 7);
        assert_eq!(v.num_cores(), 3);
        assert_eq!(m.alloc().mem_mib, gib(6));
        // Shrink back to 2 vCPUs: span tightens to 1 core.
        m.resize_vm(VmId(0), 2, gib(1)).unwrap();
        assert_eq!(m.vnode(OversubLevel::of(3)).unwrap().num_cores(), 1);
        assert_eq!(m.alloc().mem_mib, gib(1));
        m.check_invariants().unwrap();
    }

    #[test]
    fn infeasible_resize_leaves_state_untouched() {
        let mut m = sim_machine(); // 32 cores / 128 GiB
        m.deploy(VmId(0), spec(30, 30, 1)).unwrap();
        m.deploy(VmId(1), spec(2, 2, 1)).unwrap();
        let before = m.alloc();
        // CPU-infeasible: growing VM 1 to 4 vCPUs needs 2 more cores.
        assert!(matches!(
            m.resize_vm(VmId(1), 4, gib(2)).unwrap_err(),
            HypervisorError::InsufficientCpu { .. }
        ));
        // Memory-infeasible.
        assert!(matches!(
            m.resize_vm(VmId(1), 2, gib(120)).unwrap_err(),
            HypervisorError::InsufficientMemory { .. }
        ));
        assert_eq!(m.alloc(), before);
        m.check_invariants().unwrap();
        // Unknown VM.
        assert!(matches!(
            m.resize_vm(VmId(9), 1, gib(1)).unwrap_err(),
            HypervisorError::UnknownVm(_)
        ));
    }

    #[test]
    fn resize_within_headroom_moves_no_cores() {
        let mut m = sim_machine();
        m.deploy(VmId(0), spec(1, 1, 3)).unwrap(); // 1 core, headroom 2
        let churn_before = m.churn().expansions;
        m.resize_vm(VmId(0), 3, gib(1)).unwrap();
        assert_eq!(m.churn().expansions, churn_before, "no span change");
        assert_eq!(m.vnode(OversubLevel::of(3)).unwrap().num_cores(), 1);
    }

    #[test]
    fn mixed_level_fill_matches_whole_core_accounting() {
        let mut m = sim_machine();
        // 10 cores premium + 5 cores of 2:1 (10 vCPUs) + 2 cores of 3:1 (6 vCPUs).
        m.deploy(VmId(0), spec(10, 10, 1)).unwrap();
        m.deploy(VmId(1), spec(10, 10, 2)).unwrap();
        m.deploy(VmId(2), spec(6, 6, 3)).unwrap();
        assert_eq!(m.alloc().cpu, Millicores::from_cores(17));
        assert_eq!(m.free_core_count(), 15);
        m.check_invariants().unwrap();
    }
}
