//! The vNode: an exclusive group of cores hosting one oversubscription
//! level's VMs.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use slackvm_model::{OversubLevel, VmId, VmSpec};
use slackvm_topology::CoreId;

/// A dynamic resource partition: whole cores + the VM set pinned to them.
///
/// Invariant: `level.cores_needed(total_vcpus()) <= cores.len()` — the
/// span always satisfies the level's `n:1` guarantee. The owning machine
/// keeps spans *tight* (equality) by shrinking on departures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VNode {
    level: OversubLevel,
    cores: BTreeSet<CoreId>,
    vms: BTreeMap<VmId, VmSpec>,
    total_vcpus: u32,
    total_mem_mib: u64,
}

impl VNode {
    /// Creates an empty vNode for `level`.
    pub fn new(level: OversubLevel) -> Self {
        VNode {
            level,
            cores: BTreeSet::new(),
            vms: BTreeMap::new(),
            total_vcpus: 0,
            total_mem_mib: 0,
        }
    }

    /// The vNode's oversubscription level.
    #[inline]
    pub fn level(&self) -> OversubLevel {
        self.level
    }

    /// The pinned core span, ascending.
    pub fn cores(&self) -> &BTreeSet<CoreId> {
        &self.cores
    }

    /// The span as a vector (for distance queries).
    pub fn core_vec(&self) -> Vec<CoreId> {
        self.cores.iter().copied().collect()
    }

    /// Number of cores in the span.
    #[inline]
    pub fn num_cores(&self) -> u32 {
        self.cores.len() as u32
    }

    /// Hosted VM count.
    #[inline]
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// True when no VM is hosted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Sum of hosted vCPUs.
    #[inline]
    pub fn total_vcpus(&self) -> u32 {
        self.total_vcpus
    }

    /// Sum of hosted memory (MiB).
    #[inline]
    pub fn total_mem_mib(&self) -> u64 {
        self.total_mem_mib
    }

    /// The hosted VMs.
    pub fn vms(&self) -> impl Iterator<Item = (&VmId, &VmSpec)> {
        self.vms.iter()
    }

    /// Whether `id` is hosted here.
    pub fn hosts(&self, id: VmId) -> bool {
        self.vms.contains_key(&id)
    }

    /// Cores the span must hold to host the current VMs **plus** `extra`
    /// vCPUs.
    pub fn cores_needed_with(&self, extra_vcpus: u32) -> u32 {
        self.level.cores_needed(self.total_vcpus + extra_vcpus)
    }

    /// How many cores the span must *grow by* to admit `extra_vcpus`
    /// (zero when headroom inside the current span suffices).
    pub fn growth_for(&self, extra_vcpus: u32) -> u32 {
        self.cores_needed_with(extra_vcpus)
            .saturating_sub(self.num_cores())
    }

    /// Unexposed vCPU headroom inside the current span.
    pub fn vcpu_headroom(&self) -> u32 {
        self.level
            .vcpu_capacity(self.num_cores())
            .saturating_sub(self.total_vcpus)
    }

    /// Registers a VM. The caller must have grown the span first; this
    /// asserts the level invariant in debug builds.
    pub(crate) fn insert_vm(&mut self, id: VmId, spec: VmSpec) {
        debug_assert!(!self.vms.contains_key(&id));
        debug_assert_eq!(spec.level, self.level);
        self.total_vcpus += spec.vcpus();
        self.total_mem_mib += spec.mem_mib();
        self.vms.insert(id, spec);
        debug_assert!(
            self.level.cores_needed(self.total_vcpus) <= self.num_cores(),
            "span violates {} guarantee",
            self.level
        );
    }

    /// Unregisters a VM, returning its spec.
    pub(crate) fn remove_vm(&mut self, id: VmId) -> Option<VmSpec> {
        let spec = self.vms.remove(&id)?;
        self.total_vcpus -= spec.vcpus();
        self.total_mem_mib -= spec.mem_mib();
        Some(spec)
    }

    /// Adds a core to the span.
    pub(crate) fn add_core(&mut self, core: CoreId) {
        let inserted = self.cores.insert(core);
        debug_assert!(inserted, "core {core} already in span");
    }

    /// Removes a core from the span.
    pub(crate) fn release_core(&mut self, core: CoreId) {
        let removed = self.cores.remove(&core);
        debug_assert!(removed, "core {core} not in span");
    }

    /// Cores beyond what the current VM set requires — candidates for
    /// release after a departure.
    pub fn surplus_cores(&self) -> u32 {
        self.num_cores()
            .saturating_sub(self.level.cores_needed(self.total_vcpus))
    }

    /// Effective vCPUs-per-core pressure of the span (how oversubscribed
    /// the span *actually* is; at most `level.ratio()`).
    pub fn effective_pressure(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.total_vcpus as f64 / self.cores.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    #[test]
    fn growth_accounting_at_3_to_1() {
        let mut v = VNode::new(OversubLevel::of(3));
        assert_eq!(v.growth_for(1), 1); // first VM always needs a core
        v.add_core(CoreId(0));
        v.insert_vm(VmId(1), spec(1, 1, 3));
        // Two more vCPUs fit in the same core at 3:1.
        assert_eq!(v.growth_for(2), 0);
        assert_eq!(v.vcpu_headroom(), 2);
        // A third extra vCPU spills into a second core.
        assert_eq!(v.growth_for(3), 1);
    }

    #[test]
    fn remove_restores_totals() {
        let mut v = VNode::new(OversubLevel::of(2));
        v.add_core(CoreId(4));
        v.insert_vm(VmId(9), spec(2, 4, 2));
        assert_eq!(v.total_vcpus(), 2);
        assert_eq!(v.total_mem_mib(), gib(4));
        let out = v.remove_vm(VmId(9)).unwrap();
        assert_eq!(out, spec(2, 4, 2));
        assert_eq!(v.total_vcpus(), 0);
        assert_eq!(v.total_mem_mib(), 0);
        assert!(v.is_empty());
        assert_eq!(v.surplus_cores(), 1);
        assert!(v.remove_vm(VmId(9)).is_none());
    }

    #[test]
    fn effective_pressure_tracks_span() {
        let mut v = VNode::new(OversubLevel::of(3));
        assert_eq!(v.effective_pressure(), 0.0);
        v.add_core(CoreId(0));
        v.add_core(CoreId(1));
        v.insert_vm(VmId(1), spec(4, 4, 3));
        assert!((v.effective_pressure() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hosts_and_counts() {
        let mut v = VNode::new(OversubLevel::of(1));
        v.add_core(CoreId(0));
        v.add_core(CoreId(1));
        v.insert_vm(VmId(0), spec(2, 2, 1));
        assert!(v.hosts(VmId(0)));
        assert!(!v.hosts(VmId(1)));
        assert_eq!(v.num_vms(), 1);
        assert_eq!(v.num_cores(), 2);
        assert_eq!(v.core_vec(), vec![CoreId(0), CoreId(1)]);
    }
}
