//! Offline compaction analysis — the paper's stated future work
//! ("Considering live migration to further balance the packing of our
//! vNodes is let as a future work", §VII-B).
//!
//! This module does **not** migrate anything. It answers the question
//! the paper leaves open: *how many PMs could live migration reclaim
//! from the current placement?* It plans a First-Fit-Decreasing re-pack
//! of the lightest machines' VMs into the heaviest machines' headroom
//! and reports the machines that would empty, together with the move
//! list an orchestrator would need.

use serde::{Deserialize, Serialize};

use slackvm_model::{AllocView, Millicores, OversubLevel, PmConfig, PmId, VmId, VmSpec};

/// A snapshot of one machine for planning: config + hosted VMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// The machine's id.
    pub pm: PmId,
    /// Its hardware configuration.
    pub config: PmConfig,
    /// Hosted VMs.
    pub vms: Vec<(VmId, VmSpec)>,
}

impl MachineSnapshot {
    /// Physical allocation of the snapshot (whole-core vNode sizing per
    /// level, matching the live machine's accounting).
    pub fn alloc(&self) -> AllocView {
        let mut mem = 0u64;
        let mut per_level: std::collections::BTreeMap<OversubLevel, u32> = Default::default();
        for (_, spec) in &self.vms {
            mem += spec.mem_mib();
            *per_level.entry(spec.level).or_default() += spec.vcpus();
        }
        let cores: u32 = per_level
            .iter()
            .map(|(level, vcpus)| level.cores_needed(*vcpus))
            .sum();
        AllocView::new(Millicores::from_cores(cores), mem)
    }

    /// Whether adding `spec` keeps the snapshot within its machine's
    /// capacity (vNode whole-core sizing included).
    pub fn fits(&self, spec: &VmSpec) -> bool {
        let mut probe = self.clone();
        probe.vms.push((VmId(u64::MAX), *spec));
        let a = probe.alloc();
        a.cpu <= self.config.cpu_capacity() && a.mem_mib <= self.config.mem_mib
    }
}

/// One planned migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// Which VM moves.
    pub vm: VmId,
    /// Source machine.
    pub from: PmId,
    /// Destination machine.
    pub to: PmId,
}

/// The result of a compaction analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CompactionPlan {
    /// Migrations, in execution order.
    pub moves: Vec<Move>,
    /// Machines that would end up empty (releasable).
    pub releasable: Vec<PmId>,
}

impl CompactionPlan {
    /// Number of PMs the plan reclaims.
    pub fn reclaimed_pms(&self) -> u32 {
        self.releasable.len() as u32
    }
}

/// Plans a compaction over machine snapshots.
///
/// Strategy: sort machines by load ascending; for each machine from the
/// lightest up, try to re-home *all* of its VMs (largest first) into the
/// remaining machines' headroom (fullest destination first). A machine
/// is only drained if every VM fits elsewhere — partial drains don't
/// release hardware, so they are not attempted.
pub fn plan_compaction(snapshots: &[MachineSnapshot]) -> CompactionPlan {
    let mut pool: Vec<MachineSnapshot> = snapshots.to_vec();
    // Lightest machines are drain candidates, visited first.
    pool.sort_by_key(|m| (m.alloc().cpu, m.alloc().mem_mib, m.pm));
    let order: Vec<PmId> = pool.iter().map(|m| m.pm).collect();

    let mut plan = CompactionPlan::default();
    for &candidate in &order {
        let idx = pool
            .iter()
            .position(|m| m.pm == candidate)
            .expect("in pool");
        if pool[idx].vms.is_empty() {
            plan.releasable.push(candidate);
            pool.remove(idx);
            continue;
        }
        // Tentatively re-home every VM, largest physical footprint first.
        let mut to_move = pool[idx].vms.clone();
        to_move.sort_by_key(|(id, spec)| {
            (
                std::cmp::Reverse(spec.physical_cpu()),
                std::cmp::Reverse(spec.mem_mib()),
                *id,
            )
        });
        let mut trial: Vec<MachineSnapshot> =
            pool.iter().filter(|m| m.pm != candidate).cloned().collect();
        // Fullest destinations first (First-Fit-Decreasing flavor).
        trial.sort_by_key(|m| {
            let a = m.alloc();
            (std::cmp::Reverse(a.cpu), std::cmp::Reverse(a.mem_mib), m.pm)
        });
        let mut moves = Vec::new();
        let mut ok = true;
        for (id, spec) in &to_move {
            match trial.iter_mut().find(|m| m.fits(spec)) {
                Some(dest) => {
                    dest.vms.push((*id, *spec));
                    moves.push(Move {
                        vm: *id,
                        from: candidate,
                        to: dest.pm,
                    });
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            plan.moves.extend(moves);
            plan.releasable.push(candidate);
            // Commit: replace the pool with the trial state.
            pool = trial;
        }
    }
    plan.releasable.sort();
    plan
}

/// [`plan_compaction`] with telemetry: a span over the planning pass
/// plus a [`CompactionPlanned`](slackvm_telemetry::Event::CompactionPlanned)
/// event and one `CompactionMove` event per planned migration, stamped
/// with `time_secs` (the caller's simulation clock).
pub fn plan_compaction_recorded<R: slackvm_telemetry::Recorder>(
    snapshots: &[MachineSnapshot],
    time_secs: u64,
    recorder: &mut R,
) -> CompactionPlan {
    let span = recorder.begin("hypervisor.compaction.plan");
    let plan = plan_compaction(snapshots);
    recorder.end(span);
    if recorder.enabled() {
        recorder.record(
            time_secs,
            slackvm_telemetry::Event::CompactionPlanned {
                moves: plan.moves.len() as u32,
                releasable: plan.releasable.len() as u32,
            },
        );
        for mv in &plan.moves {
            recorder.record(
                time_secs,
                slackvm_telemetry::Event::CompactionMove {
                    vm: mv.vm,
                    from: mv.from,
                    to: mv.to,
                },
            );
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;

    fn snap(pm: u32, vms: Vec<(u64, u32, u64, u32)>) -> MachineSnapshot {
        MachineSnapshot {
            pm: PmId(pm),
            config: PmConfig::simulation_host(),
            vms: vms
                .into_iter()
                .map(|(id, vcpus, mem_gib, level)| {
                    (
                        VmId(id),
                        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level)),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn snapshot_alloc_uses_whole_core_vnodes() {
        let s = snap(0, vec![(1, 1, 1, 3), (2, 1, 1, 3)]);
        // Two 1-vCPU VMs at 3:1 share one core.
        assert_eq!(s.alloc().cpu, Millicores::from_cores(1));
        assert_eq!(s.alloc().mem_mib, gib(2));
    }

    #[test]
    fn two_half_empty_machines_compact_into_one() {
        let a = snap(0, vec![(1, 10, 40, 1)]);
        let b = snap(1, vec![(2, 10, 40, 1)]);
        let plan = plan_compaction(&[a, b]);
        assert_eq!(plan.reclaimed_pms(), 1);
        assert_eq!(plan.moves.len(), 1);
        let mv = plan.moves[0];
        assert_eq!(mv.vm, VmId(2).min(VmId(1)));
        // The lighter (tied -> lower id) machine drains into the other.
        assert!(plan.releasable == vec![PmId(0)] || plan.releasable == vec![PmId(1)]);
    }

    #[test]
    fn full_machines_cannot_compact() {
        let a = snap(0, vec![(1, 32, 100, 1)]);
        let b = snap(1, vec![(2, 32, 100, 1)]);
        let plan = plan_compaction(&[a, b]);
        assert_eq!(plan.reclaimed_pms(), 0);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn partial_drains_are_not_attempted() {
        // Machine 0 holds two VMs; only one fits elsewhere. No move.
        let a = snap(0, vec![(1, 20, 20, 1), (2, 20, 20, 1)]);
        let b = snap(1, vec![(3, 10, 10, 1)]); // 22 cores free: fits one 20.
        let plan = plan_compaction(&[a, b]);
        assert_eq!(plan.reclaimed_pms(), 0);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn already_empty_machines_are_releasable_without_moves() {
        let a = snap(0, vec![]);
        let b = snap(1, vec![(1, 4, 4, 1)]);
        let plan = plan_compaction(&[a, b]);
        assert_eq!(plan.releasable, vec![PmId(0)]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn chain_compaction_reclaims_multiple_pms() {
        // Four quarter-loaded machines collapse into one.
        let machines: Vec<_> = (0..4)
            .map(|i| snap(i, vec![(i as u64 + 1, 8, 32, 1)]))
            .collect();
        let plan = plan_compaction(&machines);
        assert_eq!(plan.reclaimed_pms(), 3);
        // The planner optimizes reclaimed PMs, not move count: with all
        // loads tied it may chain VMs through intermediate destinations.
        assert!(plan.moves.len() >= 3);
        // Every move's destination is a surviving machine.
        for mv in &plan.moves {
            assert!(
                !plan.releasable.contains(&mv.to) || {
                    // ... unless that destination was itself drained later;
                    // then a later move must carry the VM onwards.
                    plan.moves
                        .iter()
                        .any(|m2| m2.vm == mv.vm && m2.from == mv.to)
                }
            );
        }
    }

    #[test]
    fn recorded_planning_journals_the_plan() {
        use slackvm_telemetry::Telemetry;
        let a = snap(0, vec![(1, 10, 40, 1)]);
        let b = snap(1, vec![(2, 10, 40, 1)]);
        let mut telemetry = Telemetry::new();
        let plan = plan_compaction_recorded(&[a.clone(), b.clone()], 3600, &mut telemetry);
        assert_eq!(plan, plan_compaction(&[a, b]));
        assert_eq!(telemetry.journal.count_kind("compaction_planned"), 1);
        assert_eq!(
            telemetry.journal.count_kind("compaction_move"),
            plan.moves.len()
        );
        assert_eq!(telemetry.journal.records()[0].time_secs, 3600);
        let names: Vec<&str> = telemetry.trace.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["hypervisor.compaction.plan"]);
    }

    #[test]
    fn mixed_levels_compact_respecting_vnode_sizing() {
        // 3:1 VMs of 1 vCPU each: three share one core.
        let a = snap(0, vec![(1, 1, 1, 3)]);
        let b = snap(1, vec![(2, 1, 1, 3)]);
        let c = snap(2, vec![(3, 1, 1, 3)]);
        let plan = plan_compaction(&[a, b, c]);
        assert_eq!(plan.reclaimed_pms(), 2);
    }
}
