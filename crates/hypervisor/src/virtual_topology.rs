//! Virtual-topology exposure (paper §V-A: "SlackVM allocates vNodes to
//! report on a configuration that resembles a CPU model with fewer
//! cores").
//!
//! A vNode's guest-visible topology summarizes how its span maps onto
//! the hardware: how many sockets and L3 complexes it touches, how many
//! full SMT pairs it owns. The hypervisor would expose this to guests
//! (and to ITMT-style asymmetric schedulers); here it also feeds the
//! isolation diagnostics.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use slackvm_topology::{CoreId, CpuTopology};

/// The shape a vNode's span presents to its guests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualTopology {
    /// Schedulable CPUs in the span.
    pub threads: u32,
    /// Distinct physical cores beneath them.
    pub physical_cores: u32,
    /// Physical cores with both SMT siblings in the span (guest sees a
    /// "real" SMT pair).
    pub smt_pairs: u32,
    /// Distinct sockets the span touches.
    pub sockets: u32,
    /// Distinct last-level-cache complexes the span touches.
    pub l3_complexes: u32,
    /// Distinct NUMA nodes the span touches.
    pub numa_nodes: u32,
}

impl VirtualTopology {
    /// Derives the virtual topology of a CPU set on a machine topology.
    pub fn of(topology: &CpuTopology, cores: &[CoreId]) -> Self {
        let set: BTreeSet<CoreId> = cores.iter().copied().collect();
        let mut sockets = BTreeSet::new();
        let mut numa = BTreeSet::new();
        let mut l3 = BTreeSet::new();
        let mut pairs = 0u32;
        let mut counted = BTreeSet::new();
        for &c in &set {
            let core = topology.core(c);
            sockets.insert(core.socket);
            numa.insert(core.numa);
            if let Some(zone) = core.cache_at(topology.height().saturating_sub(1)) {
                l3.insert(zone);
            }
            let siblings = topology.smt_siblings(c);
            if siblings.len() > 1
                && siblings.iter().all(|s| set.contains(s))
                && counted.insert(siblings.iter().copied().min().expect("non-empty"))
            {
                pairs += 1;
            }
        }
        VirtualTopology {
            threads: set.len() as u32,
            physical_cores: topology.physical_core_count(set.iter()),
            smt_pairs: pairs,
            sockets: sockets.len() as u32,
            numa_nodes: numa.len() as u32,
            l3_complexes: l3.len() as u32,
        }
    }

    /// Fraction of the span's threads that come in complete SMT pairs —
    /// 1.0 for a perfectly sibling-dense span, 0.0 for a fully
    /// fragmented one. Higher means the span behaves more like a small
    /// standalone CPU (the §V-A design goal).
    pub fn sibling_density(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            (2 * self.smt_pairs) as f64 / self.threads as f64
        }
    }

    /// True when the span fits entirely inside one socket (best
    /// isolation tier).
    pub fn single_socket(&self) -> bool {
        self.sockets <= 1
    }
}

impl std::fmt::Display for VirtualTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} threads on {} cores ({} SMT pairs), {} socket(s), {} L3 complex(es)",
            self.threads, self.physical_cores, self.smt_pairs, self.sockets, self.l3_complexes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_topology::builders;

    #[test]
    fn whole_epyc_machine() {
        let topo = builders::dual_epyc_7662();
        let all: Vec<CoreId> = topo.core_ids().collect();
        let vt = VirtualTopology::of(&topo, &all);
        assert_eq!(vt.threads, 256);
        assert_eq!(vt.physical_cores, 128);
        assert_eq!(vt.smt_pairs, 128);
        assert_eq!(vt.sockets, 2);
        assert_eq!(vt.numa_nodes, 2);
        assert_eq!(vt.l3_complexes, 32); // 16 CCX per socket
        assert_eq!(vt.sibling_density(), 1.0);
        assert!(!vt.single_socket());
    }

    #[test]
    fn sibling_dense_vs_fragmented_span() {
        let topo = builders::dual_epyc_7662();
        // Two complete pairs: density 1.
        let dense = VirtualTopology::of(&topo, &[CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        assert_eq!(dense.smt_pairs, 2);
        assert_eq!(dense.sibling_density(), 1.0);
        assert!(dense.single_socket());
        // Four lone threads from distinct cores: density 0.
        let frag = VirtualTopology::of(&topo, &[CoreId(0), CoreId(2), CoreId(4), CoreId(6)]);
        assert_eq!(frag.smt_pairs, 0);
        assert_eq!(frag.sibling_density(), 0.0);
        assert_eq!(frag.physical_cores, 4);
    }

    #[test]
    fn non_smt_topology_has_no_pairs() {
        let topo = builders::flat(8);
        let vt = VirtualTopology::of(&topo, &[CoreId(0), CoreId(1)]);
        assert_eq!(vt.smt_pairs, 0);
        assert_eq!(vt.physical_cores, 2);
        assert_eq!(vt.l3_complexes, 1);
    }

    #[test]
    fn empty_span() {
        let topo = builders::flat(4);
        let vt = VirtualTopology::of(&topo, &[]);
        assert_eq!(vt.threads, 0);
        assert_eq!(vt.sibling_density(), 0.0);
        assert!(vt.single_socket());
    }

    #[test]
    fn display_is_compact() {
        let topo = builders::dual_epyc_7662();
        let vt = VirtualTopology::of(&topo, &[CoreId(0), CoreId(1)]);
        assert_eq!(
            vt.to_string(),
            "2 threads on 1 cores (1 SMT pairs), 1 socket(s), 1 L3 complex(es)"
        );
    }
}
