//! # slackvm-hypervisor
//!
//! The SlackVM *local scheduler* (paper §V): a per-PM agent that
//! partitions the machine's schedulable CPUs into **vNodes**, one per
//! oversubscription level hosted on the machine.
//!
//! - A vNode is a set of whole physical CPUs plus the VMs pinned to them;
//!   its size is `ceil(Σ vCPUs / n)` cores for an `n:1` vNode and is
//!   adjusted *dynamically* on each VM arrival and departure.
//! - Growth picks free cores *closest* (paper Algorithm 1 distance) to
//!   the vNode's current span; a brand-new vNode seeds from the core
//!   *farthest* from every other vNode — maximizing cache/socket
//!   isolation between levels.
//! - Oversubscribed vNodes may be *pooled* (§V-B) for execution purposes:
//!   the union of their cores plus any unassigned cores, provided the
//!   strictest pooled level's `n:1` guarantee still holds over the union.
//!
//! Two host implementations share the [`Host`] trait:
//! [`PhysicalMachine`] (partitioned, multi-level — the SlackVM worker)
//! and [`UniformMachine`] (single-level capacity counter — the dedicated
//! -cluster baseline worker).

#![warn(missing_docs)]

pub mod compaction;
pub mod dynamic;
pub mod error;
pub mod host;
pub mod layout;
pub mod machine;
pub mod pooling;
pub mod stats;
pub mod uniform;
pub mod virtual_topology;
pub mod vnode;

pub use compaction::{plan_compaction, plan_compaction_recorded, CompactionPlan, MachineSnapshot};
pub use dynamic::{
    recommend_level, recommend_level_recorded, DynamicLevelConfig, LevelRecommendation,
};
pub use error::HypervisorError;
pub use host::{AdmissionHeadroom, Host};
pub use layout::render_layout;
pub use machine::PhysicalMachine;
pub use stats::PinChurn;
pub use uniform::UniformMachine;
pub use virtual_topology::VirtualTopology;
pub use vnode::VNode;
