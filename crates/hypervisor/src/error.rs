//! Local-scheduler errors.

use slackvm_model::{OversubLevel, VmId};
use thiserror::Error;

/// Errors raised by host deploy/remove operations.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum HypervisorError {
    /// Not enough free cores to grow (or create) the level's vNode.
    #[error("insufficient CPU: vNode {level} needs {needed} more core(s), {free} free")]
    InsufficientCpu {
        /// Level whose vNode could not grow.
        level: OversubLevel,
        /// Cores the growth requires.
        needed: u32,
        /// Unassigned cores available.
        free: u32,
    },

    /// Not enough free memory for the VM.
    #[error("insufficient memory: request {requested_mib} MiB, {free_mib} MiB free")]
    InsufficientMemory {
        /// Requested MiB.
        requested_mib: u64,
        /// Free MiB.
        free_mib: u64,
    },

    /// The VM id is already hosted here.
    #[error("{0} is already deployed on this machine")]
    DuplicateVm(VmId),

    /// The VM id is not hosted here.
    #[error("{0} is not deployed on this machine")]
    UnknownVm(VmId),

    /// A uniform (single-level) host refused a VM of another level.
    #[error("host is dedicated to level {host_level}, VM is {vm_level}")]
    LevelMismatch {
        /// The host's level.
        host_level: OversubLevel,
        /// The VM's level.
        vm_level: OversubLevel,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = HypervisorError::InsufficientCpu {
            level: OversubLevel::of(3),
            needed: 2,
            free: 1,
        };
        assert!(e
            .to_string()
            .contains("vNode 3:1 needs 2 more core(s), 1 free"));
        let e = HypervisorError::LevelMismatch {
            host_level: OversubLevel::of(1),
            vm_level: OversubLevel::of(2),
        };
        assert!(e.to_string().contains("dedicated to level 1:1"));
    }
}
