//! Pinning-churn statistics.
//!
//! Paper §V-A notes that re-pinning only happens on VM deployment or
//! destruction, so its frequency is negligible at CPU time scales — but
//! the *amount* of churn still differentiates selection policies, so the
//! machine records it for the ablation benchmarks.

use serde::{Deserialize, Serialize};

/// Counters of pinning-set changes on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PinChurn {
    /// vNode span growths (each extends the pin mask of every VM in the
    /// vNode to the new range).
    pub expansions: u64,
    /// vNode span shrinks after departures.
    pub shrinks: u64,
    /// Individual cores added across all expansions.
    pub cores_added: u64,
    /// Individual cores released across all shrinks.
    pub cores_released: u64,
    /// VM pin-mask rewrites implied by expansions and shrinks (one per
    /// hosted VM per span change).
    pub vm_repins: u64,
    /// vNodes created.
    pub vnodes_created: u64,
    /// vNodes dissolved (last VM departed).
    pub vnodes_dissolved: u64,
}

impl PinChurn {
    /// Records a span growth touching `cores` cores while `vms` VMs were
    /// pinned to the vNode.
    pub fn record_expansion(&mut self, cores: u32, vms: usize) {
        self.expansions += 1;
        self.cores_added += cores as u64;
        self.vm_repins += vms as u64;
    }

    /// Records a span shrink releasing `cores` cores while `vms` VMs
    /// remain pinned.
    pub fn record_shrink(&mut self, cores: u32, vms: usize) {
        self.shrinks += 1;
        self.cores_released += cores as u64;
        self.vm_repins += vms as u64;
    }

    /// Merges another machine's counters (for cluster-wide reports).
    pub fn merge(&mut self, other: &PinChurn) {
        self.expansions += other.expansions;
        self.shrinks += other.shrinks;
        self.cores_added += other.cores_added;
        self.cores_released += other.cores_released;
        self.vm_repins += other.vm_repins;
        self.vnodes_created += other.vnodes_created;
        self.vnodes_dissolved += other.vnodes_dissolved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates() {
        let mut c = PinChurn::default();
        c.record_expansion(2, 3);
        c.record_expansion(1, 4);
        c.record_shrink(1, 2);
        assert_eq!(c.expansions, 2);
        assert_eq!(c.shrinks, 1);
        assert_eq!(c.cores_added, 3);
        assert_eq!(c.cores_released, 1);
        assert_eq!(c.vm_repins, 9);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = PinChurn {
            expansions: 1,
            shrinks: 2,
            cores_added: 3,
            cores_released: 4,
            vm_repins: 5,
            vnodes_created: 6,
            vnodes_dissolved: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.expansions, 2);
        assert_eq!(a.vnodes_dissolved, 14);
    }
}
