//! ASCII rendering of a machine's core→vNode layout.
//!
//! A quick visual check of what the local scheduler did — which cores
//! each vNode pinned, where the free cores sit, how the spans relate to
//! sockets — for demos, the CLI and debugging.

use std::collections::BTreeMap;

use slackvm_topology::CoreId;

use crate::host::Host;
use crate::machine::PhysicalMachine;

/// Renders the machine's core map plus per-vNode summaries.
///
/// Each core renders as one cell: `.` free, or the index (1-9, then
/// a-z) of the vNode owning it, in level order. A socket boundary
/// renders as `|`.
pub fn render_layout(machine: &PhysicalMachine) -> String {
    let topology = machine.topology();
    let mut owner: BTreeMap<CoreId, usize> = BTreeMap::new();
    let mut legend = Vec::new();
    for (i, vnode) in machine.vnodes().enumerate() {
        for core in vnode.cores() {
            owner.insert(*core, i);
        }
        legend.push(format!(
            "  [{}] {}: {} VM(s), {} vCPUs on {} core(s), {:.1} GiB",
            glyph(i),
            vnode.level(),
            vnode.num_vms(),
            vnode.total_vcpus(),
            vnode.num_cores(),
            vnode.total_mem_mib() as f64 / 1024.0,
        ));
    }

    let mut map = String::new();
    let mut last_socket = None;
    for core in topology.cores() {
        if last_socket.is_some() && last_socket != Some(core.socket) {
            map.push('|');
        }
        last_socket = Some(core.socket);
        match owner.get(&core.id) {
            Some(&i) => map.push(glyph(i)),
            None => map.push('.'),
        }
    }

    let alloc = machine.alloc();
    format!(
        "{} — {} VM(s), {} / {} cores pinned, {:.1} / {:.1} GiB\n[{}]\n{}",
        machine.id(),
        machine.num_vms(),
        alloc.cpu.ceil_cores(),
        topology.num_cores(),
        alloc.mem_mib as f64 / 1024.0,
        machine.config().mem_mib as f64 / 1024.0,
        map,
        legend.join("\n"),
    )
}

/// Stable single-character tag for the i-th vNode.
fn glyph(i: usize) -> char {
    const GLYPHS: &[u8] = b"123456789abcdefghijklmnopqrstuvwxyz";
    GLYPHS[i % GLYPHS.len()] as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel, PmId, VmId, VmSpec};
    use slackvm_topology::builders;
    use std::sync::Arc;

    #[test]
    fn layout_shows_spans_and_free_cores() {
        let mut m =
            PhysicalMachine::with_topology_policy(PmId(0), Arc::new(builders::flat(8)), gib(32));
        m.deploy(VmId(0), VmSpec::of(2, gib(2), OversubLevel::of(1)))
            .unwrap();
        m.deploy(VmId(1), VmSpec::of(3, gib(3), OversubLevel::of(3)))
            .unwrap();
        let layout = render_layout(&m);
        // 2 premium cores, 1 three-to-one core, 5 free.
        assert!(layout.contains("[112....."), "map line missing:\n{layout}");
        assert!(layout.contains("[1] 1:1: 1 VM(s), 2 vCPUs"));
        assert!(layout.contains("[2] 3:1: 1 VM(s), 3 vCPUs"));
        assert!(layout.contains("3 / 8 cores pinned"));
    }

    #[test]
    fn socket_boundary_is_marked() {
        let mut m = PhysicalMachine::with_topology_policy(
            PmId(1),
            Arc::new(builders::xeon(2, 4, 1)),
            gib(32),
        );
        m.deploy(VmId(0), VmSpec::of(1, gib(1), OversubLevel::of(1)))
            .unwrap();
        let layout = render_layout(&m);
        assert!(layout.contains('|'), "no socket separator:\n{layout}");
    }

    #[test]
    fn empty_machine_renders_all_free() {
        let m = PhysicalMachine::with_topology_policy(PmId(2), Arc::new(builders::flat(4)), gib(8));
        let layout = render_layout(&m);
        assert!(layout.contains("[....]"));
        assert!(layout.contains("0 VM(s)"));
    }
}
