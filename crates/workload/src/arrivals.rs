//! Arrival/departure processes.
//!
//! The scale experiments (§VII-B) replay "DC workloads over the course of
//! a week, adhering to arrival and departure rates of VMs" towards a
//! target population. We model a classic M/G/∞-style process: Poisson
//! arrivals with exponential lifetimes whose mean is chosen so the
//! steady-state population (`λ · E[lifetime]`) equals the target.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds per simulated week.
pub const WEEK_SECS: u64 = 7 * 86_400;

/// The shape of the VM-lifetime distribution (mean is always
/// [`ArrivalModel::mean_lifetime_secs`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LifetimeModel {
    /// Memoryless lifetimes (the classic M/G/∞ baseline).
    #[default]
    Exponential,
    /// Heavy-tailed lifetimes: most VMs short-lived, a few very long —
    /// the shape cloud traces actually exhibit. `sigma` is the
    /// log-space standard deviation (≈1.0–1.5 is realistic).
    LogNormal {
        /// Log-space standard deviation.
        sigma: f64,
    },
}

/// A diurnal modulation of the arrival rate: human-driven deployments
/// peak in the day and ebb at night.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RateShape {
    /// Constant Poisson rate.
    #[default]
    Constant,
    /// Sinusoidal rate: `λ(t) = λ·(1 + amplitude·sin(2πt/day))`,
    /// amplitude in `[0, 1)`.
    Diurnal {
        /// Relative swing of the rate.
        amplitude: f64,
    },
}

/// How VMs arrive and how long they stay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Target steady-state VM population.
    pub target_population: u32,
    /// Mean VM lifetime in seconds.
    pub mean_lifetime_secs: u64,
    /// Workload horizon in seconds (events beyond it are not generated).
    pub horizon_secs: u64,
    /// Lifetime distribution shape.
    pub lifetime: LifetimeModel,
    /// Arrival-rate modulation.
    pub rate_shape: RateShape,
}

impl ArrivalModel {
    /// A constant-rate, exponential-lifetime model — the protocol the
    /// paper's experiments replay.
    pub fn constant(target_population: u32, mean_lifetime_secs: u64, horizon_secs: u64) -> Self {
        ArrivalModel {
            target_population,
            mean_lifetime_secs,
            horizon_secs,
            lifetime: LifetimeModel::Exponential,
            rate_shape: RateShape::Constant,
        }
    }

    /// The paper's protocol: a 500-VM target over one week. Lifetimes
    /// average two days, so the population reaches (and holds) its
    /// steady state well within the week.
    pub fn paper_week(target_population: u32) -> Self {
        Self::constant(target_population, 2 * 86_400, WEEK_SECS)
    }

    /// Switches to heavy-tailed (log-normal) lifetimes.
    pub fn with_lognormal_lifetimes(mut self, sigma: f64) -> Self {
        self.lifetime = LifetimeModel::LogNormal {
            sigma: sigma.max(0.0),
        };
        self
    }

    /// Switches to a diurnal arrival rate.
    pub fn with_diurnal_rate(mut self, amplitude: f64) -> Self {
        self.rate_shape = RateShape::Diurnal {
            amplitude: amplitude.clamp(0.0, 0.99),
        };
        self
    }

    /// Mean arrival rate (VMs per second) that sustains the target
    /// population.
    pub fn arrival_rate(&self) -> f64 {
        self.target_population as f64 / self.mean_lifetime_secs as f64
    }

    /// Instantaneous arrival rate at `t`.
    pub fn rate_at(&self, t_secs: u64) -> f64 {
        let base = self.arrival_rate();
        match self.rate_shape {
            RateShape::Constant => base,
            RateShape::Diurnal { amplitude } => {
                let phase = (t_secs % 86_400) as f64 / 86_400.0;
                base * (1.0 + amplitude * (phase * std::f64::consts::TAU).sin())
            }
        }
    }

    /// Draws the next inter-arrival gap starting at `now`, in seconds
    /// (≥ 1). Diurnal rates use exponential thinning against the peak
    /// rate, which is exact for inhomogeneous Poisson processes.
    pub fn sample_interarrival_at<R: Rng + ?Sized>(&self, rng: &mut R, now: u64) -> u64 {
        match self.rate_shape {
            RateShape::Constant => {
                sample_exponential(rng, 1.0 / self.arrival_rate()).max(1.0) as u64
            }
            RateShape::Diurnal { amplitude } => {
                let peak = self.arrival_rate() * (1.0 + amplitude);
                let mut t = now;
                loop {
                    let gap = sample_exponential(rng, 1.0 / peak).max(1.0) as u64;
                    t += gap;
                    let accept: f64 = rng.gen();
                    if accept * peak <= self.rate_at(t) {
                        return t - now;
                    }
                    // Rejected candidate: continue thinning from t.
                }
            }
        }
    }

    /// Draws the next inter-arrival gap at an arbitrary (constant-rate)
    /// point; kept for callers that don't track wall time.
    pub fn sample_interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sample_interarrival_at(rng, 0)
    }

    /// Draws one lifetime, in seconds (≥ 60: sub-minute VMs are noise
    /// for week-scale packing).
    pub fn sample_lifetime<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mean = self.mean_lifetime_secs as f64;
        let sample = match self.lifetime {
            LifetimeModel::Exponential => sample_exponential(rng, mean),
            LifetimeModel::LogNormal { sigma } => {
                // mu chosen so the distribution's mean is `mean`.
                let mu = mean.ln() - sigma * sigma / 2.0;
                (mu + sigma * sample_standard_normal(rng)).exp()
            }
        };
        sample.max(60.0) as u64
    }
}

/// Standard normal via Box–Muller.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (u2 * std::f64::consts::TAU).cos()
}

/// Inverse-CDF exponential sampling with the given mean.
fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // Map the open interval (0,1); guard against ln(0).
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_week_shape() {
        let m = ArrivalModel::paper_week(500);
        assert_eq!(m.horizon_secs, WEEK_SECS);
        // λ = N / E[L] = 500 / 172800 ≈ 2.9 mVM/s.
        assert!((m.arrival_rate() - 500.0 / 172_800.0).abs() < 1e-12);
    }

    #[test]
    fn lifetime_mean_converges() {
        let m = ArrivalModel::paper_week(500);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample_lifetime(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let expected = m.mean_lifetime_secs as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn interarrival_mean_converges() {
        let m = ArrivalModel::paper_week(500);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample_interarrival(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let expected = 1.0 / m.arrival_rate();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn samples_respect_floors() {
        let m = ArrivalModel::constant(1_000_000, 1, 100); // absurd rate
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(m.sample_interarrival(&mut rng) >= 1);
            assert!(m.sample_lifetime(&mut rng) >= 60);
        }
    }

    #[test]
    fn lognormal_lifetimes_keep_the_mean_but_fatten_the_tail() {
        let exp = ArrivalModel::paper_week(500);
        let log = exp.with_lognormal_lifetimes(1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 40_000;
        let mut exp_samples: Vec<u64> = (0..n).map(|_| exp.sample_lifetime(&mut rng)).collect();
        let mut log_samples: Vec<u64> = (0..n).map(|_| log.sample_lifetime(&mut rng)).collect();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        let target = exp.mean_lifetime_secs as f64;
        assert!((mean(&exp_samples) - target).abs() / target < 0.05);
        assert!((mean(&log_samples) - target).abs() / target < 0.08);
        // Same mean, heavier tail: the log-normal p99 dominates.
        exp_samples.sort_unstable();
        log_samples.sort_unstable();
        let p99 = |v: &[u64]| v[(v.len() as f64 * 0.99) as usize];
        assert!(p99(&log_samples) > p99(&exp_samples));
        // ... and the median is *smaller* (mass shifted to short VMs).
        assert!(log_samples[n / 2] < exp_samples[n / 2]);
    }

    #[test]
    fn diurnal_rate_peaks_a_quarter_day_in() {
        let m = ArrivalModel::paper_week(500).with_diurnal_rate(0.5);
        let base = m.arrival_rate();
        assert!((m.rate_at(0) - base).abs() < 1e-12);
        assert!((m.rate_at(21_600) - base * 1.5).abs() < 1e-9); // 6 h: sin peak
        assert!((m.rate_at(64_800) - base * 0.5).abs() < 1e-9); // 18 h: trough
    }

    #[test]
    fn diurnal_thinning_preserves_the_mean_rate() {
        let m = ArrivalModel::paper_week(2000).with_diurnal_rate(0.8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Count arrivals over three simulated days.
        let horizon = 3 * 86_400u64;
        let mut t = 0u64;
        let mut count = 0u64;
        while t < horizon {
            t += m.sample_interarrival_at(&mut rng, t);
            count += 1;
        }
        let expected = m.arrival_rate() * horizon as f64;
        let got = count as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn constant_builder_matches_paper_week() {
        let a = ArrivalModel::paper_week(500);
        let b = ArrivalModel::constant(500, 2 * 86_400, WEEK_SECS);
        assert_eq!(a, b);
    }
}
