//! # slackvm-workload
//!
//! A CloudFactory-like workload generator for the SlackVM experiments.
//!
//! The paper generates "a dynamic set of VMs that align with a Cloud
//! provider context" (§VII): VM sizes drawn from provider-calibrated
//! distributions, CPU-usage behaviours per VM, Poisson arrival/departure
//! processes over a simulated week, and — the SlackVM extension — a share
//! of each VM assigned to an oversubscription level.
//!
//! The VM-size catalogs ([`catalog::azure`], [`catalog::ovhcloud`]) are
//! synthetic power-of-2 flavor sets *calibrated to reproduce the published
//! statistics* the downstream experiments actually consume:
//!
//! | statistic | paper | this crate |
//! |---|---|---|
//! | Azure mean vCPU / vRAM (Table I)   | 2.25 / 4.8 GB  | ≈2.19 / 4.84 |
//! | OVH mean vCPU / vRAM (Table I)     | 3.24 / 10.05 GB| ≈3.29 / 10.21 |
//! | Azure M/C at 1:1, 2:1, 3:1 (Table II) | 2.1 / 3.0 / 4.5 | ≈2.21 / 2.99 / 4.48 |
//! | OVH M/C at 1:1, 2:1, 3:1 (Table II)   | 3.1 / 3.9 / 5.8 | ≈3.10 / 3.89 / 5.83 |
//!
//! Oversubscribed tiers draw from the catalog restricted to flavors of at
//! most 8 GiB, reproducing the paper's "OVHcloud does not offer
//! oversubscribed VMs with a capacity exceeding 8 GB" hypothesis.

#![warn(missing_docs)]

pub mod arrivals;
pub mod catalog;
pub mod instance;
pub mod mix;
pub mod resize;
pub mod scenarios;
pub mod stats;
pub mod trace;
pub mod usage;

pub use arrivals::{ArrivalModel, LifetimeModel, RateShape};
pub use catalog::{Catalog, CatalogError, Flavor};
pub use instance::VmInstance;
pub use mix::{DistributionPoint, LevelMix};
pub use resize::inject_resizes;
pub use scenarios::Scenario;
pub use stats::TraceStats;
pub use trace::{Workload, WorkloadEvent, WorkloadGenerator, WorkloadSpec};
pub use usage::{CpuUsageModel, UsageClass};
