//! Workload traces: event streams a simulator can replay.

use rand::distributions::{Distribution, WeightedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use slackvm_model::{VmId, VmSpec};

use crate::arrivals::ArrivalModel;
use crate::catalog::Catalog;
use crate::instance::VmInstance;
use crate::mix::LevelMix;
use crate::usage::{paper_class_mix, CpuUsageModel};

/// One event in a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// A VM asks to be deployed.
    Arrival(Box<VmInstance>),
    /// A previously-arrived VM terminates.
    Departure {
        /// Which VM departs.
        id: VmId,
    },
    /// A live VM asks to change its size (vertical scaling). The level
    /// is fixed at purchase; only the dimensions move.
    Resize {
        /// Which VM resizes.
        id: VmId,
        /// New vCPU count.
        vcpus: u32,
        /// New memory in MiB.
        mem_mib: u64,
    },
}

impl WorkloadEvent {
    /// The VM this event concerns.
    pub fn vm_id(&self) -> VmId {
        match self {
            WorkloadEvent::Arrival(vm) => vm.id,
            WorkloadEvent::Departure { id } => *id,
            WorkloadEvent::Resize { id, .. } => *id,
        }
    }
}

/// A replayable, time-ordered workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Workload {
    /// `(time_secs, event)` pairs, non-decreasing in time. Departures at
    /// the same instant as arrivals sort first, freeing capacity before
    /// new placements.
    pub events: Vec<(u64, WorkloadEvent)>,
}

impl Workload {
    /// Number of arrivals in the trace.
    pub fn num_arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Arrival(_)))
            .count()
    }

    /// All arriving VM instances, in arrival order.
    pub fn instances(&self) -> impl Iterator<Item = &VmInstance> {
        self.events.iter().filter_map(|(_, e)| match e {
            WorkloadEvent::Arrival(vm) => Some(vm.as_ref()),
            _ => None,
        })
    }

    /// The maximum number of simultaneously-alive VMs across the trace.
    pub fn peak_population(&self) -> u32 {
        let mut alive = 0i64;
        let mut peak = 0i64;
        for (_, event) in &self.events {
            match event {
                WorkloadEvent::Arrival(_) => {
                    alive += 1;
                    peak = peak.max(alive);
                }
                WorkloadEvent::Departure { .. } => alive -= 1,
                WorkloadEvent::Resize { .. } => {}
            }
        }
        peak.max(0) as u32
    }

    /// Checks the trace's structural invariants: time-sorted, every
    /// departure matches a prior arrival, no double departures.
    pub fn validate(&self) -> Result<(), String> {
        let mut alive = std::collections::HashSet::new();
        let mut last_t = 0u64;
        for (t, event) in &self.events {
            if *t < last_t {
                return Err(format!("event at {t} after event at {last_t}"));
            }
            last_t = *t;
            match event {
                WorkloadEvent::Arrival(vm) => {
                    if !alive.insert(vm.id) {
                        return Err(format!("{} arrived twice", vm.id));
                    }
                    if vm.departure_secs <= vm.arrival_secs {
                        return Err(format!("{} has non-positive lifetime", vm.id));
                    }
                }
                WorkloadEvent::Departure { id } => {
                    if !alive.remove(id) {
                        return Err(format!("{id} departed without arriving"));
                    }
                }
                WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                    if !alive.contains(id) {
                        return Err(format!("{id} resized while not alive"));
                    }
                    if *vcpus == 0 || *mem_mib == 0 {
                        return Err(format!("{id} resized to a zero dimension"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Everything a generation run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Provider catalog to draw sizes from.
    pub catalog: Catalog,
    /// Oversubscription-level mix.
    pub mix: LevelMix,
    /// Arrival/departure model.
    pub arrivals: ArrivalModel,
    /// RNG seed — equal specs with equal seeds generate identical traces.
    pub seed: u64,
}

/// The CloudFactory-like generator, extended with oversubscription
/// proportions (the paper's modification, §VII).
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
}

impl WorkloadGenerator {
    /// Wraps a spec.
    pub fn new(spec: WorkloadSpec) -> Self {
        WorkloadGenerator { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the full trace: Poisson arrivals over the horizon, each
    /// VM assigned a level from the mix, a size from that level's
    /// (possibly restricted) catalog, a behaviour class from the paper's
    /// 10/60/30 mix, and an exponential lifetime.
    pub fn generate(&self) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(self.spec.seed);
        let class_mix = paper_class_mix();
        let class_dist =
            WeightedIndex::new(class_mix.iter().map(|(_, w)| *w)).expect("class mix is positive");

        let mut events: Vec<(u64, WorkloadEvent)> = Vec::new();
        let mut t = 0u64;
        let mut next_id = 0u64;
        loop {
            t += self.spec.arrivals.sample_interarrival_at(&mut rng, t);
            if t >= self.spec.arrivals.horizon_secs {
                break;
            }
            let level = self.spec.mix.sample(&mut rng);
            let flavor = self.spec.catalog.sample_for_level(&mut rng, level);
            let spec = VmSpec::of(flavor.request.vcpus, flavor.request.mem_mib, level);
            let class = class_mix[class_dist.sample(&mut rng)].0;
            let seed = rng.gen::<u64>();
            let lifetime = self.spec.arrivals.sample_lifetime(&mut rng);
            let vm = VmInstance {
                id: VmId(next_id),
                spec,
                class,
                usage: CpuUsageModel::for_class(class, seed),
                seed,
                arrival_secs: t,
                departure_secs: t + lifetime,
            };
            next_id += 1;
            let departure = (vm.departure_secs, WorkloadEvent::Departure { id: vm.id });
            events.push((t, WorkloadEvent::Arrival(Box::new(vm))));
            events.push(departure);
        }
        // Stable sort by time with departures before arrivals at equal
        // times (frees capacity first). Stability preserves arrival order.
        events.sort_by_key(|(t, e)| (*t, matches!(e, WorkloadEvent::Arrival(_)) as u8));
        Workload { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::WEEK_SECS;
    use crate::catalog;
    use crate::mix::DistributionPoint;
    use slackvm_model::{gib, OversubLevel};

    fn paper_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            catalog: catalog::azure(),
            mix: DistributionPoint::by_letter('F').unwrap().mix(),
            arrivals: ArrivalModel::paper_week(500),
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadGenerator::new(paper_spec(9)).generate();
        let b = WorkloadGenerator::new(paper_spec(9)).generate();
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(paper_spec(10)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_is_structurally_valid() {
        let w = WorkloadGenerator::new(paper_spec(1)).generate();
        w.validate().expect("trace invariants");
        assert!(w.num_arrivals() > 1000, "a week at λ≈2.9e-3 yields ~1750");
    }

    #[test]
    fn population_approaches_target() {
        let w = WorkloadGenerator::new(paper_spec(2)).generate();
        let peak = w.peak_population();
        // Steady state is 500; Poisson noise and the ramp keep the peak
        // in a generous band around it.
        assert!((350..=700).contains(&peak), "peak population {peak}");
    }

    #[test]
    fn mix_f_contains_only_levels_one_and_three() {
        let w = WorkloadGenerator::new(paper_spec(3)).generate();
        for vm in w.instances() {
            let r = vm.spec.level.ratio();
            assert!(r == 1 || r == 3, "unexpected level {r}");
        }
    }

    #[test]
    fn oversubscribed_vms_respect_catalog_restriction() {
        let w = WorkloadGenerator::new(paper_spec(4)).generate();
        for vm in w.instances() {
            if !vm.spec.level.is_premium() {
                assert!(vm.spec.mem_mib() <= gib(8));
            }
        }
    }

    #[test]
    fn horizon_bounds_arrivals() {
        let w = WorkloadGenerator::new(paper_spec(5)).generate();
        for vm in w.instances() {
            assert!(vm.arrival_secs < WEEK_SECS);
        }
    }

    #[test]
    fn class_mix_proportions_hold() {
        let w = WorkloadGenerator::new(paper_spec(6)).generate();
        let n = w.num_arrivals() as f64;
        let count = |class| w.instances().filter(|vm| vm.class == class).count() as f64 / n;
        use crate::usage::UsageClass::*;
        assert!((count(Idle) - 0.10).abs() < 0.05);
        assert!((count(Stress) - 0.60).abs() < 0.05);
        assert!((count(Interactive) - 0.30).abs() < 0.05);
    }

    #[test]
    fn level_shares_hold_for_mixed_point() {
        let spec = WorkloadSpec {
            mix: DistributionPoint::by_letter('E').unwrap().mix(), // 50/25/25
            ..paper_spec(7)
        };
        let w = WorkloadGenerator::new(spec).generate();
        let n = w.num_arrivals() as f64;
        let share = |r: u32| {
            w.instances()
                .filter(|vm| vm.spec.level == OversubLevel::of(r))
                .count() as f64
                / n
        };
        assert!((share(1) - 0.50).abs() < 0.06);
        assert!((share(2) - 0.25).abs() < 0.06);
        assert!((share(3) - 0.25).abs() < 0.06);
    }

    #[test]
    fn serde_roundtrip_preserves_trace() {
        let spec = WorkloadSpec {
            arrivals: ArrivalModel::constant(20, 3600, 86_400),
            ..paper_spec(8)
        };
        let w = WorkloadGenerator::new(spec).generate();
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn departures_precede_arrivals_at_equal_times() {
        let w = WorkloadGenerator::new(paper_spec(11)).generate();
        for pair in w.events.windows(2) {
            let (t0, e0) = &pair[0];
            let (t1, e1) = &pair[1];
            if t0 == t1 {
                let dep_then_arr = matches!(e0, WorkloadEvent::Departure { .. })
                    || matches!(e1, WorkloadEvent::Arrival(_));
                assert!(dep_then_arr, "arrival sorted before departure at t={t0}");
            }
        }
    }
}
