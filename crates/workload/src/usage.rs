//! Per-VM CPU usage behaviour.
//!
//! The paper's physical experiment (§VII-A) drives VMs with three
//! behaviours: 10% idle, 60% running a CPU benchmark (stress-ng), and the
//! rest interactive micro-service applications whose response times are
//! the measured quantity. This module models those behaviours as
//! deterministic functions of *(VM seed, time)* so a workload replay is
//! exactly reproducible without storing traces.

use serde::{Deserialize, Serialize};

/// Seconds per simulated day.
pub const DAY_SECS: u64 = 86_400;

/// The behavioural class a VM belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UsageClass {
    /// Near-zero background activity.
    Idle,
    /// Sustained CPU benchmark (stress-ng-like).
    Stress,
    /// Interactive service with a diurnal request pattern; these VMs are
    /// the latency probes of the physical experiment.
    Interactive,
}

/// The paper's §VII-A mix: 10% idle, 60% stress, 30% interactive.
pub fn paper_class_mix() -> [(UsageClass, f64); 3] {
    [
        (UsageClass::Idle, 0.10),
        (UsageClass::Stress, 0.60),
        (UsageClass::Interactive, 0.30),
    ]
}

/// A deterministic CPU-utilization model.
///
/// `utilization(seed, t)` returns the fraction of the VM's *vCPU
/// allocation* demanded at time `t`, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CpuUsageModel {
    /// Flat low utilization with jitter.
    Idle {
        /// Mean utilization (e.g. 0.02).
        base: f64,
    },
    /// Flat high utilization with jitter (CPU benchmark).
    Constant {
        /// Mean utilization (e.g. 0.9).
        base: f64,
    },
    /// Diurnal sinusoid between `low` and `high` with per-VM phase.
    Diurnal {
        /// Trough utilization.
        low: f64,
        /// Peak utilization.
        high: f64,
        /// Phase offset in seconds within the day.
        phase_secs: u64,
    },
    /// Two-state burst pattern: `high` for `duty` of every `period_secs`,
    /// `low` otherwise.
    Bursty {
        /// Utilization inside a burst.
        high: f64,
        /// Utilization between bursts.
        low: f64,
        /// Burst cycle length in seconds.
        period_secs: u64,
        /// Fraction of the period spent bursting, in `(0, 1)`.
        duty: f64,
    },
}

impl CpuUsageModel {
    /// Builds the canonical model for a usage class, randomizing phases
    /// from the VM seed.
    pub fn for_class(class: UsageClass, seed: u64) -> CpuUsageModel {
        match class {
            UsageClass::Idle => CpuUsageModel::Idle { base: 0.02 },
            UsageClass::Stress => CpuUsageModel::Constant { base: 0.90 },
            UsageClass::Interactive => CpuUsageModel::Diurnal {
                low: 0.10,
                high: 0.60,
                phase_secs: splitmix(seed) % DAY_SECS,
            },
        }
    }

    /// Demanded fraction of the vCPU allocation at time `t`, in `[0, 1]`.
    ///
    /// Deterministic in `(seed, t)`: the same VM replayed at the same
    /// instant always demands the same CPU.
    pub fn utilization(&self, seed: u64, t_secs: u64) -> f64 {
        let u = match *self {
            CpuUsageModel::Idle { base } => base + jitter(seed, t_secs) * base,
            CpuUsageModel::Constant { base } => base + jitter(seed, t_secs) * 0.05,
            CpuUsageModel::Diurnal {
                low,
                high,
                phase_secs,
            } => {
                let day_pos = ((t_secs + phase_secs) % DAY_SECS) as f64 / DAY_SECS as f64;
                let wave = 0.5 - 0.5 * (day_pos * std::f64::consts::TAU).cos();
                low + (high - low) * wave + jitter(seed, t_secs) * 0.05
            }
            CpuUsageModel::Bursty {
                high,
                low,
                period_secs,
                duty,
            } => {
                let period = period_secs.max(1);
                let pos = ((t_secs + splitmix(seed) % period) % period) as f64 / period as f64;
                if pos < duty.clamp(0.0, 1.0) {
                    high + jitter(seed, t_secs) * 0.05
                } else {
                    low + jitter(seed, t_secs) * 0.02
                }
            }
        };
        u.clamp(0.0, 1.0)
    }
}

/// SplitMix64 finalizer — a cheap, high-quality 64-bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic noise in `[-1, 1]` from (seed, time).
fn jitter(seed: u64, t_secs: u64) -> f64 {
    let h = splitmix(seed ^ splitmix(t_secs));
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn class_mix_sums_to_one() {
        let total: f64 = paper_class_mix().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_stays_low_stress_stays_high() {
        let idle = CpuUsageModel::for_class(UsageClass::Idle, 1);
        let stress = CpuUsageModel::for_class(UsageClass::Stress, 2);
        for t in (0..DAY_SECS).step_by(600) {
            assert!(idle.utilization(1, t) < 0.1);
            assert!(stress.utilization(2, t) > 0.8);
        }
    }

    #[test]
    fn diurnal_peaks_and_troughs_exist() {
        let m = CpuUsageModel::Diurnal {
            low: 0.1,
            high: 0.6,
            phase_secs: 0,
        };
        // Trough at t=0 (cos peak), peak at half-day.
        assert!(m.utilization(0, 0) < 0.25);
        assert!(m.utilization(0, DAY_SECS / 2) > 0.45);
    }

    #[test]
    fn bursty_alternates() {
        let m = CpuUsageModel::Bursty {
            high: 0.9,
            low: 0.05,
            period_secs: 100,
            duty: 0.5,
        };
        let samples: Vec<f64> = (0..200).map(|t| m.utilization(0, t)).collect();
        let highs = samples.iter().filter(|&&u| u > 0.5).count();
        let lows = samples.iter().filter(|&&u| u < 0.2).count();
        assert!(highs > 50 && lows > 50, "highs={highs} lows={lows}");
    }

    #[test]
    fn utilization_is_deterministic() {
        let m = CpuUsageModel::for_class(UsageClass::Interactive, 42);
        assert_eq!(m.utilization(42, 1234), m.utilization(42, 1234));
    }

    #[test]
    fn different_seeds_decorrelate_phases() {
        let a = CpuUsageModel::for_class(UsageClass::Interactive, 1);
        let b = CpuUsageModel::for_class(UsageClass::Interactive, 2);
        assert_ne!(a, b, "phases should differ across seeds");
    }

    proptest! {
        #[test]
        fn utilization_is_always_in_unit_interval(
            seed in any::<u64>(), t in 0u64..10 * DAY_SECS,
            class in prop_oneof![
                Just(UsageClass::Idle),
                Just(UsageClass::Stress),
                Just(UsageClass::Interactive),
            ],
        ) {
            let m = CpuUsageModel::for_class(class, seed);
            let u = m.utilization(seed, t);
            prop_assert!((0.0..=1.0).contains(&u));
        }

        #[test]
        fn bursty_is_in_unit_interval(
            seed in any::<u64>(), t in 0u64..1_000_000,
            period in 1u64..10_000, duty in 0.0f64..1.0,
        ) {
            let m = CpuUsageModel::Bursty { high: 0.95, low: 0.02, period_secs: period, duty };
            let u = m.utilization(seed, t);
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }
}
