//! Oversubscription-level mixes and the paper's distribution grid A..O.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};

use slackvm_model::OversubLevel;

/// A probability mix over oversubscription levels: the share of incoming
/// VMs purchased at each tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelMix {
    shares: Vec<(OversubLevel, f64)>,
}

impl LevelMix {
    /// Builds a mix, dropping non-positive shares and normalizing the rest
    /// to sum to 1. Returns `None` when nothing positive remains.
    pub fn new(shares: Vec<(OversubLevel, f64)>) -> Option<Self> {
        let mut shares: Vec<(OversubLevel, f64)> = shares
            .into_iter()
            .filter(|(_, s)| *s > 0.0 && s.is_finite())
            .collect();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return None;
        }
        for (_, s) in &mut shares {
            *s /= total;
        }
        shares.sort_by_key(|(l, _)| *l);
        Some(LevelMix { shares })
    }

    /// The paper's three-level mix from percentage points
    /// `(share of 1:1, share of 2:1, share of 3:1)`.
    pub fn three_level(p1: f64, p2: f64, p3: f64) -> Option<Self> {
        LevelMix::new(vec![
            (OversubLevel::of(1), p1),
            (OversubLevel::of(2), p2),
            (OversubLevel::of(3), p3),
        ])
    }

    /// Normalized `(level, share)` pairs, ascending by level.
    pub fn shares(&self) -> &[(OversubLevel, f64)] {
        &self.shares
    }

    /// The share of a given level (0 when absent).
    pub fn share_of(&self, level: OversubLevel) -> f64 {
        self.shares
            .iter()
            .find(|(l, _)| *l == level)
            .map_or(0.0, |(_, s)| *s)
    }

    /// The levels present (positive share), ascending.
    pub fn levels(&self) -> Vec<OversubLevel> {
        self.shares.iter().map(|(l, _)| *l).collect()
    }

    /// Draws a level according to the shares.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OversubLevel {
        let dist = WeightedIndex::new(self.shares.iter().map(|(_, s)| *s))
            .expect("mix has positive shares");
        self.shares[dist.sample(rng)].0
    }
}

impl std::fmt::Display for LevelMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .shares
            .iter()
            .map(|(l, s)| format!("{}={:.0}%", l, s * 100.0))
            .collect();
        f.write_str(&parts.join(" "))
    }
}

/// One cell of the paper's Fig. 3/4 sweep: a named mix of the three
/// levels in 25-point steps.
///
/// The letters enumerate the share simplex row by row by descending 1:1
/// share, matching the paper's references: {A, B, D, G, K} contain no 3:1
/// VMs; F is the 50% 1:1 + 50% 3:1 mix that yields the headline 9.6%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DistributionPoint {
    /// Letter `A`..`O`.
    pub letter: char,
    /// Percentage of 1:1 VMs (0, 25, 50, 75 or 100).
    pub p1: u32,
    /// Percentage of 2:1 VMs.
    pub p2: u32,
    /// Percentage of 3:1 VMs (the complement).
    pub p3: u32,
}

impl DistributionPoint {
    /// All fifteen paper distributions A..O, in paper order (least to most
    /// oversubscribed).
    pub fn all() -> Vec<DistributionPoint> {
        let mut points = Vec::with_capacity(15);
        let mut letter = b'A';
        // Rows by descending 1:1 share; within a row, descending 2:1 share.
        for p1 in [100u32, 75, 50, 25, 0] {
            let rest = 100 - p1;
            let mut p2 = rest;
            loop {
                points.push(DistributionPoint {
                    letter: letter as char,
                    p1,
                    p2,
                    p3: rest - p2,
                });
                letter += 1;
                if p2 == 0 {
                    break;
                }
                p2 -= 25;
            }
        }
        points
    }

    /// Looks a distribution up by letter.
    pub fn by_letter(letter: char) -> Option<DistributionPoint> {
        Self::all().into_iter().find(|p| p.letter == letter)
    }

    /// The mix this point denotes.
    pub fn mix(&self) -> LevelMix {
        LevelMix::three_level(self.p1 as f64, self.p2 as f64, self.p3 as f64)
            .expect("distribution points always have a positive share")
    }

    /// True when the point contains no 3:1 VMs (the paper's "no
    /// memory-biased level to pool against" cases).
    pub fn has_no_level3(&self) -> bool {
        self.p3 == 0
    }
}

impl std::fmt::Display for DistributionPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (1:1={}%, 2:1={}%, 3:1={}%)",
            self.letter, self.p1, self.p2, self.p3
        )
    }
}

/// The general simplex grid over three levels with a percentage `step`
/// that divides 100 — Fig. 4's axes at arbitrary resolution.
pub fn simplex_grid(step: u32) -> Vec<(u32, u32, u32)> {
    assert!(step > 0 && 100 % step == 0, "step must divide 100");
    let mut cells = Vec::new();
    let mut p1 = 0;
    while p1 <= 100 {
        let mut p2 = 0;
        while p1 + p2 <= 100 {
            cells.push((p1, p2, 100 - p1 - p2));
            p2 += step;
        }
        p1 += step;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fifteen_points_a_through_o() {
        let all = DistributionPoint::all();
        assert_eq!(all.len(), 15);
        assert_eq!(all[0].letter, 'A');
        assert_eq!(all[14].letter, 'O');
        // Every cell sums to 100.
        assert!(all.iter().all(|p| p.p1 + p.p2 + p.p3 == 100));
    }

    #[test]
    fn paper_anchor_points_hold() {
        // A = pure premium; O = pure 3:1; F = 50/0/50 (the 9.6% case);
        // K = pure 2:1. {A,B,D,G,K} have no 3:1 VMs.
        let p = |c| DistributionPoint::by_letter(c).unwrap();
        assert_eq!((p('A').p1, p('A').p2, p('A').p3), (100, 0, 0));
        assert_eq!((p('O').p1, p('O').p2, p('O').p3), (0, 0, 100));
        assert_eq!((p('F').p1, p('F').p2, p('F').p3), (50, 0, 50));
        assert_eq!((p('K').p1, p('K').p2, p('K').p3), (0, 100, 0));
        let no3: Vec<char> = DistributionPoint::all()
            .into_iter()
            .filter(|p| p.has_no_level3())
            .map(|p| p.letter)
            .collect();
        assert_eq!(no3, vec!['A', 'B', 'D', 'G', 'K']);
    }

    #[test]
    fn mix_normalizes_and_drops_zero_shares() {
        let m = LevelMix::three_level(50.0, 0.0, 50.0).unwrap();
        assert_eq!(m.levels(), vec![OversubLevel::of(1), OversubLevel::of(3)]);
        assert!((m.share_of(OversubLevel::of(1)) - 0.5).abs() < 1e-12);
        assert_eq!(m.share_of(OversubLevel::of(2)), 0.0);
        assert!(LevelMix::three_level(0.0, 0.0, 0.0).is_none());
    }

    #[test]
    fn mix_sampling_matches_shares() {
        let m = LevelMix::three_level(25.0, 50.0, 25.0).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = 40_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(m.sample(&mut rng).ratio()).or_insert(0usize) += 1;
        }
        let share = |r: u32| counts[&r] as f64 / n as f64;
        assert!((share(1) - 0.25).abs() < 0.02);
        assert!((share(2) - 0.50).abs() < 0.02);
        assert!((share(3) - 0.25).abs() < 0.02);
    }

    #[test]
    fn grid_with_step_25_matches_paper_cells() {
        let grid = simplex_grid(25);
        assert_eq!(grid.len(), 15);
        assert!(grid.contains(&(50, 0, 50)));
        let fine = simplex_grid(10);
        assert_eq!(fine.len(), 66); // C(12, 2)
    }

    #[test]
    #[should_panic(expected = "step must divide 100")]
    fn grid_rejects_bad_step() {
        simplex_grid(30);
    }

    #[test]
    fn display_formats() {
        let p = DistributionPoint::by_letter('F').unwrap();
        assert_eq!(p.to_string(), "F (1:1=50%, 2:1=0%, 3:1=50%)");
        assert_eq!(p.mix().to_string(), "1:1=50% 3:1=50%");
    }
}
