//! Canned workload scenarios.
//!
//! Reusable, named configurations for examples, benches and downstream
//! users: the paper's exact protocol plus common what-if shapes
//! (burst days, dev/test churn, steady enterprise load).

use serde::{Deserialize, Serialize};

use crate::arrivals::{ArrivalModel, WEEK_SECS};
use crate::catalog::{self, Catalog};
use crate::mix::{DistributionPoint, LevelMix};
use crate::trace::{Workload, WorkloadGenerator, WorkloadSpec};

/// A named scenario: everything but the seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (stable identifier).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// Provider catalog.
    pub catalog: Catalog,
    /// Level mix.
    pub mix: LevelMix,
    /// Arrival/departure model.
    pub arrivals: ArrivalModel,
}

impl Scenario {
    /// Generates the scenario's trace for a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        WorkloadGenerator::new(WorkloadSpec {
            catalog: self.catalog.clone(),
            mix: self.mix.clone(),
            arrivals: self.arrivals,
            seed,
        })
        .generate()
    }
}

/// The paper's §VII-B protocol on distribution F — the headline setup.
pub fn paper_week_f(population: u32) -> Scenario {
    Scenario {
        name: "paper-week-f".into(),
        description: "one week, OVHcloud sizes, 50% premium + 50% 3:1 (paper dist F)".into(),
        catalog: catalog::ovhcloud(),
        mix: DistributionPoint::by_letter('F').expect("F exists").mix(),
        arrivals: ArrivalModel::paper_week(population),
    }
}

/// A human-driven burst day: diurnal arrivals with a strong swing,
/// short-lived VMs — the shape of interactive dev workloads.
pub fn burst_day(population: u32) -> Scenario {
    Scenario {
        name: "burst-day".into(),
        description: "diurnal arrivals (amplitude 0.8), 6 h mean lifetimes, Azure sizes".into(),
        catalog: catalog::azure(),
        mix: LevelMix::three_level(20.0, 30.0, 50.0).expect("positive shares"),
        arrivals: ArrivalModel::constant(population, 6 * 3600, 3 * 86_400).with_diurnal_rate(0.8),
    }
}

/// Dev/test churn: heavy-tailed lifetimes (most VMs die young, a few
/// live for the whole horizon), mostly oversubscribed tiers.
pub fn devtest_churn(population: u32) -> Scenario {
    Scenario {
        name: "devtest-churn".into(),
        description: "log-normal lifetimes (σ=1.4), 10% premium, Azure sizes".into(),
        catalog: catalog::azure(),
        mix: LevelMix::three_level(10.0, 40.0, 50.0).expect("positive shares"),
        arrivals: ArrivalModel::constant(population, 86_400, WEEK_SECS)
            .with_lognormal_lifetimes(1.4),
    }
}

/// Steady enterprise load: long-lived, premium-heavy, memory-rich
/// (OVHcloud sizes) — the anti-SlackVM case with little to pool.
pub fn enterprise_steady(population: u32) -> Scenario {
    Scenario {
        name: "enterprise-steady".into(),
        description: "4-day mean lifetimes, 70% premium, OVHcloud sizes".into(),
        catalog: catalog::ovhcloud(),
        mix: LevelMix::three_level(70.0, 20.0, 10.0).expect("positive shares"),
        arrivals: ArrivalModel::constant(population, 4 * 86_400, WEEK_SECS),
    }
}

/// All canned scenarios at a common population.
pub fn all(population: u32) -> Vec<Scenario> {
    vec![
        paper_week_f(population),
        burst_day(population),
        devtest_churn(population),
        enterprise_steady(population),
    ]
}

/// The stable names [`by_name`] resolves, in presentation order.
pub const SCENARIO_NAMES: &[&str] = &[
    "paper-week-f",
    "burst-day",
    "devtest-churn",
    "enterprise-steady",
];

/// Looks a canned scenario up by its stable name — the registry behind
/// every `--scenario` flag, so tools and error messages agree on the
/// accepted set. Returns `None` for an unknown name.
pub fn by_name(name: &str, population: u32) -> Option<Scenario> {
    match name {
        "paper-week-f" => Some(paper_week_f(population)),
        "burst-day" => Some(burst_day(population)),
        "devtest-churn" => Some(devtest_churn(population)),
        "enterprise-steady" => Some(enterprise_steady(population)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn every_scenario_generates_a_valid_trace() {
        for scenario in all(80) {
            let w = scenario.generate(9);
            w.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(w.num_arrivals() > 0, "{} is empty", scenario.name);
        }
    }

    #[test]
    fn scenarios_have_distinct_shapes() {
        let churn = devtest_churn(100).generate(1);
        let steady = enterprise_steady(100).generate(1);
        let churn_stats = TraceStats::of(&churn).unwrap();
        let steady_stats = TraceStats::of(&steady).unwrap();
        // Heavy-tail churn: median lifetime far below the steady one.
        assert!(
            churn_stats.lifetime_percentiles.0 < steady_stats.lifetime_percentiles.0 / 3,
            "churn p50 {} vs steady p50 {}",
            churn_stats.lifetime_percentiles.0,
            steady_stats.lifetime_percentiles.0
        );
        // Premium share differs as configured.
        assert!(churn_stats.level_shares[&1] < 0.2);
        assert!(steady_stats.level_shares[&1] > 0.6);
    }

    #[test]
    fn burst_day_concentrates_arrivals_in_daytime() {
        let w = burst_day(300).generate(2);
        let mut day = 0usize;
        let mut night = 0usize;
        for vm in w.instances() {
            let hour = (vm.arrival_secs % 86_400) / 3600;
            // Diurnal sine peaks at hour 6, troughs at hour 18.
            if (0..12).contains(&hour) {
                day += 1;
            } else {
                night += 1;
            }
        }
        assert!(
            day as f64 > night as f64 * 1.5,
            "day {day} vs night {night}"
        );
    }

    #[test]
    fn by_name_covers_exactly_the_canned_set() {
        for scenario in all(40) {
            let looked_up = by_name(&scenario.name, 40)
                .unwrap_or_else(|| panic!("{} not resolvable by name", scenario.name));
            assert_eq!(looked_up, scenario);
            assert!(SCENARIO_NAMES.contains(&scenario.name.as_str()));
        }
        assert_eq!(SCENARIO_NAMES.len(), all(40).len());
        assert!(by_name("paper-week-g", 40).is_none());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = paper_week_f(60).generate(5);
        let b = paper_week_f(60).generate(5);
        assert_eq!(a, b);
    }
}
