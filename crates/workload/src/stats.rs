//! Trace statistics: fidelity checks of generated workloads.
//!
//! CloudFactory ships similar summaries; the experiments use them to
//! verify a trace matches its spec (catalog means, level shares, class
//! mix, lifetime distribution) before trusting downstream results.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use slackvm_model::units::mib_to_gib_f64;
use slackvm_model::OversubLevel;

use crate::trace::Workload;
use crate::usage::UsageClass;

/// Aggregate statistics of one workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of arrivals.
    pub arrivals: usize,
    /// Peak simultaneously-alive population.
    pub peak_population: u32,
    /// Mean vCPUs per VM.
    pub mean_vcpus: f64,
    /// Mean memory per VM (GiB).
    pub mean_mem_gib: f64,
    /// Share of VMs per oversubscription level.
    pub level_shares: BTreeMap<u32, f64>,
    /// Share of VMs per behaviour class.
    pub class_shares: BTreeMap<String, f64>,
    /// Lifetime percentiles in seconds: (p50, p90, p99).
    pub lifetime_percentiles: (u64, u64, u64),
    /// Mean lifetime in seconds.
    pub mean_lifetime_secs: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace. Returns `None` on an empty
    /// trace.
    pub fn of(workload: &Workload) -> Option<TraceStats> {
        let n = workload.num_arrivals();
        if n == 0 {
            return None;
        }
        let mut vcpus = 0f64;
        let mut mem = 0f64;
        let mut levels: BTreeMap<u32, usize> = BTreeMap::new();
        let mut classes: BTreeMap<String, usize> = BTreeMap::new();
        let mut lifetimes: Vec<u64> = Vec::with_capacity(n);
        for vm in workload.instances() {
            vcpus += vm.spec.vcpus() as f64;
            mem += mib_to_gib_f64(vm.spec.mem_mib());
            *levels.entry(vm.spec.level.ratio()).or_default() += 1;
            let class = match vm.class {
                UsageClass::Idle => "idle",
                UsageClass::Stress => "stress",
                UsageClass::Interactive => "interactive",
            };
            *classes.entry(class.to_string()).or_default() += 1;
            lifetimes.push(vm.lifetime_secs());
        }
        lifetimes.sort_unstable();
        let pick = |q: f64| lifetimes[((q * n as f64) as usize).min(n - 1)];
        Some(TraceStats {
            arrivals: n,
            peak_population: workload.peak_population(),
            mean_vcpus: vcpus / n as f64,
            mean_mem_gib: mem / n as f64,
            level_shares: levels
                .into_iter()
                .map(|(l, c)| (l, c as f64 / n as f64))
                .collect(),
            class_shares: classes
                .into_iter()
                .map(|(l, c)| (l, c as f64 / n as f64))
                .collect(),
            lifetime_percentiles: (pick(0.50), pick(0.90), pick(0.99)),
            mean_lifetime_secs: lifetimes.iter().sum::<u64>() as f64 / n as f64,
        })
    }

    /// The trace's provisioned M/C ratio at a level (GiB per physical
    /// core over that level's VMs) — the empirical counterpart of
    /// [`crate::Catalog::mc_ratio_at`].
    pub fn empirical_mc_ratio(workload: &Workload, level: OversubLevel) -> Option<f64> {
        let mut vcpus = 0u64;
        let mut mem = 0f64;
        for vm in workload.instances().filter(|vm| vm.spec.level == level) {
            vcpus += vm.spec.vcpus() as u64;
            mem += mib_to_gib_f64(vm.spec.mem_mib());
        }
        if vcpus == 0 {
            None
        } else {
            Some(level.ratio() as f64 * mem / vcpus as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalModel;
    use crate::catalog;
    use crate::mix::DistributionPoint;
    use crate::trace::{WorkloadGenerator, WorkloadSpec};

    fn trace(seed: u64) -> Workload {
        WorkloadGenerator::new(WorkloadSpec {
            catalog: catalog::azure(),
            mix: DistributionPoint::by_letter('E').unwrap().mix(), // 50/25/25
            arrivals: ArrivalModel::paper_week(300),
            seed,
        })
        .generate()
    }

    #[test]
    fn stats_match_the_generating_spec() {
        let w = trace(1);
        let s = TraceStats::of(&w).unwrap();
        assert_eq!(s.arrivals, w.num_arrivals());
        assert!((s.level_shares[&1] - 0.50).abs() < 0.06);
        assert!((s.level_shares[&2] - 0.25).abs() < 0.06);
        assert!((s.level_shares[&3] - 0.25).abs() < 0.06);
        assert!((s.class_shares["stress"] - 0.60).abs() < 0.06);
        // Exponential lifetimes: p50 ≈ ln2 · mean, mean ≈ 2 days.
        let mean = s.mean_lifetime_secs;
        assert!((mean - 172_800.0).abs() / 172_800.0 < 0.1, "mean {mean}");
        let (p50, p90, p99) = s.lifetime_percentiles;
        assert!(p50 < p90 && p90 < p99);
        assert!((p50 as f64 - 0.693 * mean).abs() / mean < 0.15);
    }

    #[test]
    fn empirical_mc_ratio_tracks_catalog_prediction() {
        let w = trace(2);
        let cat = catalog::azure();
        for n in [1u32, 2, 3] {
            let level = OversubLevel::of(n);
            let empirical = TraceStats::empirical_mc_ratio(&w, level).unwrap();
            let predicted = cat.mc_ratio_at(level);
            assert!(
                (empirical - predicted).abs() / predicted < 0.15,
                "{level}: empirical {empirical:.2} vs predicted {predicted:.2}"
            );
        }
    }

    #[test]
    fn empty_trace_yields_none() {
        assert!(TraceStats::of(&Workload::default()).is_none());
        assert!(
            TraceStats::empirical_mc_ratio(&Workload::default(), OversubLevel::of(1)).is_none()
        );
    }
}
