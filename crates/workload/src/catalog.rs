//! Provider VM-size catalogs and their statistics.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};

use slackvm_model::units::mib_to_gib_f64;
use slackvm_model::{gib, OversubLevel, Resources};

/// A rentable VM size with its popularity weight in the provider's fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flavor {
    /// Human-readable flavor name (e.g. `a2_4`).
    pub name: String,
    /// Virtual resource request.
    pub request: Resources,
    /// Relative popularity weight (need not sum to 1 across a catalog).
    pub weight: f64,
}

impl Flavor {
    /// Constructs a flavor.
    pub fn new(name: impl Into<String>, vcpus: u32, mem_mib: u64, weight: f64) -> Self {
        Flavor {
            name: name.into(),
            request: Resources::new(vcpus, mem_mib),
            weight,
        }
    }
}

/// Validation errors of user-supplied catalogs.
#[derive(Debug, thiserror::Error, Clone, PartialEq)]
pub enum CatalogError {
    /// No (positively-weighted) flavor at all.
    #[error("catalog {0:?} has no usable flavor")]
    Empty(String),

    /// A flavor with a zero dimension.
    #[error("flavor {0:?} has zero vCPUs or memory")]
    EmptyFlavor(String),

    /// A flavor with a non-finite or negative weight.
    #[error("flavor {0:?} has an invalid weight {1}")]
    BadWeight(String, f64),

    /// Two flavors with the same name.
    #[error("duplicate flavor name {0:?}")]
    DuplicateName(String),

    /// Malformed JSON.
    #[error("catalog JSON: {0}")]
    Json(String),
}

/// A weighted set of VM flavors — one provider's public catalog together
/// with how often each size is actually deployed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// Provider label used in reports ("azure", "ovhcloud", ...).
    pub provider: String,
    flavors: Vec<Flavor>,
}

impl Catalog {
    /// Builds a catalog from a flavor list. Flavors with non-positive
    /// weight are dropped.
    pub fn new(provider: impl Into<String>, flavors: Vec<Flavor>) -> Self {
        let flavors = flavors
            .into_iter()
            .filter(|f| f.weight > 0.0 && f.weight.is_finite())
            .collect();
        Catalog {
            provider: provider.into(),
            flavors,
        }
    }

    /// The flavor list.
    pub fn flavors(&self) -> &[Flavor] {
        &self.flavors
    }

    /// Weighted mean vCPU count per VM (Table I's first column).
    pub fn mean_vcpus(&self) -> f64 {
        let (num, den) = self.flavors.iter().fold((0.0, 0.0), |(n, d), f| {
            (n + f.weight * f.request.vcpus as f64, d + f.weight)
        });
        num / den
    }

    /// Weighted mean memory per VM in GiB (Table I's second column).
    pub fn mean_mem_gib(&self) -> f64 {
        let (num, den) = self.flavors.iter().fold((0.0, 0.0), |(n, d), f| {
            (
                n + f.weight * mib_to_gib_f64(f.request.mem_mib),
                d + f.weight,
            )
        });
        num / den
    }

    /// The catalog restricted to flavors of at most `max_mem_mib` — the
    /// paper's model of a *smaller oversubscribed catalog* ("VM having
    /// more than 8 GB were excluded", §III-A).
    pub fn restricted(&self, max_mem_mib: u64) -> Catalog {
        Catalog {
            provider: self.provider.clone(),
            flavors: self
                .flavors
                .iter()
                .filter(|f| f.request.mem_mib <= max_mem_mib)
                .cloned()
                .collect(),
        }
    }

    /// The catalog an oversubscription tier actually sells from: the full
    /// catalog at 1:1, the ≤8 GiB restriction otherwise.
    pub fn for_level(&self, level: OversubLevel) -> Catalog {
        if level.is_premium() {
            self.clone()
        } else {
            self.restricted(gib(8))
        }
    }

    /// The provisioned Memory-per-physical-Core ratio of VMs sold at
    /// `level`, in GiB per core — the paper's Table II quantity:
    /// `n · E[vRAM] / E[vCPU]` over the tier's catalog.
    pub fn mc_ratio_at(&self, level: OversubLevel) -> f64 {
        let tier = self.for_level(level);
        level.ratio() as f64 * tier.mean_mem_gib() / tier.mean_vcpus()
    }

    /// Draws one flavor according to the popularity weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &Flavor {
        let dist = WeightedIndex::new(self.flavors.iter().map(|f| f.weight))
            .expect("catalog has positive-weight flavors");
        &self.flavors[dist.sample(rng)]
    }

    /// Draws one flavor from the catalog of `level` (restricted when
    /// oversubscribed).
    pub fn sample_for_level<R: Rng + ?Sized>(&self, rng: &mut R, level: OversubLevel) -> Flavor {
        self.for_level(level).sample(rng).clone()
    }

    /// Strict validation for user-supplied catalogs. The [`Catalog::new`]
    /// constructor silently drops zero-weight flavors; this instead
    /// rejects anything suspicious — the right behaviour at a config
    /// boundary.
    pub fn validate(&self) -> Result<(), CatalogError> {
        if self.flavors.is_empty() {
            return Err(CatalogError::Empty(self.provider.clone()));
        }
        let mut names: Vec<&str> = Vec::with_capacity(self.flavors.len());
        for f in &self.flavors {
            if f.request.vcpus == 0 || f.request.mem_mib == 0 {
                return Err(CatalogError::EmptyFlavor(f.name.clone()));
            }
            if !f.weight.is_finite() || f.weight <= 0.0 {
                return Err(CatalogError::BadWeight(f.name.clone(), f.weight));
            }
            if names.contains(&f.name.as_str()) {
                return Err(CatalogError::DuplicateName(f.name.clone()));
            }
            names.push(&f.name);
        }
        Ok(())
    }

    /// Loads and validates a catalog from its JSON representation
    /// (the format produced by serializing a [`Catalog`]).
    pub fn from_json(json: &str) -> Result<Catalog, CatalogError> {
        let catalog: Catalog =
            serde_json::from_str(json).map_err(|e| CatalogError::Json(e.to_string()))?;
        catalog.validate()?;
        Ok(catalog)
    }
}

/// The Azure-calibrated catalog (see crate docs for the calibration
/// targets). Weights and sizes are synthetic; means match paper Table I
/// and tier M/C ratios match Table II within a few percent.
///
/// ```
/// use slackvm_workload::catalog::azure;
/// use slackvm_model::OversubLevel;
/// let cat = azure();
/// assert!((cat.mean_vcpus() - 2.25).abs() < 0.15);               // Table I
/// assert!((cat.mc_ratio_at(OversubLevel::of(3)) - 4.5).abs() < 0.2); // Table II
/// ```
pub fn azure() -> Catalog {
    Catalog::new(
        "azure",
        vec![
            Flavor::new("a1_1", 1, gib(1), 0.3580),
            Flavor::new("a2_2", 2, gib(2), 0.1320),
            Flavor::new("a4_4", 4, gib(4), 0.0440),
            Flavor::new("a1_2", 1, gib(2), 0.1056),
            Flavor::new("a2_4", 2, gib(4), 0.1584),
            Flavor::new("a4_8", 4, gib(8), 0.0880),
            Flavor::new("a4_16", 4, gib(16), 0.0840),
            Flavor::new("a8_32", 8, gib(32), 0.0300),
        ],
    )
}

/// The OVHcloud-calibrated catalog: larger deployments, memory-heavier
/// ratio (paper Table I: 3.24 vCPU / 10.05 GB per VM).
pub fn ovhcloud() -> Catalog {
    Catalog::new(
        "ovhcloud",
        vec![
            Flavor::new("o1_4", 1, gib(4), 0.0415),
            Flavor::new("o1_2", 1, gib(2), 0.1826),
            Flavor::new("o2_4", 2, gib(4), 0.2739),
            Flavor::new("o4_8", 4, gib(8), 0.2656),
            Flavor::new("o2_2", 2, gib(2), 0.0332),
            Flavor::new("o4_4", 4, gib(4), 0.0332),
            Flavor::new("o8_32", 8, gib(32), 0.1190),
            Flavor::new("o4_32", 4, gib(32), 0.0255),
            Flavor::new("o8_64", 8, gib(64), 0.0255),
        ],
    )
}

/// A synthetic provider whose every flavor sits exactly on a 4 GiB/core
/// ratio — useful as a sensitivity baseline (no packing gain should be
/// available from ratio complementarity).
pub fn balanced() -> Catalog {
    Catalog::new(
        "balanced",
        vec![
            Flavor::new("b1_4", 1, gib(4), 0.4),
            Flavor::new("b2_8", 2, gib(8), 0.4),
            Flavor::new("b4_16", 4, gib(16), 0.2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table1_azure_averages_within_tolerance() {
        let c = azure();
        assert!(
            (c.mean_vcpus() - 2.25).abs() < 0.15,
            "got {}",
            c.mean_vcpus()
        );
        assert!(
            (c.mean_mem_gib() - 4.8).abs() < 0.25,
            "got {}",
            c.mean_mem_gib()
        );
    }

    #[test]
    fn table1_ovh_averages_within_tolerance() {
        let c = ovhcloud();
        assert!(
            (c.mean_vcpus() - 3.24).abs() < 0.15,
            "got {}",
            c.mean_vcpus()
        );
        assert!(
            (c.mean_mem_gib() - 10.05).abs() < 0.35,
            "got {}",
            c.mean_mem_gib()
        );
    }

    #[test]
    fn table2_azure_mc_ratios_within_tolerance() {
        let c = azure();
        let r = |n| c.mc_ratio_at(OversubLevel::of(n));
        assert!((r(1) - 2.1).abs() < 0.2, "1:1 got {}", r(1));
        assert!((r(2) - 3.0).abs() < 0.2, "2:1 got {}", r(2));
        assert!((r(3) - 4.5).abs() < 0.2, "3:1 got {}", r(3));
    }

    #[test]
    fn table2_ovh_mc_ratios_within_tolerance() {
        let c = ovhcloud();
        let r = |n| c.mc_ratio_at(OversubLevel::of(n));
        assert!((r(1) - 3.1).abs() < 0.2, "1:1 got {}", r(1));
        assert!((r(2) - 3.9).abs() < 0.2, "2:1 got {}", r(2));
        assert!((r(3) - 5.8).abs() < 0.2, "3:1 got {}", r(3));
    }

    #[test]
    fn restriction_removes_large_flavors() {
        let c = ovhcloud();
        let r = c.restricted(gib(8));
        assert!(r.flavors().iter().all(|f| f.request.mem_mib <= gib(8)));
        assert!(r.flavors().len() < c.flavors().len());
        // Premium tier keeps the full catalog.
        assert_eq!(
            c.for_level(OversubLevel::PREMIUM).flavors().len(),
            c.flavors().len()
        );
    }

    #[test]
    fn balanced_catalog_sits_on_target_ratio() {
        let c = balanced();
        assert!((c.mc_ratio_at(OversubLevel::PREMIUM) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_weights_roughly() {
        let c = azure();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mut small = 0;
        for _ in 0..n {
            if c.sample(&mut rng).name == "a1_1" {
                small += 1;
            }
        }
        let share = small as f64 / n as f64;
        assert!((share - 0.352).abs() < 0.02, "observed share {share}");
    }

    #[test]
    fn sample_for_level_never_returns_excluded_flavor() {
        let c = azure();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..2_000 {
            let f = c.sample_for_level(&mut rng, OversubLevel::of(3));
            assert!(f.request.mem_mib <= gib(8), "sampled {}", f.name);
        }
    }

    #[test]
    fn builtin_catalogs_validate() {
        for c in [azure(), ovhcloud(), balanced()] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let json = serde_json::to_string(&azure()).unwrap();
        let back = Catalog::from_json(&json).unwrap();
        assert_eq!(back, azure());
        assert!(matches!(
            Catalog::from_json("{not json"),
            Err(CatalogError::Json(_))
        ));
        // A catalog with a zero-vcpu flavor fails validation even though
        // the JSON is well-formed.
        let bad = r#"{"provider":"x","flavors":[{"name":"z","request":{"vcpus":0,"mem_mib":1024},"weight":1.0}]}"#;
        assert!(matches!(
            Catalog::from_json(bad),
            Err(CatalogError::EmptyFlavor(_))
        ));
    }

    #[test]
    fn validation_rejects_duplicates_and_bad_weights() {
        let dup = Catalog {
            provider: "x".into(),
            flavors: vec![
                Flavor::new("a", 1, gib(1), 1.0),
                Flavor::new("a", 2, gib(2), 1.0),
            ],
        };
        assert!(matches!(
            dup.validate(),
            Err(CatalogError::DuplicateName(_))
        ));
        let nan = Catalog {
            provider: "x".into(),
            flavors: vec![Flavor::new("a", 1, gib(1), f64::NAN)],
        };
        assert!(matches!(nan.validate(), Err(CatalogError::BadWeight(..))));
        let empty = Catalog {
            provider: "x".into(),
            flavors: vec![],
        };
        assert!(matches!(empty.validate(), Err(CatalogError::Empty(_))));
    }

    #[test]
    fn zero_weight_flavors_are_dropped() {
        let c = Catalog::new(
            "x",
            vec![
                Flavor::new("keep", 1, gib(1), 1.0),
                Flavor::new("drop", 1, gib(1), 0.0),
                Flavor::new("nan", 1, gib(1), f64::NAN),
            ],
        );
        assert_eq!(c.flavors().len(), 1);
    }

    #[test]
    fn empirical_sample_means_converge_to_catalog_means() {
        let c = ovhcloud();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let n = 50_000;
        let (mut vc, mut mem) = (0.0, 0.0);
        for _ in 0..n {
            let f = c.sample(&mut rng);
            vc += f.request.vcpus as f64;
            mem += mib_to_gib_f64(f.request.mem_mib);
        }
        assert!((vc / n as f64 - c.mean_vcpus()).abs() < 0.05);
        assert!((mem / n as f64 - c.mean_mem_gib()).abs() < 0.15);
    }
}
