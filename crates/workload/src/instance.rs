//! A concrete VM in a workload: spec + behaviour + lifetime.

use serde::{Deserialize, Serialize};

use slackvm_model::{VmId, VmSpec};

use crate::usage::{CpuUsageModel, UsageClass};

/// One generated VM: what was purchased, how it behaves, and when it
/// arrives and departs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmInstance {
    /// Workload-unique identifier.
    pub id: VmId,
    /// The purchased size and oversubscription tier.
    pub spec: VmSpec,
    /// Behavioural class (idle / stress / interactive).
    pub class: UsageClass,
    /// The CPU-demand model.
    pub usage: CpuUsageModel,
    /// Per-VM seed for deterministic demand sampling.
    pub seed: u64,
    /// Arrival time (seconds since workload start).
    pub arrival_secs: u64,
    /// Departure time (seconds since workload start), strictly after
    /// arrival.
    pub departure_secs: u64,
}

impl VmInstance {
    /// Lifetime in seconds.
    pub fn lifetime_secs(&self) -> u64 {
        self.departure_secs - self.arrival_secs
    }

    /// Whether the VM is alive at `t` (arrival inclusive, departure
    /// exclusive).
    pub fn alive_at(&self, t_secs: u64) -> bool {
        (self.arrival_secs..self.departure_secs).contains(&t_secs)
    }

    /// CPU demand at `t`, in fractional vCPUs (`utilization × vcpus`).
    /// Zero when the VM is not alive.
    pub fn cpu_demand_vcpus(&self, t_secs: u64) -> f64 {
        if !self.alive_at(t_secs) {
            return 0.0;
        }
        self.usage.utilization(self.seed, t_secs) * self.spec.vcpus() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::{gib, OversubLevel};

    fn demo() -> VmInstance {
        VmInstance {
            id: VmId(7),
            spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
            class: UsageClass::Stress,
            usage: CpuUsageModel::for_class(UsageClass::Stress, 7),
            seed: 7,
            arrival_secs: 100,
            departure_secs: 500,
        }
    }

    #[test]
    fn lifetime_and_liveness() {
        let vm = demo();
        assert_eq!(vm.lifetime_secs(), 400);
        assert!(!vm.alive_at(99));
        assert!(vm.alive_at(100));
        assert!(vm.alive_at(499));
        assert!(!vm.alive_at(500));
    }

    #[test]
    fn demand_is_zero_outside_lifetime_scaled_inside() {
        let vm = demo();
        assert_eq!(vm.cpu_demand_vcpus(0), 0.0);
        let d = vm.cpu_demand_vcpus(200);
        // Stress model: ~0.9 utilization on 2 vCPUs.
        assert!(d > 1.6 && d <= 2.0, "demand {d}");
    }

    #[test]
    fn serde_roundtrip() {
        let vm = demo();
        let json = serde_json::to_string(&vm).unwrap();
        let back: VmInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(vm, back);
    }
}
