//! Resize-event injection: vertical-scaling churn on top of a trace.
//!
//! The paper's protocol only creates and destroys VMs; real fleets also
//! *resize* them. This transform decorates an existing trace with resize
//! events — each selected VM changes size once, midway through its
//! lifetime — keeping the trace valid and deterministic.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::catalog::Catalog;
use crate::trace::{Workload, WorkloadEvent};

/// Returns a copy of `workload` where roughly `fraction` of the VMs
/// resize once, at the midpoint of their lifetime, to another flavor of
/// their tier's catalog.
///
/// Deterministic in `(workload, catalog, fraction, seed)`. The result
/// still passes [`Workload::validate`].
pub fn inject_resizes(
    workload: &Workload,
    catalog: &Catalog,
    fraction: f64,
    seed: u64,
) -> Workload {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut events = workload.events.clone();
    for vm in workload.instances() {
        if rng.gen::<f64>() >= fraction {
            continue;
        }
        let lifetime = vm.lifetime_secs();
        if lifetime < 120 {
            continue; // too short to bother resizing
        }
        let at = vm.arrival_secs + lifetime / 2;
        let flavor = catalog.sample_for_level(&mut rng, vm.spec.level);
        events.push((
            at,
            WorkloadEvent::Resize {
                id: vm.id,
                vcpus: flavor.request.vcpus,
                mem_mib: flavor.request.mem_mib,
            },
        ));
    }
    // Keep the departure-before-arrival ordering at equal instants;
    // resizes sort between them (enum order: Departure first via the
    // explicit key below).
    events.sort_by_key(|(t, e)| {
        let class = match e {
            WorkloadEvent::Departure { .. } => 0u8,
            WorkloadEvent::Resize { .. } => 1,
            WorkloadEvent::Arrival(_) => 2,
        };
        (*t, class)
    });
    Workload { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalModel;
    use crate::catalog;
    use crate::mix::LevelMix;
    use crate::trace::{WorkloadGenerator, WorkloadSpec};
    use slackvm_model::gib;

    fn base_trace(seed: u64) -> Workload {
        WorkloadGenerator::new(WorkloadSpec {
            catalog: catalog::azure(),
            mix: LevelMix::three_level(1.0, 1.0, 1.0).unwrap(),
            arrivals: ArrivalModel::constant(80, 86_400, 3 * 86_400),
            seed,
        })
        .generate()
    }

    #[test]
    fn injected_traces_stay_valid() {
        let base = base_trace(1);
        let resized = inject_resizes(&base, &catalog::azure(), 0.4, 7);
        resized.validate().expect("resized trace is valid");
        let resizes = resized
            .events
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Resize { .. }))
            .count();
        let arrivals = base.num_arrivals();
        // ~40% of VMs resize (binomial noise allowed).
        assert!(
            (resizes as f64) > arrivals as f64 * 0.25 && (resizes as f64) < arrivals as f64 * 0.55,
            "{resizes} resizes over {arrivals} arrivals"
        );
        // Arrival/departure structure untouched.
        assert_eq!(resized.num_arrivals(), arrivals);
        assert_eq!(resized.peak_population(), base.peak_population());
    }

    #[test]
    fn fraction_zero_is_identity_and_one_is_everyone() {
        let base = base_trace(2);
        assert_eq!(inject_resizes(&base, &catalog::azure(), 0.0, 1), base);
        let all = inject_resizes(&base, &catalog::azure(), 1.0, 1);
        let resizes = all
            .events
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Resize { .. }))
            .count();
        // Every VM with a non-trivial lifetime resizes exactly once.
        let eligible = base
            .instances()
            .filter(|vm| vm.lifetime_secs() >= 120)
            .count();
        assert_eq!(resizes, eligible);
    }

    #[test]
    fn resizes_respect_the_tier_catalog() {
        let base = base_trace(3);
        let resized = inject_resizes(&base, &catalog::azure(), 1.0, 2);
        let level_of: std::collections::BTreeMap<_, _> =
            base.instances().map(|vm| (vm.id, vm.spec.level)).collect();
        for (_, event) in &resized.events {
            if let WorkloadEvent::Resize { id, mem_mib, .. } = event {
                if !level_of[id].is_premium() {
                    assert!(*mem_mib <= gib(8), "oversubscribed resize too large");
                }
            }
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let base = base_trace(4);
        let a = inject_resizes(&base, &catalog::azure(), 0.3, 9);
        let b = inject_resizes(&base, &catalog::azure(), 0.3, 9);
        assert_eq!(a, b);
        let c = inject_resizes(&base, &catalog::azure(), 0.3, 10);
        assert_ne!(a, c);
    }
}
