//! The two deployment models under comparison.

use std::collections::BTreeMap;
use std::sync::Arc;

use slackvm_hypervisor::{Host, PhysicalMachine, PinChurn, UniformMachine};
use slackvm_model::{AllocView, OversubLevel, PmConfig, PmId, VmId, VmSpec};
use slackvm_sched::vcluster::VClusterMember;
use slackvm_sched::{CompositeScorer, IndexMode, PlacementPolicy, ProgressScorer, VCluster};
use slackvm_topology::{CpuTopology, DistanceMatrix, SelectionPolicy, TopologySelection};

use crate::cluster::Cluster;
use crate::error::SimError;
use crate::state::{ClusterState, ModelState, PlacementRecord};

/// Captures a cluster's logical state: provisioned size plus every
/// live placement in host order.
fn capture_cluster<H: Host>(cluster: &Cluster<H>) -> ClusterState {
    let mut placements = Vec::with_capacity(cluster.num_vms());
    for host in cluster.hosts() {
        let pm = host.id();
        placements.extend(
            host.placements()
                .into_iter()
                .map(|(vm, spec)| PlacementRecord { vm, spec, pm }),
        );
    }
    ClusterState {
        opened: cluster.opened(),
        placements,
        failed: cluster.failed_ids(),
    }
}

/// Restores a captured cluster state onto a freshly built (empty)
/// cluster via directed placements, then reopens emptied hosts so the
/// provisioned size matches, and re-marks the captured failed set so
/// a snapshot taken mid-outage keeps those hosts out of service.
fn restore_cluster<H: Host>(cluster: &mut Cluster<H>, state: &ClusterState) -> Result<(), String> {
    for p in &state.placements {
        cluster
            .restore_placement(p.vm, p.spec, p.pm)
            .map_err(|e| format!("restoring {} onto pm {}: {e}", p.vm, p.pm.0))?;
    }
    if !cluster.ensure_opened(state.opened) {
        return Err(format!(
            "captured state provisions {} hosts but the cluster is capped below that",
            state.opened
        ));
    }
    for pm in &state.failed {
        cluster.mark_failed(*pm);
    }
    Ok(())
}

/// A deployment model: where VMs of each level may land and how targets
/// are chosen.
pub enum DeploymentModel {
    /// One isolated, single-level cluster per oversubscription tier —
    /// the conventional architecture the paper baselines against.
    Dedicated(DedicatedDeployment),
    /// One shared pool of partitioned SlackVM workers.
    Shared(SharedDeployment),
}

impl DeploymentModel {
    /// Places a VM.
    pub fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<PmId, SimError> {
        match self {
            DeploymentModel::Dedicated(d) => d.deploy(id, spec),
            DeploymentModel::Shared(s) => s.deploy(id, spec),
        }
    }

    /// [`DeploymentModel::deploy`] with telemetry: scoring-loop spans,
    /// `PmOpened`, and (on the shared pool) vNode lifecycle events, all
    /// stamped with `time_secs`.
    pub fn deploy_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        spec: VmSpec,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        match self {
            DeploymentModel::Dedicated(d) => d.deploy_recorded(id, spec, time_secs, recorder),
            DeploymentModel::Shared(s) => s.deploy_recorded(id, spec, time_secs, recorder),
        }
    }

    /// Removes a VM.
    pub fn remove(&mut self, id: VmId) -> Result<PmId, SimError> {
        match self {
            DeploymentModel::Dedicated(d) => d.remove(id),
            DeploymentModel::Shared(s) => s.remove(id),
        }
    }

    /// [`DeploymentModel::remove`] with telemetry (vNode shrink /
    /// dissolution on the shared pool).
    pub fn remove_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        match self {
            DeploymentModel::Dedicated(d) => d.remove(id),
            DeploymentModel::Shared(s) => s.remove_recorded(id, time_secs, recorder),
        }
    }

    /// Vertically resizes a hosted VM in place. Fails (without side
    /// effects) when the hosting machine cannot absorb the new size —
    /// control planes surface that as a rejected resize request.
    pub fn resize(&mut self, id: VmId, vcpus: u32, mem_mib: u64) -> Result<(), SimError> {
        match self {
            DeploymentModel::Dedicated(d) => d.resize(id, vcpus, mem_mib),
            DeploymentModel::Shared(s) => s.resize(id, vcpus, mem_mib),
        }
    }

    /// [`DeploymentModel::resize`] with telemetry (vNode grow / shrink
    /// on the shared pool).
    pub fn resize_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        vcpus: u32,
        mem_mib: u64,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<(), SimError> {
        match self {
            DeploymentModel::Dedicated(d) => d.resize(id, vcpus, mem_mib),
            DeploymentModel::Shared(s) => {
                s.resize_recorded(id, vcpus, mem_mib, time_secs, recorder)
            }
        }
    }

    /// Total PMs opened across all (sub)clusters.
    pub fn opened_pms(&self) -> u32 {
        match self {
            DeploymentModel::Dedicated(d) => d.opened_pms(),
            DeploymentModel::Shared(s) => s.cluster.opened(),
        }
    }

    /// PMs currently hosting at least one VM across all (sub)clusters —
    /// the quantity background consolidation tries to shrink (opened
    /// counts never go down; active counts do when a PM is drained).
    pub fn active_pms(&self) -> u32 {
        match self {
            DeploymentModel::Dedicated(d) => d.active_pms(),
            DeploymentModel::Shared(s) => s.cluster.active(),
        }
    }

    /// Cluster-wide allocation and capacity over opened PMs.
    pub fn totals(&self) -> (AllocView, AllocView) {
        match self {
            DeploymentModel::Dedicated(d) => d.totals(),
            DeploymentModel::Shared(s) => (s.cluster.total_alloc(), s.cluster.total_capacity()),
        }
    }

    /// Model label for reports.
    pub fn name(&self) -> String {
        match self {
            DeploymentModel::Dedicated(_) => "dedicated/first-fit".to_string(),
            DeploymentModel::Shared(s) => format!("slackvm/{}", s.policy.name()),
        }
    }

    /// A point-in-time snapshot of the cluster observables (utilization,
    /// fragmentation, per-level width, Algorithm-2 M/C deviation).
    pub fn observables(&self) -> crate::observe::ClusterObservables {
        match self {
            DeploymentModel::Dedicated(d) => d.observables(),
            DeploymentModel::Shared(s) => s.observables(),
        }
    }

    /// Selects how deploy-time candidate sets are assembled on every
    /// (sub)cluster: the naive full rebuild or the incremental placement
    /// index (see [`slackvm_sched::index`]).
    pub fn set_index_mode(&mut self, mode: IndexMode) {
        match self {
            DeploymentModel::Dedicated(d) => d.set_index_mode(mode),
            DeploymentModel::Shared(s) => s.cluster.set_index_mode(mode),
        }
    }

    /// Builder form of [`DeploymentModel::set_index_mode`].
    pub fn with_index_mode(mut self, mode: IndexMode) -> Self {
        self.set_index_mode(mode);
        self
    }

    /// The candidate-assembly mode in use.
    pub fn index_mode(&self) -> IndexMode {
        match self {
            DeploymentModel::Dedicated(d) => d.index_mode,
            DeploymentModel::Shared(s) => s.cluster.index_mode(),
        }
    }

    /// Audits every opened host's internal invariants (capacity bounds,
    /// pin accounting, vNode bookkeeping). An error names the first
    /// violating host — the safety net concurrency and soak tests lean
    /// on after hammering a deployment.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            DeploymentModel::Dedicated(d) => d.check_invariants(),
            DeploymentModel::Shared(s) => s.check_invariants(),
        }
    }

    /// Captures the model's logical state — provisioned sizes and live
    /// placements — as a serializable [`ModelState`] (the snapshot body
    /// of the durability layer).
    pub fn capture_state(&self) -> ModelState {
        match self {
            DeploymentModel::Shared(s) => ModelState::Shared(capture_cluster(&s.cluster)),
            DeploymentModel::Dedicated(d) => ModelState::Dedicated(
                d.clusters
                    .iter()
                    .map(|(level, c)| (*level, capture_cluster(c)))
                    .collect(),
            ),
        }
    }

    /// Restores a captured state onto this *freshly built, empty* model
    /// (same config as the captured one). Placements are replayed as
    /// directed deployments; the model-kind of `state` must match.
    pub fn restore_state(&mut self, state: &ModelState) -> Result<(), String> {
        match (self, state) {
            (DeploymentModel::Shared(s), ModelState::Shared(cs)) => s.restore_state(cs),
            (DeploymentModel::Dedicated(d), ModelState::Dedicated(levels)) => {
                d.restore_state(levels)
            }
            (DeploymentModel::Shared(_), ModelState::Dedicated(_)) => {
                Err("state captures a dedicated model, restore target is shared".into())
            }
            (DeploymentModel::Dedicated(_), ModelState::Shared(_)) => {
                Err("state captures a shared model, restore target is dedicated".into())
            }
        }
    }

    /// Fails a host: it stops accepting deployments and every hosted VM
    /// is evicted and returned, for the caller to re-place or declare
    /// lost. On the dedicated baseline, PM ids are per-level, so the
    /// same id fails across every configured sub-cluster. Idempotent.
    pub fn fail_host(&mut self, pm: PmId) -> Vec<(VmId, VmSpec)> {
        match self {
            DeploymentModel::Shared(s) => s.fail_host(pm),
            DeploymentModel::Dedicated(d) => d.fail_host(pm),
        }
    }

    /// Returns a failed host to service (e.g. after repair).
    pub fn repair_host(&mut self, pm: PmId) {
        match self {
            DeploymentModel::Shared(s) => s.repair_host(pm),
            DeploymentModel::Dedicated(d) => d.repair_host(pm),
        }
    }

    /// Number of hosts currently failed (summed across sub-clusters on
    /// the dedicated baseline).
    pub fn failed_pms(&self) -> u32 {
        match self {
            DeploymentModel::Shared(s) => s.cluster.failed_count(),
            DeploymentModel::Dedicated(d) => {
                d.clusters.values().map(|c| c.failed_count()).sum()
            }
        }
    }

    /// Where a VM currently lives. On the dedicated baseline PM ids are
    /// per-level, so the returned id is scoped to the sub-cluster of the
    /// VM's level.
    pub fn location_of(&self, id: VmId) -> Option<PmId> {
        match self {
            DeploymentModel::Shared(s) => s.cluster.location_of(id),
            DeploymentModel::Dedicated(d) => d.location_of(id),
        }
    }

    /// Moves a VM to a specific PM — the migration primitive the
    /// consolidation plane executes. Returns the source PM on success;
    /// on failure the VM stays where it was (no side effects). On the
    /// dedicated baseline the move is scoped to the VM's own level
    /// sub-cluster (PM ids are per-level).
    pub fn migrate(&mut self, id: VmId, to: PmId) -> Result<PmId, SimError> {
        match self {
            DeploymentModel::Shared(s) => s.migrate_vm(id, to),
            DeploymentModel::Dedicated(d) => d.migrate_vm(id, to),
        }
    }

    /// Places a VM on the *specific* PM a previous run chose — the
    /// directed primitive WAL-tail replay uses (never re-decides).
    pub fn restore_placement(&mut self, id: VmId, spec: VmSpec, pm: PmId) -> Result<(), SimError> {
        match self {
            DeploymentModel::Shared(s) => {
                s.cluster.restore_placement(id, spec, pm)?;
                s.refresh_vcluster_recorded(
                    pm,
                    spec.level,
                    0,
                    &mut slackvm_telemetry::NullRecorder,
                );
                Ok(())
            }
            DeploymentModel::Dedicated(d) => d.restore_placement(id, spec, pm),
        }
    }
}

/// The baseline: per-level clusters of [`UniformMachine`]s, each placed
/// by First-Fit.
pub struct DedicatedDeployment {
    clusters: BTreeMap<OversubLevel, Cluster<UniformMachine>>,
    config: PmConfig,
    policy: PlacementPolicy,
    index_mode: IndexMode,
}

impl DedicatedDeployment {
    /// Builds the baseline for a set of levels with identical hardware.
    pub fn new(config: PmConfig, levels: impl IntoIterator<Item = OversubLevel>) -> Self {
        let mut clusters = BTreeMap::new();
        for level in levels {
            clusters.insert(
                level,
                Cluster::new(move |id| UniformMachine::new(id, config, level)),
            );
        }
        DedicatedDeployment {
            clusters,
            config,
            policy: PlacementPolicy::FirstFit,
            index_mode: IndexMode::default(),
        }
    }

    /// Selects the candidate-assembly mode on every per-level cluster,
    /// including ones opened lazily later.
    pub fn set_index_mode(&mut self, mode: IndexMode) {
        self.index_mode = mode;
        for cluster in self.clusters.values_mut() {
            cluster.set_index_mode(mode);
        }
    }

    /// The per-level cluster, if that level was configured.
    pub fn cluster(&self, level: OversubLevel) -> Option<&Cluster<UniformMachine>> {
        self.clusters.get(&level)
    }

    /// PMs opened per level, for the paper's per-cluster breakdowns
    /// ("83 PMs: 55 for the 1:1 cluster and 28 for the 3:1 cluster").
    pub fn opened_per_level(&self) -> BTreeMap<OversubLevel, u32> {
        self.clusters
            .iter()
            .map(|(level, c)| (*level, c.opened()))
            .collect()
    }

    fn opened_pms(&self) -> u32 {
        self.clusters.values().map(|c| c.opened()).sum()
    }

    /// PMs hosting at least one VM, summed over the per-level clusters.
    pub fn active_pms(&self) -> u32 {
        self.clusters.values().map(|c| c.active()).sum()
    }

    /// The configured levels with their clusters, ascending by level —
    /// the per-level walk the consolidation planner drains each
    /// dedicated sub-cluster with.
    pub fn clusters(&self) -> impl Iterator<Item = (OversubLevel, &Cluster<UniformMachine>)> {
        self.clusters.iter().map(|(level, c)| (*level, c))
    }

    /// Cluster observables; the per-level "width" of the baseline is the
    /// physical cores allocated inside each dedicated sub-cluster (the
    /// quantity a shared pool carves into vNodes instead).
    pub fn observables(&self) -> crate::observe::ClusterObservables {
        let alive: u64 = self.clusters.values().map(|c| c.num_vms() as u64).sum();
        let mut obs =
            crate::observe::observe_hosts(self.clusters.values().flat_map(|c| c.hosts()), alive);
        for (level, cluster) in &self.clusters {
            obs.level_width_cores
                .insert(level.ratio(), cluster.total_alloc().cpu.as_cores_f64());
        }
        obs
    }

    fn totals(&self) -> (AllocView, AllocView) {
        let mut alloc = AllocView::EMPTY;
        let mut cap = AllocView::EMPTY;
        for c in self.clusters.values() {
            let a = c.total_alloc();
            let k = c.total_capacity();
            alloc = AllocView::new(alloc.cpu + a.cpu, alloc.mem_mib + a.mem_mib);
            cap = AllocView::new(cap.cpu + k.cpu, cap.mem_mib + k.mem_mib);
        }
        (alloc, cap)
    }

    fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<PmId, SimError> {
        let cluster = self.clusters.entry(spec.level).or_insert_with(|| {
            let config = self.config;
            let level = spec.level;
            Cluster::new(move |id| UniformMachine::new(id, config, level))
                .with_index_mode(self.index_mode)
        });
        cluster.deploy(id, spec, &self.policy)
    }

    fn deploy_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        spec: VmSpec,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        let cluster = self.clusters.entry(spec.level).or_insert_with(|| {
            let config = self.config;
            let level = spec.level;
            Cluster::new(move |id| UniformMachine::new(id, config, level))
                .with_index_mode(self.index_mode)
        });
        cluster.deploy_recorded(id, spec, &self.policy, time_secs, recorder)
    }

    fn remove(&mut self, id: VmId) -> Result<PmId, SimError> {
        for cluster in self.clusters.values_mut() {
            if cluster.location_of(id).is_some() {
                return cluster.remove(id);
            }
        }
        Err(SimError::UnknownVm(id))
    }

    /// Vertically resizes a hosted VM on whatever machine hosts it.
    pub fn resize(&mut self, id: VmId, vcpus: u32, mem_mib: u64) -> Result<(), SimError> {
        for cluster in self.clusters.values_mut() {
            if cluster.location_of(id).is_some() {
                // Through the cluster, not hosts_mut(): keeps the
                // placement index dirty-tracked instead of invalidated.
                return cluster.resize_vm(id, vcpus, mem_mib).map(|_| ());
            }
        }
        Err(SimError::UnknownVm(id))
    }

    /// Where a VM lives (a per-level PM id — the baseline scopes ids to
    /// each sub-cluster).
    pub fn location_of(&self, id: VmId) -> Option<PmId> {
        self.clusters.values().find_map(|c| c.location_of(id))
    }

    /// Moves a VM to `to` inside its own level's sub-cluster, returning
    /// the source PM. Fails without side effects when the VM is unknown
    /// or the destination cannot take it.
    pub fn migrate_vm(&mut self, id: VmId, to: PmId) -> Result<PmId, SimError> {
        for cluster in self.clusters.values_mut() {
            if let Some(from) = cluster.location_of(id) {
                cluster.migrate(id, to)?;
                return Ok(from);
            }
        }
        Err(SimError::UnknownVm(id))
    }

    /// Fails `pm` across every configured sub-cluster (PM ids are
    /// per-level on the baseline), returning the evictions in level
    /// order. Idempotent per sub-cluster.
    pub fn fail_host(&mut self, pm: PmId) -> Vec<(VmId, VmSpec)> {
        let mut evicted = Vec::new();
        for cluster in self.clusters.values_mut() {
            evicted.extend(cluster.fail_host(pm));
        }
        evicted
    }

    /// Returns `pm` to service in every sub-cluster.
    pub fn repair_host(&mut self, pm: PmId) {
        for cluster in self.clusters.values_mut() {
            cluster.repair_host(pm);
        }
    }

    /// The per-level cluster for `level`, created lazily with the
    /// deployment's config and index mode.
    fn cluster_entry(&mut self, level: OversubLevel) -> &mut Cluster<UniformMachine> {
        let config = self.config;
        let index_mode = self.index_mode;
        self.clusters.entry(level).or_insert_with(|| {
            Cluster::new(move |id| UniformMachine::new(id, config, level))
                .with_index_mode(index_mode)
        })
    }

    /// Directed placement onto a specific PM of the level's sub-cluster
    /// (see [`DeploymentModel::restore_placement`]).
    pub fn restore_placement(&mut self, id: VmId, spec: VmSpec, pm: PmId) -> Result<(), SimError> {
        self.cluster_entry(spec.level)
            .restore_placement(id, spec, pm)
    }

    /// Restores captured per-level states onto this freshly built,
    /// empty baseline.
    pub fn restore_state(&mut self, levels: &[(OversubLevel, ClusterState)]) -> Result<(), String> {
        for (level, state) in levels {
            restore_cluster(self.cluster_entry(*level), state)
                .map_err(|e| format!("level {level}: {e}"))?;
        }
        Ok(())
    }

    /// Audits every opened machine: allocations must stay within the
    /// hardware capacity of each per-level cluster.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (level, cluster) in &self.clusters {
            for host in cluster.hosts() {
                let alloc = host.alloc();
                let config = host.config();
                if alloc.cpu > config.cpu_capacity() {
                    return Err(format!(
                        "pm {} ({level}): cpu alloc {:?} exceeds capacity {:?}",
                        host.id().0,
                        alloc.cpu,
                        config.cpu_capacity()
                    ));
                }
                if alloc.mem_mib > config.mem_mib {
                    return Err(format!(
                        "pm {} ({level}): mem alloc {} MiB exceeds capacity {} MiB",
                        host.id().0,
                        alloc.mem_mib,
                        config.mem_mib
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The SlackVM architecture: one shared pool of partitioned workers; all
/// levels coexist; targets picked by a configurable policy (the paper's
/// progress scorer by default); vClusters kept as per-level views.
pub struct SharedDeployment {
    /// The shared pool.
    pub cluster: Cluster<PhysicalMachine>,
    /// Placement policy (progress scorer unless overridden).
    pub policy: PlacementPolicy,
    vclusters: BTreeMap<OversubLevel, VCluster>,
}

pub use slackvm_sched::DEFAULT_CONSOLIDATION_WEIGHT;

impl SharedDeployment {
    /// Builds a shared pool whose workers expose `topology` and
    /// `mem_mib`, scored by the paper's progress metric with the default
    /// consolidation tiebreak, and topology-driven core selection.
    pub fn new(topology: Arc<CpuTopology>, mem_mib: u64) -> Self {
        Self::with_policy(
            topology,
            mem_mib,
            PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(
                DEFAULT_CONSOLIDATION_WEIGHT,
            )),
        )
    }

    /// Builds a shared pool scored by the *pure* Algorithm 2 progress
    /// metric (no consolidation term) — the paper-exact scorer, kept for
    /// the ablation studies.
    pub fn paper_pure(topology: Arc<CpuTopology>, mem_mib: u64) -> Self {
        Self::with_policy(
            topology,
            mem_mib,
            PlacementPolicy::scored(ProgressScorer::paper()),
        )
    }

    /// Builds a *heterogeneous* shared pool: newly-opened workers cycle
    /// through `shapes` (`(topology, mem_mib)` pairs). Algorithm 2
    /// computes each machine's target ratio individually, so mixed
    /// hardware generations share one pool — the paper's "heterogeneous
    /// hardware" consideration (§VI) as a first-class deployment.
    pub fn heterogeneous(shapes: Vec<(Arc<CpuTopology>, u64)>, policy: PlacementPolicy) -> Self {
        assert!(!shapes.is_empty(), "at least one worker shape required");
        let selections: Vec<Arc<dyn SelectionPolicy + Send + Sync>> = shapes
            .iter()
            .map(|(topology, _)| {
                Arc::new(TopologySelection::new(DistanceMatrix::build(topology)))
                    as Arc<dyn SelectionPolicy + Send + Sync>
            })
            .collect();
        let factory = move |id: PmId| {
            let i = id.0 as usize % shapes.len();
            let (topology, mem_mib) = &shapes[i];
            PhysicalMachine::new(
                id,
                Arc::clone(topology),
                *mem_mib,
                Arc::clone(&selections[i]),
            )
        };
        SharedDeployment {
            cluster: Cluster::new(factory),
            policy,
            vclusters: BTreeMap::new(),
        }
    }

    /// Builds a shared pool capped at `max_hosts` workers, for
    /// rejection-path testing and capacity-planning what-ifs.
    pub fn with_capped_cluster(topology: Arc<CpuTopology>, mem_mib: u64, max_hosts: u32) -> Self {
        let mut pool = Self::new(topology, mem_mib);
        pool.cluster = std::mem::replace(
            &mut pool.cluster,
            Cluster::new(|_| unreachable!("replaced immediately")),
        )
        .with_max_hosts(max_hosts);
        pool
    }

    /// Builds a shared pool with an explicit placement policy.
    pub fn with_policy(topology: Arc<CpuTopology>, mem_mib: u64, policy: PlacementPolicy) -> Self {
        // One distance matrix + selection policy shared by every worker.
        let selection: Arc<dyn SelectionPolicy + Send + Sync> =
            Arc::new(TopologySelection::new(DistanceMatrix::build(&topology)));
        let factory = move |id: PmId| {
            PhysicalMachine::new(id, Arc::clone(&topology), mem_mib, Arc::clone(&selection))
        };
        SharedDeployment {
            cluster: Cluster::new(factory),
            policy,
            vclusters: BTreeMap::new(),
        }
    }

    /// The vCluster view for a level, if any VM of that level is (or
    /// was) hosted.
    pub fn vcluster(&self, level: OversubLevel) -> Option<&VCluster> {
        self.vclusters.get(&level)
    }

    /// Fails a worker: evicts and returns its VMs, refreshing the
    /// vCluster views. The worker stays opened but out of service.
    pub fn fail_host(&mut self, pm: PmId) -> Vec<(VmId, VmSpec)> {
        self.fail_host_recorded(pm, 0, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`SharedDeployment::fail_host`] with telemetry: journals a
    /// `HostFailed` event (with the eviction count) plus one `VmEvicted`
    /// per displaced VM at `time_secs`. Re-placement outcomes belong to
    /// the caller, which journals `VmReplaced` / `VmLost`.
    pub fn fail_host_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        pm: PmId,
        time_secs: u64,
        recorder: &mut R,
    ) -> Vec<(VmId, VmSpec)> {
        let evicted = self.cluster.fail_host(pm);
        if recorder.enabled() {
            use slackvm_telemetry::Event;
            recorder.record(
                time_secs,
                Event::HostFailed {
                    pm,
                    evicted: evicted.len() as u32,
                },
            );
            for (id, _) in &evicted {
                recorder.record(time_secs, Event::VmEvicted { vm: *id, pm });
            }
        }
        let levels: std::collections::BTreeSet<OversubLevel> =
            evicted.iter().map(|(_, spec)| spec.level).collect();
        for level in levels {
            self.refresh_vcluster_recorded(pm, level, time_secs, recorder);
        }
        evicted
    }

    /// Returns a failed worker to service (e.g. after repair).
    pub fn repair_host(&mut self, pm: PmId) {
        self.cluster.repair_host(pm);
    }

    /// Cluster observables; the per-level width is the total vNode cores
    /// currently dedicated to each oversubscription level across the pool.
    pub fn observables(&self) -> crate::observe::ClusterObservables {
        let mut obs = crate::observe::observe_hosts(
            self.cluster.hosts().iter(),
            self.cluster.num_vms() as u64,
        );
        let mut widths: BTreeMap<u32, f64> = BTreeMap::new();
        for host in self.cluster.hosts() {
            for vnode in host.vnodes() {
                if vnode.num_vms() > 0 {
                    *widths.entry(vnode.level().ratio()).or_insert(0.0) += vnode.num_cores() as f64;
                }
            }
        }
        obs.level_width_cores = widths;
        obs
    }

    /// Audits every opened worker's full hypervisor invariants (core
    /// pinning, vNode spans, capacity bounds) via
    /// [`PhysicalMachine::check_invariants`].
    pub fn check_invariants(&self) -> Result<(), String> {
        for host in self.cluster.hosts() {
            host.check_invariants()
                .map_err(|e| format!("pm {}: {e}", host.id().0))?;
        }
        Ok(())
    }

    /// Aggregated pin churn across all workers.
    pub fn total_churn(&self) -> PinChurn {
        let mut total = PinChurn::default();
        for host in self.cluster.hosts() {
            total.merge(host.churn());
        }
        total
    }

    /// Vertically resizes a hosted VM in place, refreshing the vCluster
    /// view. Fails without side effects when the hosting worker cannot
    /// absorb the new size.
    pub fn resize(&mut self, id: VmId, vcpus: u32, mem_mib: u64) -> Result<(), SimError> {
        self.resize_recorded(id, vcpus, mem_mib, 0, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`SharedDeployment::resize`] with telemetry: the vNode grow or
    /// shrink an accepted resize triggers is journalled at `time_secs`
    /// (the `VmResized` outcome event belongs to the engine, which also
    /// sees rejected resizes).
    pub fn resize_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        vcpus: u32,
        mem_mib: u64,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<(), SimError> {
        let pm = self
            .cluster
            .location_of(id)
            .ok_or(SimError::UnknownVm(id))?;
        let level = self
            .cluster
            .hosts()
            .iter()
            .find(|h| h.id() == pm)
            .and_then(|h| h.level_of(id))
            .expect("placement is consistent");
        // Through the cluster, not hosts_mut(): keeps the placement
        // index dirty-tracked instead of invalidated.
        self.cluster.resize_vm(id, vcpus, mem_mib)?;
        self.refresh_vcluster_recorded(pm, level, time_secs, recorder);
        Ok(())
    }

    /// Executes one compaction round (the paper's future-work live
    /// migration, made concrete): plans over current snapshots, applies
    /// every move, and returns `(migrations, drained PMs)`. Moves whose
    /// destination meanwhile cannot take the VM are skipped — the plan
    /// is advisory, the cluster state is authoritative.
    pub fn compact_now(&mut self) -> (u32, u32) {
        self.compact_now_recorded(0, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`SharedDeployment::compact_now`] with telemetry: the planning
    /// pass is timed and journalled (one `CompactionPlanned` plus a
    /// `CompactionMove` per planned migration) at `time_secs`, and the
    /// vNode resizes of applied moves are journalled as they land.
    pub fn compact_now_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        time_secs: u64,
        recorder: &mut R,
    ) -> (u32, u32) {
        // Failed workers are out of service: their (evicted) snapshots
        // must not enter the plan as sources, and moves onto them would
        // be silently refused by `migrate` — keep them out entirely.
        let snapshots: Vec<slackvm_hypervisor::MachineSnapshot> = self
            .cluster
            .hosts()
            .iter()
            .filter(|h| !self.cluster.is_failed(h.id()))
            .map(|h| h.snapshot())
            .collect();
        let plan = slackvm_hypervisor::plan_compaction_recorded(&snapshots, time_secs, recorder);
        let mut migrations = 0u32;
        for mv in &plan.moves {
            // The planner may chain a VM through several hops; apply a
            // move only when the VM is still where the plan expects it.
            if self.cluster.location_of(mv.vm) != Some(mv.from) {
                continue;
            }
            let level = self
                .cluster
                .hosts()
                .iter()
                .find(|h| h.id() == mv.from)
                .and_then(|h| h.level_of(mv.vm));
            if self.cluster.migrate(mv.vm, mv.to).is_ok() {
                migrations += 1;
                if let Some(level) = level {
                    self.refresh_vcluster_recorded(mv.from, level, time_secs, recorder);
                    self.refresh_vcluster_recorded(mv.to, level, time_secs, recorder);
                }
            }
        }
        let drained = self
            .cluster
            .hosts()
            .iter()
            .filter(|h| plan.releasable.contains(&h.id()) && h.is_idle())
            .count() as u32;
        (migrations, drained)
    }

    /// Refreshes one vCluster membership, journalling the vNode
    /// lifecycle transition the refresh reveals: created, grew, shrunk,
    /// or dissolved (the local scheduler resizes spans on every arrival
    /// and departure, paper §V).
    fn refresh_vcluster_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        pm: PmId,
        level: OversubLevel,
        time_secs: u64,
        recorder: &mut R,
    ) {
        let member = self
            .cluster
            .hosts()
            .iter()
            .find(|h| h.id() == pm)
            .and_then(|h| h.vnode(level))
            .map(|v| VClusterMember {
                cores: v.num_cores(),
                vcpus: v.total_vcpus(),
                mem_mib: v.total_mem_mib(),
                vms: v.num_vms(),
            })
            .unwrap_or_default();
        if recorder.enabled() {
            use slackvm_telemetry::Event;
            let old = self
                .vclusters
                .get(&level)
                .and_then(|vc| vc.member(pm))
                .copied()
                .unwrap_or_default();
            let n = level.ratio();
            if old.vms == 0 && member.vms > 0 {
                recorder.record(
                    time_secs,
                    Event::VNodeCreated {
                        pm,
                        level: n,
                        cores: member.cores,
                    },
                );
            } else if old.vms > 0 && member.vms == 0 {
                recorder.record(time_secs, Event::VNodeDissolved { pm, level: n });
            } else if member.cores > old.cores {
                recorder.record(
                    time_secs,
                    Event::VNodeGrew {
                        pm,
                        level: n,
                        cores_before: old.cores,
                        cores_after: member.cores,
                    },
                );
            } else if member.cores < old.cores {
                recorder.record(
                    time_secs,
                    Event::VNodeShrunk {
                        pm,
                        level: n,
                        cores_before: old.cores,
                        cores_after: member.cores,
                    },
                );
            }
        }
        self.vclusters
            .entry(level)
            .or_insert_with(|| VCluster::new(level))
            .update(pm, member);
    }

    /// Places a VM on the shared pool (public for direct driving in
    /// tests and tools; the engine goes through [`DeploymentModel`]).
    pub fn deploy(&mut self, id: VmId, spec: VmSpec) -> Result<PmId, SimError> {
        self.deploy_recorded(id, spec, 0, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`SharedDeployment::deploy`] with telemetry: the scheduler's
    /// scoring loop is timed, and PM-open plus vNode lifecycle events
    /// are journalled at `time_secs`.
    pub fn deploy_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        spec: VmSpec,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        let pm = self
            .cluster
            .deploy_recorded(id, spec, &self.policy, time_secs, recorder)?;
        self.refresh_vcluster_recorded(pm, spec.level, time_secs, recorder);
        Ok(pm)
    }

    /// Restores a captured pool state onto this freshly built, empty
    /// pool, then rebuilds the per-level vCluster views from the
    /// restored hosts.
    pub fn restore_state(&mut self, state: &ClusterState) -> Result<(), String> {
        restore_cluster(&mut self.cluster, state)?;
        let touched: std::collections::BTreeSet<(PmId, OversubLevel)> = state
            .placements
            .iter()
            .map(|p| (p.pm, p.spec.level))
            .collect();
        for (pm, level) in touched {
            self.refresh_vcluster_recorded(pm, level, 0, &mut slackvm_telemetry::NullRecorder);
        }
        Ok(())
    }

    /// Removes a VM from the shared pool.
    pub fn remove(&mut self, id: VmId) -> Result<PmId, SimError> {
        self.remove_recorded(id, 0, &mut slackvm_telemetry::NullRecorder)
    }

    /// Moves a VM to a specific worker, returning the source PM and
    /// refreshing the vCluster views at both endpoints. Fails without
    /// side effects when the VM is unknown or the destination cannot
    /// take it (including failed destinations).
    pub fn migrate_vm(&mut self, id: VmId, to: PmId) -> Result<PmId, SimError> {
        let from = self
            .cluster
            .location_of(id)
            .ok_or(SimError::UnknownVm(id))?;
        let level = self
            .cluster
            .hosts()
            .iter()
            .find(|h| h.id() == from)
            .and_then(|h| h.level_of(id))
            .expect("placement is consistent");
        self.cluster.migrate(id, to)?;
        if from != to {
            let recorder = &mut slackvm_telemetry::NullRecorder;
            self.refresh_vcluster_recorded(from, level, 0, recorder);
            self.refresh_vcluster_recorded(to, level, 0, recorder);
        }
        Ok(from)
    }

    /// [`SharedDeployment::remove`] with telemetry: the vNode shrink or
    /// dissolution the departure triggers is journalled at `time_secs`.
    pub fn remove_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        let level = self
            .cluster
            .location_of(id)
            .and_then(|pm| {
                self.cluster
                    .hosts()
                    .iter()
                    .find(|h| h.id() == pm)
                    .and_then(|h| h.level_of(id))
            })
            .ok_or(SimError::UnknownVm(id))?;
        let pm = self.cluster.remove(id)?;
        self.refresh_vcluster_recorded(pm, level, time_secs, recorder);
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;
    use slackvm_topology::builders;

    fn spec(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    fn levels() -> Vec<OversubLevel> {
        vec![
            OversubLevel::of(1),
            OversubLevel::of(2),
            OversubLevel::of(3),
        ]
    }

    #[test]
    fn dedicated_routes_by_level() {
        let mut d = DedicatedDeployment::new(PmConfig::simulation_host(), levels());
        d.deploy(VmId(0), spec(2, 4, 1)).unwrap();
        d.deploy(VmId(1), spec(2, 4, 3)).unwrap();
        assert_eq!(d.opened_pms(), 2);
        let per = d.opened_per_level();
        assert_eq!(per[&OversubLevel::of(1)], 1);
        assert_eq!(per[&OversubLevel::of(2)], 0);
        assert_eq!(per[&OversubLevel::of(3)], 1);
        d.remove(VmId(0)).unwrap();
        assert!(matches!(d.remove(VmId(0)), Err(SimError::UnknownVm(_))));
    }

    #[test]
    fn dedicated_opens_cluster_for_unconfigured_level() {
        let mut d = DedicatedDeployment::new(PmConfig::simulation_host(), vec![]);
        d.deploy(VmId(0), spec(2, 4, 2)).unwrap();
        assert_eq!(d.opened_pms(), 1);
    }

    #[test]
    fn shared_cohosts_levels_on_one_pm() {
        let mut s = SharedDeployment::new(Arc::new(builders::flat(32)), gib(128));
        let model_pm0 = s.deploy(VmId(0), spec(2, 4, 1)).unwrap();
        let pm1 = s.deploy(VmId(1), spec(2, 4, 3)).unwrap();
        assert_eq!(model_pm0, pm1, "both levels fit on the first worker");
        assert_eq!(s.cluster.opened(), 1);
        let vc3 = s.vcluster(OversubLevel::of(3)).unwrap();
        assert_eq!(vc3.total_vms(), 1);
        assert_eq!(vc3.total_cores(), 1);
    }

    #[test]
    fn shared_vcluster_tracks_departures() {
        let mut s = SharedDeployment::new(Arc::new(builders::flat(32)), gib(128));
        s.deploy(VmId(0), spec(3, 3, 3)).unwrap();
        s.deploy(VmId(1), spec(3, 3, 3)).unwrap();
        assert_eq!(s.vcluster(OversubLevel::of(3)).unwrap().total_vcpus(), 6);
        s.remove(VmId(0)).unwrap();
        assert_eq!(s.vcluster(OversubLevel::of(3)).unwrap().total_vcpus(), 3);
        s.remove(VmId(1)).unwrap();
        assert_eq!(s.vcluster(OversubLevel::of(3)).unwrap().num_members(), 0);
    }

    #[test]
    fn model_names() {
        let d = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            levels(),
        ));
        assert_eq!(d.name(), "dedicated/first-fit");
        let s = DeploymentModel::Shared(SharedDeployment::new(
            Arc::new(builders::flat(32)),
            gib(128),
        ));
        assert_eq!(s.name(), "slackvm/progress+bestfit");
    }

    #[test]
    fn heterogeneous_pool_cycles_shapes_and_targets() {
        use slackvm_sched::ProgressScorer;
        let shapes = vec![
            (Arc::new(builders::flat(48)), gib(96)),  // M/C 2
            (Arc::new(builders::flat(16)), gib(128)), // M/C 8
        ];
        let mut s = SharedDeployment::heterogeneous(
            shapes,
            PlacementPolicy::scored(ProgressScorer::paper()),
        );
        // Force two workers open with big premium VMs.
        s.deploy(VmId(0), spec(40, 40, 1)).unwrap();
        s.deploy(VmId(1), spec(12, 90, 1)).unwrap();
        let hosts = s.cluster.hosts();
        assert_eq!(hosts[0].config().cores, 48);
        assert_eq!(hosts[0].config().target_ratio().gib_per_core(), 2.0);
        assert_eq!(hosts[1].config().cores, 16);
        assert_eq!(hosts[1].config().target_ratio().gib_per_core(), 8.0);
        // The scorer routes a memory-heavy VM to the CPU-rich worker
        // only if it rebalances; here worker 0 hosts a CPU-heavy load
        // (ratio 1), so a memory-heavy VM improves it.
        let pm = s.deploy(VmId(2), spec(1, 16, 1)).unwrap();
        assert_eq!(pm, PmId(0));
        for host in s.cluster.hosts() {
            host.check_invariants().unwrap();
        }
    }

    #[test]
    fn shared_state_roundtrips_through_capture() {
        let mut s =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(builders::flat(8)), gib(32)));
        for i in 0..10u64 {
            s.deploy(
                VmId(i),
                spec(2 + (i % 3) as u32, 1 + i % 4, 1 + (i % 3) as u32),
            )
            .unwrap();
        }
        s.remove(VmId(4)).unwrap();
        s.resize(VmId(7), 1, gib(1)).unwrap();
        let state = s.capture_state();
        let mut restored =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(builders::flat(8)), gib(32)));
        restored.restore_state(&state).unwrap();
        restored.check_invariants().unwrap();
        assert_eq!(restored.capture_state().normalized(), state.normalized());
        assert_eq!(restored.opened_pms(), s.opened_pms());
        assert_eq!(restored.totals(), s.totals());
        // The restored pool keeps making the same decisions.
        let a = s.deploy(VmId(100), spec(2, 2, 1)).unwrap();
        let b = restored.deploy(VmId(100), spec(2, 2, 1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dedicated_state_roundtrips_through_capture() {
        let mut d = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            levels(),
        ));
        for i in 0..8u64 {
            d.deploy(VmId(i), spec(4, 4, 1 + (i % 3) as u32)).unwrap();
        }
        d.remove(VmId(2)).unwrap();
        let state = d.capture_state();
        let mut restored = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            levels(),
        ));
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.capture_state().normalized(), state.normalized());
        assert_eq!(restored.opened_pms(), d.opened_pms());
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restore_rejects_mismatched_model_kind() {
        let s =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(builders::flat(8)), gib(32)));
        let state = s.capture_state();
        let mut d = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            levels(),
        ));
        assert!(d.restore_state(&state).is_err());
    }

    #[test]
    fn restore_placement_is_directed() {
        let mut s =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(builders::flat(8)), gib(32)));
        // Force pm 1 open even though pm 0 would have been chosen.
        s.restore_placement(VmId(1), spec(2, 2, 1), PmId(1))
            .unwrap();
        assert_eq!(s.opened_pms(), 2);
        // A duplicate id is refused, not silently double-placed.
        assert!(s
            .restore_placement(VmId(1), spec(2, 2, 1), PmId(0))
            .is_err());
        s.check_invariants().unwrap();
    }

    #[test]
    fn model_migrate_moves_and_is_side_effect_free_on_failure() {
        // Shared pool: spread two workers, migrate back, vClusters track.
        let mut s =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(builders::flat(8)), gib(32)));
        s.deploy(VmId(0), spec(6, 6, 1)).unwrap();
        s.deploy(VmId(1), spec(6, 6, 1)).unwrap(); // forces pm 1 open
        s.deploy(VmId(2), spec(2, 2, 3)).unwrap();
        let from = s.location_of(VmId(2)).unwrap();
        let to = if from == PmId(0) { PmId(1) } else { PmId(0) };
        assert_eq!(s.migrate(VmId(2), to).unwrap(), from);
        assert_eq!(s.location_of(VmId(2)), Some(to));
        s.check_invariants().unwrap();
        // An infeasible destination leaves everything in place.
        let before = s.capture_state().normalized();
        assert!(s.migrate(VmId(0), to).is_err());
        assert_eq!(s.capture_state().normalized(), before);
        assert!(matches!(
            s.migrate(VmId(99), PmId(0)),
            Err(SimError::UnknownVm(_))
        ));

        // Dedicated baseline: moves stay inside the VM's level cluster.
        let mut d = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            levels(),
        ));
        d.deploy(VmId(0), spec(20, 20, 1)).unwrap();
        d.deploy(VmId(1), spec(20, 20, 1)).unwrap();
        d.deploy(VmId(2), spec(4, 4, 1)).unwrap();
        let from = d.location_of(VmId(2)).unwrap();
        let to = if from == PmId(0) { PmId(1) } else { PmId(0) };
        assert_eq!(d.migrate(VmId(2), to).unwrap(), from);
        assert_eq!(d.location_of(VmId(2)), Some(to));
        d.check_invariants().unwrap();
    }

    #[test]
    fn compaction_skips_failed_workers() {
        // Two lightly-loaded workers would normally consolidate; fail
        // the destination and the planner must not touch it.
        let mut s = SharedDeployment::with_policy(
            Arc::new(builders::flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        );
        s.deploy(VmId(0), spec(20, 20, 1)).unwrap();
        s.deploy(VmId(1), spec(20, 20, 1)).unwrap();
        s.remove(VmId(0)).unwrap();
        s.deploy(VmId(2), spec(2, 2, 1)).unwrap();
        let victim_pm = s.cluster.location_of(VmId(2)).unwrap();
        assert_eq!(victim_pm, PmId(0), "first-fit backfills the freed host");
        let other = PmId(1);
        let evicted = s.fail_host(other);
        assert_eq!(evicted.len(), 1, "the big VM evicts");
        let (migrations, _) = s.compact_now();
        assert_eq!(migrations, 0, "no live destination exists");
        assert_eq!(s.cluster.location_of(VmId(2)), Some(victim_pm));
        s.check_invariants().unwrap();
    }

    #[test]
    fn shared_churn_aggregates() {
        let mut s = SharedDeployment::new(Arc::new(builders::flat(32)), gib(128));
        s.deploy(VmId(0), spec(2, 4, 1)).unwrap();
        s.deploy(VmId(1), spec(2, 4, 2)).unwrap();
        let churn = s.total_churn();
        assert_eq!(churn.vnodes_created, 2);
        assert!(churn.cores_added >= 3);
    }
}
