//! Simulator errors.

use slackvm_model::VmId;
use thiserror::Error;

/// Errors raised by cluster and engine operations.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No host fit the VM and the cluster may not open another.
    #[error("deployment of {0} failed: no host fits and the cluster is capped")]
    DeploymentFailed(VmId),

    /// A freshly opened host rejected the VM — the request exceeds a
    /// single machine's capacity and can never be placed.
    #[error("{0} exceeds the capacity of an empty host; request is unsatisfiable")]
    Unsatisfiable(VmId),

    /// Departure for a VM the cluster does not host.
    #[error("{0} is not placed anywhere in the cluster")]
    UnknownVm(VmId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SimError::DeploymentFailed(VmId(1))
            .to_string()
            .contains("vm-1"));
        assert!(SimError::Unsatisfiable(VmId(2))
            .to_string()
            .contains("capacity"));
        assert!(SimError::UnknownVm(VmId(3))
            .to_string()
            .contains("not placed"));
    }
}
