//! Steady-state detection over occupancy sample logs.
//!
//! The paper's week-long protocol ramps an empty cluster to a steady
//! population; measurements taken during the ramp understate
//! utilization. This module finds the warm-up/steady-state boundary in a
//! sample log (an MSER-inspired truncation rule: drop the prefix whose
//! removal minimizes the standard error of the remainder's mean) and
//! summarizes the steady region — the statistically sound way to quote
//! mean utilization numbers.

use serde::{Deserialize, Serialize};

use crate::metrics::OccupancySample;

/// Summary of the steady-state region of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyStateSummary {
    /// Index of the first steady sample.
    pub warmup_samples: usize,
    /// Simulation time at which steady state begins (seconds).
    pub warmup_end_secs: u64,
    /// Samples in the steady region.
    pub steady_samples: usize,
    /// Mean alive population over the steady region.
    pub mean_population: f64,
    /// Mean unallocated CPU share over the steady region.
    pub mean_unallocated_cpu: f64,
    /// Mean unallocated memory share over the steady region.
    pub mean_unallocated_mem: f64,
}

/// Finds the warm-up truncation point of a sample log by the MSER rule
/// applied to the alive-population series, evaluated on a grid of
/// candidate cut points (at most `max_cut` of the log may be dropped).
///
/// Returns `None` for logs too short to analyze (< 8 samples).
pub fn analyze_steady_state(samples: &[OccupancySample]) -> Option<SteadyStateSummary> {
    if samples.len() < 8 {
        return None;
    }
    let series: Vec<f64> = samples.iter().map(|s| s.alive_vms as f64).collect();
    let max_cut = samples.len() / 2;
    // Evaluate MSER statistic on ~64 candidate cuts.
    let step = (max_cut / 64).max(1);
    let mut best_cut = 0usize;
    let mut best_stat = f64::INFINITY;
    let mut cut = 0usize;
    while cut <= max_cut {
        let rest = &series[cut..];
        let n = rest.len() as f64;
        let mean = rest.iter().sum::<f64>() / n;
        let var = rest.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        // MSER: standard error of the truncated mean = sqrt(var/n); the
        // classic statistic is var / n (monotone equivalent).
        let stat = var / n;
        if stat < best_stat {
            best_stat = stat;
            best_cut = cut;
        }
        cut += step;
    }
    let steady = &samples[best_cut..];
    let n = steady.len() as f64;
    Some(SteadyStateSummary {
        warmup_samples: best_cut,
        warmup_end_secs: steady.first().map_or(0, |s| s.time_secs),
        steady_samples: steady.len(),
        mean_population: steady.iter().map(|s| s.alive_vms as f64).sum::<f64>() / n,
        mean_unallocated_cpu: steady.iter().map(|s| s.unallocated_cpu).sum::<f64>() / n,
        mean_unallocated_mem: steady.iter().map(|s| s.unallocated_mem).sum::<f64>() / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, alive: u32, cpu_free: f64) -> OccupancySample {
        OccupancySample {
            time_secs: t,
            alive_vms: alive,
            opened_pms: 10,
            unallocated_cpu: cpu_free,
            unallocated_mem: cpu_free / 2.0,
        }
    }

    #[test]
    fn ramp_then_plateau_is_cut_at_the_knee() {
        // 100 ramp samples (0..100) then 300 plateau samples around 100.
        let mut samples = Vec::new();
        for i in 0..100u64 {
            samples.push(sample(i * 60, i as u32, 0.9 - i as f64 * 0.005));
        }
        for i in 100..400u64 {
            let wiggle = ((i * 7919) % 5) as u32; // deterministic noise
            samples.push(sample(i * 60, 98 + wiggle, 0.4));
        }
        let s = analyze_steady_state(&samples).unwrap();
        assert!(
            (80..=160).contains(&s.warmup_samples),
            "cut at {}",
            s.warmup_samples
        );
        assert!(
            (s.mean_population - 100.0).abs() < 3.0,
            "steady mean {}",
            s.mean_population
        );
        assert!((s.mean_unallocated_cpu - 0.4).abs() < 0.02);
    }

    #[test]
    fn flat_series_needs_no_warmup() {
        let samples: Vec<_> = (0..100u64).map(|i| sample(i, 50, 0.3)).collect();
        let s = analyze_steady_state(&samples).unwrap();
        assert_eq!(s.warmup_samples, 0);
        assert_eq!(s.mean_population, 50.0);
    }

    #[test]
    fn short_logs_are_rejected() {
        let samples: Vec<_> = (0..7u64).map(|i| sample(i, 1, 0.5)).collect();
        assert!(analyze_steady_state(&samples).is_none());
    }

    #[test]
    fn real_replay_reaches_its_target_population() {
        use crate::deployment::{DedicatedDeployment, DeploymentModel};
        use crate::engine::run_packing_with_samples;
        use slackvm_model::{OversubLevel, PmConfig};
        use slackvm_workload::{
            catalog, ArrivalModel, DistributionPoint, WorkloadGenerator, WorkloadSpec,
        };
        // 80 VMs steady state, one-day lifetimes, 6-day horizon: the
        // steady mean should sit near the target.
        let w = WorkloadGenerator::new(WorkloadSpec {
            catalog: catalog::azure(),
            mix: DistributionPoint::by_letter('E').unwrap().mix(),
            arrivals: ArrivalModel::constant(80, 86_400, 6 * 86_400),
            seed: 3,
        })
        .generate();
        let mut model = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            vec![
                OversubLevel::of(1),
                OversubLevel::of(2),
                OversubLevel::of(3),
            ],
        ));
        let mut samples = Vec::new();
        run_packing_with_samples(&w, &mut model, Some(&mut samples));
        let s = analyze_steady_state(&samples).unwrap();
        assert!(
            (60.0..=100.0).contains(&s.mean_population),
            "steady population {}",
            s.mean_population
        );
        assert!(s.warmup_samples > 0, "a ramp exists from the empty start");
    }
}
