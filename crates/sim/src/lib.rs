//! # slackvm-sim
//!
//! A discrete-event cloud simulator — the workspace's substitute for
//! CloudSimPlus (paper §VII-B).
//!
//! The paper uses CloudSimPlus for allocation bookkeeping: replaying a
//! week of VM arrivals/departures against a cluster that grows from
//! empty, with a pluggable host-selection policy, and reporting how many
//! PMs the workload required and how much CPU/memory sat unallocated.
//! This crate reproduces that machinery:
//!
//! - [`events`]: a deterministic event queue (time, then FIFO);
//! - [`cluster`]: an open-on-demand cluster generic over the host type,
//!   with an incremental placement index ([`slackvm_sched::index`]) so
//!   replay deployments stop rescanning the whole fleet per event;
//! - [`deployment`]: the two deployment models under comparison —
//!   [`deployment::DedicatedDeployment`] (one single-level cluster per
//!   oversubscription tier, the baseline) and
//!   [`deployment::SharedDeployment`] (one pool of partitioned SlackVM
//!   workers plus vClusters);
//! - [`engine`]: the replay loop turning a workload trace into a
//!   [`metrics::PackingOutcome`];
//! - [`metrics`]: occupancy tracking and the unallocated-resource
//!   accounting behind the paper's Figures 3 and 4.

#![warn(missing_docs)]

pub mod cluster;
pub mod deployment;
pub mod engine;
pub mod error;
pub mod events;
pub mod metrics;
pub mod observe;
pub mod state;
pub mod steady;

pub use cluster::Cluster;
pub use deployment::{DedicatedDeployment, DeploymentModel, SharedDeployment};
pub use engine::{
    run_packing, run_packing_compacting, run_packing_compacting_recorded, run_packing_instrumented,
    run_packing_observed, run_packing_recorded, run_packing_with_failures,
    run_packing_with_failures_recorded, run_packing_with_samples, CompactionStats, FailureStats,
};
pub use error::SimError;
pub use events::{EventQueue, SimEvent};
pub use metrics::{OccupancySample, PackingOutcome};
pub use observe::{store_from_samples, ClusterObservables, ClusterSampler, PmUtilization};
pub use state::{ClusterState, ModelState, PlacementRecord};
pub use steady::{analyze_steady_state, SteadyStateSummary};
