//! An open-on-demand cluster, generic over the host implementation.

use std::collections::BTreeMap;

use slackvm_hypervisor::Host;
use slackvm_model::{AllocView, Millicores, PmId, VmId, VmSpec};
use slackvm_sched::{AdmissionKey, Candidate, CandidateIndex, IndexMode, PlacementPolicy};

use crate::error::SimError;

/// The candidate view of a host, as the control plane gathers it.
fn candidate_of<H: Host>(host: &H) -> Candidate {
    Candidate {
        id: host.id(),
        config: host.config(),
        alloc: host.alloc(),
        vms: host.num_vms(),
    }
}

/// The index key for a host: its conservative admission headroom.
fn admission_key_of<H: Host>(host: &H) -> AdmissionKey {
    let headroom = host.admission_headroom();
    AdmissionKey {
        free_mem_mib: headroom.free_mem_mib,
        free_vcpus: headroom.free_vcpus,
    }
}

/// A growable pool of hosts of one concrete type.
///
/// Mirrors the paper's protocol: "starting from an empty cluster and
/// progressively increased until the minimal number of PMs was
/// determined" — a new host opens only when no existing host passes the
/// hard-constraint filter, so the number of opened hosts *is* the
/// minimal cluster size for the replayed sequence under the policy.
pub struct Cluster<H: Host> {
    hosts: Vec<H>,
    factory: Box<dyn Fn(PmId) -> H + Send>,
    placements: BTreeMap<VmId, PmId>,
    max_hosts: Option<u32>,
    failed: std::collections::BTreeSet<PmId>,
    index_mode: IndexMode,
    index: CandidateIndex,
    /// Whether `index` reflects the current host states. Cleared by
    /// [`Cluster::hosts_mut`] (hosts may be mutated behind the index's
    /// back) and by mode switches; the next indexed deploy rebuilds.
    index_synced: bool,
    /// Reusable candidate buffer for indexed deployments, so the steady
    /// state allocates nothing per event.
    scratch: Vec<Candidate>,
}

impl<H: Host> Cluster<H> {
    /// Creates an unbounded cluster with a host factory.
    pub fn new(factory: impl Fn(PmId) -> H + Send + 'static) -> Self {
        Cluster {
            hosts: Vec::new(),
            factory: Box::new(factory),
            placements: BTreeMap::new(),
            max_hosts: None,
            failed: Default::default(),
            index_mode: IndexMode::default(),
            index: CandidateIndex::new(),
            index_synced: false,
            scratch: Vec::new(),
        }
    }

    /// Caps the number of hosts that may be opened.
    pub fn with_max_hosts(mut self, max: u32) -> Self {
        self.max_hosts = Some(max);
        self
    }

    /// Selects how deploy-time candidate sets are assembled (builder
    /// form of [`Cluster::set_index_mode`]).
    pub fn with_index_mode(mut self, mode: IndexMode) -> Self {
        self.set_index_mode(mode);
        self
    }

    /// Selects how deploy-time candidate sets are assembled. Switching
    /// modes mid-run is safe: the index rebuilds on the next deploy.
    pub fn set_index_mode(&mut self, mode: IndexMode) {
        self.index_mode = mode;
        self.index_synced = false;
    }

    /// The candidate-assembly mode in use.
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// Hosts opened so far.
    pub fn hosts(&self) -> &[H] {
        &self.hosts
    }

    /// Mutable access to hosts (used by deployment models to refresh
    /// vCluster summaries). Invalidates the placement index — mutations
    /// through this borrow bypass dirty-tracking, so the next indexed
    /// deploy rebuilds from scratch. Prefer the cluster's own mutators
    /// (deploy/remove/[`Cluster::resize_vm`]/migrate) on hot paths.
    pub fn hosts_mut(&mut self) -> &mut [H] {
        self.index_synced = false;
        &mut self.hosts
    }

    /// Rebuilds the index from every non-failed host if it went stale.
    fn sync_index(&mut self) {
        if self.index_synced {
            return;
        }
        self.index.clear();
        for host in &self.hosts {
            if !self.failed.contains(&host.id()) {
                self.index
                    .upsert(candidate_of(host), admission_key_of(host));
            }
        }
        self.index_synced = true;
    }

    /// Dirty-tracking hook: refreshes one PM's slot after a mutation of
    /// that host (or retires it when the PM is failed). No-op in naive
    /// mode or while the index is stale (a sync will rebuild anyway).
    fn refresh_slot(&mut self, pm: PmId) {
        if self.index_mode == IndexMode::Naive || !self.index_synced {
            return;
        }
        if self.failed.contains(&pm) {
            self.index.retire(pm);
            return;
        }
        if let Some(host) = self.hosts.get(pm.0 as usize) {
            debug_assert_eq!(host.id(), pm, "hosts are dense by PmId");
            self.index
                .upsert(candidate_of(host), admission_key_of(host));
        }
    }

    /// Assembles the feasible candidate set and runs the policy via the
    /// incremental index: admission buckets skip provably-infeasible
    /// PMs, the authoritative `can_host` check runs only on admitted
    /// ones, and First-Fit short-circuits scoring entirely (the lowest
    /// feasible id needs no scores).
    fn select_indexed<R: slackvm_telemetry::Recorder>(
        &mut self,
        spec: &VmSpec,
        policy: &PlacementPolicy,
        recorder: &mut R,
    ) -> Option<PmId> {
        self.sync_index();
        let need_mem = spec.mem_mib();
        let need_vcpus = spec.vcpus();
        let span = recorder.begin("sched.index.query");
        if matches!(policy, PlacementPolicy::FirstFit) {
            let hosts = &self.hosts;
            let picked = self.index.first_admitted(need_mem, need_vcpus, |c| {
                hosts[c.id.0 as usize].can_host(spec)
            });
            recorder.end(span);
            if recorder.enabled() {
                recorder.count("sched.selections", 1);
                if picked.is_none() {
                    recorder.count("sched.no_candidate", 1);
                }
            }
            return picked;
        }
        let mut buf = std::mem::take(&mut self.scratch);
        let stats = self.index.gather_into(&mut buf, need_mem, need_vcpus);
        let admitted = buf.len();
        buf.retain(|c| self.hosts[c.id.0 as usize].can_host(spec));
        recorder.end(span);
        if recorder.enabled() {
            recorder.count("sched.index.gate_skipped", stats.gate_skipped() as u64);
            recorder.count("sched.index.infeasible", (admitted - buf.len()) as u64);
        }
        let picked = policy.select_recorded(&buf, spec, recorder);
        self.scratch = buf;
        picked
    }

    /// Number of opened hosts — the provisioned cluster size.
    pub fn opened(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// Number of hosts currently hosting at least one VM.
    pub fn active(&self) -> u32 {
        self.hosts.iter().filter(|h| !h.is_idle()).count() as u32
    }

    /// Where a VM is placed.
    pub fn location_of(&self, id: VmId) -> Option<PmId> {
        self.placements.get(&id).copied()
    }

    /// Currently placed VM count.
    pub fn num_vms(&self) -> usize {
        self.placements.len()
    }

    /// Sum of host allocations.
    pub fn total_alloc(&self) -> AllocView {
        self.hosts.iter().fold(AllocView::EMPTY, |acc, h| {
            let a = h.alloc();
            AllocView::new(acc.cpu + a.cpu, acc.mem_mib + a.mem_mib)
        })
    }

    /// Sum of host capacities over the *opened* cluster.
    pub fn total_capacity(&self) -> AllocView {
        self.hosts.iter().fold(AllocView::EMPTY, |acc, h| {
            let c = h.config();
            AllocView::new(
                acc.cpu + Millicores::from_cores(c.cores),
                acc.mem_mib + c.mem_mib,
            )
        })
    }

    /// Places a VM: filters hosts on the hard constraints, delegates the
    /// choice to `policy`, and opens a new host when nothing fits.
    pub fn deploy(
        &mut self,
        id: VmId,
        spec: VmSpec,
        policy: &PlacementPolicy,
    ) -> Result<PmId, SimError> {
        self.deploy_recorded(id, spec, policy, 0, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`Cluster::deploy`] with telemetry: the policy's scoring loop is
    /// timed (via [`PlacementPolicy::select_recorded`]) and opening a new
    /// host journals a `PmOpened` event at `time_secs`.
    pub fn deploy_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        spec: VmSpec,
        policy: &PlacementPolicy,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        let picked = match self.index_mode {
            IndexMode::Naive => {
                let candidates: Vec<Candidate> = self
                    .hosts
                    .iter()
                    .filter(|h| !self.failed.contains(&h.id()) && h.can_host(&spec))
                    .map(candidate_of)
                    .collect();
                policy.select_recorded(&candidates, &spec, recorder)
            }
            IndexMode::Incremental => self.select_indexed(&spec, policy, recorder),
        };

        if let Some(pm) = picked {
            let host = self
                .hosts
                .iter_mut()
                .find(|h| h.id() == pm)
                .expect("candidate came from this cluster");
            host.deploy(id, spec)
                .expect("can_host was checked during filtering");
            self.placements.insert(id, pm);
            self.refresh_slot(pm);
            return Ok(pm);
        }

        // Nothing fits: open a new host.
        if let Some(max) = self.max_hosts {
            if self.opened() >= max {
                return Err(SimError::DeploymentFailed(id));
            }
        }
        let pm = PmId(self.hosts.len() as u32);
        let mut host = (self.factory)(pm);
        host.deploy(id, spec)
            .map_err(|_| SimError::Unsatisfiable(id))?;
        self.hosts.push(host);
        self.placements.insert(id, pm);
        self.refresh_slot(pm);
        if recorder.enabled() {
            recorder.record(time_secs, slackvm_telemetry::Event::PmOpened { pm });
        }
        Ok(pm)
    }

    /// Places a VM through a full [`slackvm_sched::Scheduler`] pipeline (hard-constraint
    /// filters + policy) instead of a bare policy. Filters apply to
    /// *existing* hosts only; when every host is filtered out a new one
    /// opens, exactly as with [`Cluster::deploy`].
    pub fn deploy_scheduled(
        &mut self,
        id: VmId,
        spec: VmSpec,
        scheduler: &slackvm_sched::Scheduler,
    ) -> Result<PmId, SimError> {
        let candidates: Vec<Candidate> = self
            .hosts
            .iter()
            .filter(|h| !self.failed.contains(&h.id()) && h.can_host(&spec))
            .map(candidate_of)
            .collect();
        if let Some(pm) = scheduler.place(&candidates, &spec) {
            let host = self
                .hosts
                .iter_mut()
                .find(|h| h.id() == pm)
                .expect("candidate came from this cluster");
            host.deploy(id, spec)
                .expect("can_host was checked during filtering");
            self.placements.insert(id, pm);
            self.refresh_slot(pm);
            return Ok(pm);
        }
        if let Some(max) = self.max_hosts {
            if self.opened() >= max {
                return Err(SimError::DeploymentFailed(id));
            }
        }
        let pm = PmId(self.hosts.len() as u32);
        let mut host = (self.factory)(pm);
        host.deploy(id, spec)
            .map_err(|_| SimError::Unsatisfiable(id))?;
        self.hosts.push(host);
        self.placements.insert(id, pm);
        self.refresh_slot(pm);
        Ok(pm)
    }

    /// Moves a VM to a specific host — the migration primitive. The
    /// destination must fit the VM; on failure the VM stays where it
    /// was (the check happens before the removal).
    pub fn migrate(&mut self, id: VmId, to: PmId) -> Result<(), SimError> {
        let from = self
            .placements
            .get(&id)
            .copied()
            .ok_or(SimError::UnknownVm(id))?;
        if from == to {
            return Ok(());
        }
        if self.failed.contains(&to) {
            return Err(SimError::DeploymentFailed(id));
        }
        // An unopened destination must be refused *before* the VM is
        // lifted off its source: hosts are dense by PmId, so a bounds
        // check suffices, and every later early-return leaves the
        // source untouched.
        if to.0 as usize >= self.hosts.len() {
            return Err(SimError::DeploymentFailed(id));
        }
        // The host trait has no spec lookup, so lift the VM off its
        // source and roll back if the destination refuses it.
        let spec = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == from)
            .expect("placement map is consistent")
            .remove(id)
            .expect("placement map is consistent");
        let dest = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == to)
            .expect("destination bounds-checked above");
        if dest.can_host(&spec) {
            dest.deploy(id, spec).expect("can_host checked");
            self.placements.insert(id, to);
            self.refresh_slot(from);
            self.refresh_slot(to);
            Ok(())
        } else {
            // Roll back onto the source.
            let src = self
                .hosts
                .iter_mut()
                .find(|h| h.id() == from)
                .expect("source still exists");
            src.deploy(id, spec)
                .expect("the VM just vacated this capacity");
            Err(SimError::DeploymentFailed(id))
        }
    }

    /// Fails a host: it stops accepting deployments and every hosted VM
    /// is evicted and returned (for the caller to re-place or declare
    /// lost). Idempotent: failing a failed or unknown host evicts
    /// nothing.
    pub fn fail_host(&mut self, pm: PmId) -> Vec<(VmId, VmSpec)> {
        if !self.failed.insert(pm) {
            return Vec::new();
        }
        let Some(host) = self.hosts.iter_mut().find(|h| h.id() == pm) else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        for id in host.vm_ids() {
            let spec = host.remove(id).expect("vm_ids() lists hosted VMs");
            self.placements.remove(&id);
            evicted.push((id, spec));
        }
        // `pm` is now in the failed set, so this retires its slot.
        self.refresh_slot(pm);
        evicted
    }

    /// Returns a failed host to service (e.g. after repair).
    pub fn repair_host(&mut self, pm: PmId) {
        self.failed.remove(&pm);
        self.refresh_slot(pm);
    }

    /// Marks a host failed *without* evicting anything — the restore
    /// primitive for replaying a captured failed-set, where evictions
    /// already happened before the capture. Deliberately does not open
    /// hosts: the captured `opened` count is restored separately, and
    /// a failure logged against a never-opened PM stays a pure
    /// failed-set entry, exactly as the live cluster recorded it.
    pub fn mark_failed(&mut self, pm: PmId) {
        self.failed.insert(pm);
        self.refresh_slot(pm);
    }

    /// The currently-failed hosts, ascending by id.
    pub fn failed_ids(&self) -> Vec<PmId> {
        self.failed.iter().copied().collect()
    }

    /// Whether a host is currently failed.
    pub fn is_failed(&self, pm: PmId) -> bool {
        self.failed.contains(&pm)
    }

    /// Number of hosts currently failed.
    pub fn failed_count(&self) -> u32 {
        self.failed.len() as u32
    }

    /// Removes a VM, returning the PM that hosted it.
    pub fn remove(&mut self, id: VmId) -> Result<PmId, SimError> {
        let pm = self.placements.remove(&id).ok_or(SimError::UnknownVm(id))?;
        let host = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == pm)
            .expect("placement map points at an opened host");
        host.remove(id).expect("placement map is consistent");
        self.refresh_slot(pm);
        Ok(pm)
    }

    /// Places a VM on a *specific* PM, opening hosts through the
    /// factory up to and including `pm` — the directed primitive state
    /// restore and WAL replay use, where the target was decided by a
    /// previous run and must not be re-chosen. Fails (`DeploymentFailed`)
    /// when the target exceeds a host cap or cannot take the VM.
    pub fn restore_placement(&mut self, id: VmId, spec: VmSpec, pm: PmId) -> Result<(), SimError> {
        if self.placements.contains_key(&id) || !self.open_through(pm) {
            return Err(SimError::DeploymentFailed(id));
        }
        let host = &mut self.hosts[pm.0 as usize];
        if !host.can_host(&spec) {
            return Err(SimError::DeploymentFailed(id));
        }
        host.deploy(id, spec).expect("can_host was just checked");
        self.placements.insert(id, pm);
        self.refresh_slot(pm);
        Ok(())
    }

    /// Opens (empty) hosts until `opened` hosts exist, so a restored
    /// cluster reports the same provisioned size as the captured one —
    /// emptied-but-opened hosts stay candidates, exactly as they were.
    pub fn ensure_opened(&mut self, opened: u32) -> bool {
        opened == 0 || self.open_through(PmId(opened - 1))
    }

    /// Opens hosts densely up to and including `pm`; false when the
    /// host cap forbids it.
    fn open_through(&mut self, pm: PmId) -> bool {
        if let Some(max) = self.max_hosts {
            if pm.0 >= max {
                return false;
            }
        }
        while self.hosts.len() <= pm.0 as usize {
            let id = PmId(self.hosts.len() as u32);
            self.hosts.push((self.factory)(id));
            self.refresh_slot(id);
        }
        true
    }

    /// Vertically resizes a hosted VM in place, returning the hosting
    /// PM. Fails without side effects (`DeploymentFailed`) when that
    /// host cannot absorb the new size — control planes surface this as
    /// a rejected resize request.
    pub fn resize_vm(&mut self, id: VmId, vcpus: u32, mem_mib: u64) -> Result<PmId, SimError> {
        let pm = self
            .placements
            .get(&id)
            .copied()
            .ok_or(SimError::UnknownVm(id))?;
        let host = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == pm)
            .expect("placement map points at an opened host");
        host.resize_vm(id, vcpus, mem_mib)
            .map_err(|_| SimError::DeploymentFailed(id))?;
        self.refresh_slot(pm);
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_hypervisor::UniformMachine;
    use slackvm_model::{gib, OversubLevel, PmConfig};

    fn premium_cluster() -> Cluster<UniformMachine> {
        Cluster::new(|id| {
            UniformMachine::new(id, PmConfig::simulation_host(), OversubLevel::PREMIUM)
        })
    }

    fn spec(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::PREMIUM)
    }

    #[test]
    fn opens_hosts_on_demand_first_fit() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        // Each VM takes 20 cores of the 32: two per host never fit.
        for i in 0..4 {
            c.deploy(VmId(i), spec(20, 20), &policy).unwrap();
        }
        assert_eq!(c.opened(), 4);
        // Small VMs backfill host 0 first.
        let pm = c.deploy(VmId(10), spec(4, 4), &policy).unwrap();
        assert_eq!(pm, PmId(0));
        assert_eq!(c.opened(), 4);
    }

    #[test]
    fn removal_frees_capacity_for_reuse() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(30, 30), &policy).unwrap();
        c.deploy(VmId(1), spec(30, 30), &policy).unwrap();
        assert_eq!(c.opened(), 2);
        assert_eq!(c.active(), 2);
        c.remove(VmId(0)).unwrap();
        assert_eq!(c.active(), 1);
        // The freed host 0 is reused instead of opening a third.
        let pm = c.deploy(VmId(2), spec(30, 30), &policy).unwrap();
        assert_eq!(pm, PmId(0));
        assert_eq!(c.opened(), 2);
    }

    #[test]
    fn cap_rejects_when_full() {
        let mut c = premium_cluster().with_max_hosts(1);
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(30, 30), &policy).unwrap();
        let err = c.deploy(VmId(1), spec(30, 30), &policy).unwrap_err();
        assert_eq!(err, SimError::DeploymentFailed(VmId(1)));
    }

    #[test]
    fn unsatisfiable_request_is_flagged() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        let err = c.deploy(VmId(0), spec(64, 1), &policy).unwrap_err();
        assert_eq!(err, SimError::Unsatisfiable(VmId(0)));
        // The tentative host is discarded: nothing opened, nothing placed.
        assert_eq!(c.opened(), 0);
        assert_eq!(c.location_of(VmId(0)), None);
    }

    #[test]
    fn totals_track_allocations() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(8, 16), &policy).unwrap();
        c.deploy(VmId(1), spec(8, 16), &policy).unwrap();
        let alloc = c.total_alloc();
        assert_eq!(alloc.cpu, Millicores::from_cores(16));
        assert_eq!(alloc.mem_mib, gib(32));
        let cap = c.total_capacity();
        assert_eq!(cap.cpu, Millicores::from_cores(32));
        assert_eq!(cap.mem_mib, gib(128));
        assert_eq!(c.num_vms(), 2);
    }

    #[test]
    fn unknown_vm_removal_errors() {
        let mut c = premium_cluster();
        assert_eq!(c.remove(VmId(9)).unwrap_err(), SimError::UnknownVm(VmId(9)));
    }

    #[test]
    fn scheduled_deploys_respect_filters() {
        use slackvm_sched::{MaxVmsFilter, Scheduler};
        let mut c = premium_cluster();
        let scheduler =
            Scheduler::new(PlacementPolicy::FirstFit).with_filter(MaxVmsFilter { max_vms: 2 });
        // Two VMs land on host 0; the density cap pushes the third to a
        // fresh host even though host 0 has room.
        for i in 0..3 {
            c.deploy_scheduled(VmId(i), spec(1, 1), &scheduler).unwrap();
        }
        assert_eq!(c.opened(), 2);
        assert_eq!(c.location_of(VmId(2)), Some(PmId(1)));
        // Without the filter the same sequence stays on one host.
        let mut c2 = premium_cluster();
        let plain = Scheduler::new(PlacementPolicy::FirstFit);
        for i in 0..3 {
            c2.deploy_scheduled(VmId(i), spec(1, 1), &plain).unwrap();
        }
        assert_eq!(c2.opened(), 1);
    }

    #[test]
    fn cluster_resize_routes_through_the_host() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(4, 8), &policy).unwrap();
        assert_eq!(c.resize_vm(VmId(0), 8, gib(16)).unwrap(), PmId(0));
        assert_eq!(c.total_alloc().mem_mib, gib(16));
        // Infeasible resize: rejected, no side effects.
        assert_eq!(
            c.resize_vm(VmId(0), 64, gib(1)).unwrap_err(),
            SimError::DeploymentFailed(VmId(0))
        );
        assert_eq!(c.total_alloc().mem_mib, gib(16));
        assert_eq!(
            c.resize_vm(VmId(7), 1, 1).unwrap_err(),
            SimError::UnknownVm(VmId(7))
        );
    }

    /// The incremental index and the naive rebuild must agree on every
    /// placement across the full mutation surface: deploys (reuse and
    /// open), removals, resizes, failure/repair, and external mutation
    /// through `hosts_mut` (which forces a rebuild).
    #[test]
    fn incremental_index_matches_naive_across_mutations() {
        let policy = PlacementPolicy::FirstFit;
        let mut naive = premium_cluster().with_index_mode(IndexMode::Naive);
        let mut incr = premium_cluster().with_index_mode(IndexMode::Incremental);
        assert_eq!(incr.index_mode(), IndexMode::Incremental);
        let drive = |c: &mut Cluster<UniformMachine>| -> Vec<PmId> {
            let mut picks = Vec::new();
            for i in 0..6 {
                picks.push(c.deploy(VmId(i), spec(10, 30), &policy).unwrap());
            }
            c.remove(VmId(2)).unwrap();
            picks.push(c.deploy(VmId(10), spec(10, 30), &policy).unwrap());
            c.resize_vm(VmId(10), 2, gib(2)).unwrap();
            picks.push(c.deploy(VmId(11), spec(10, 28), &policy).unwrap());
            c.fail_host(PmId(0));
            picks.push(c.deploy(VmId(12), spec(4, 4), &policy).unwrap());
            c.repair_host(PmId(0));
            picks.push(c.deploy(VmId(13), spec(4, 4), &policy).unwrap());
            // Mutation behind the index's back: stale until next deploy.
            c.hosts_mut()[1].resize_vm(VmId(3), 1, gib(1)).unwrap();
            picks.push(c.deploy(VmId(14), spec(10, 29), &policy).unwrap());
            picks
        };
        assert_eq!(drive(&mut naive), drive(&mut incr));
        assert_eq!(naive.opened(), incr.opened());
        assert_eq!(naive.active(), incr.active());
    }

    #[test]
    fn incremental_index_matches_naive_under_scoring() {
        use slackvm_sched::BestFitScorer;
        let drive = |mode: IndexMode| {
            let mut c = premium_cluster().with_index_mode(mode);
            let policy = PlacementPolicy::scored(BestFitScorer);
            let mut picks = Vec::new();
            for i in 0..12 {
                let vcpus = 3 + (i % 5) as u32 * 4;
                let mem = 2 + (i % 7) * 9;
                picks.push(c.deploy(VmId(i), spec(vcpus, mem), &policy).unwrap());
            }
            for i in [1, 4, 7] {
                c.remove(VmId(i)).unwrap();
            }
            for i in 20..26 {
                picks.push(c.deploy(VmId(i), spec(6, 12), &policy).unwrap());
            }
            picks
        };
        assert_eq!(drive(IndexMode::Naive), drive(IndexMode::Incremental));
    }

    /// Regression: migrating to an unknown (never-opened) PmId must be
    /// a clean refusal. The pre-fix code removed the VM from its source
    /// before discovering the destination didn't exist, losing the VM
    /// while the placement map still claimed it lived on the source.
    #[test]
    fn migrate_to_unknown_destination_is_side_effect_free() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(4, 8), &policy).unwrap();
        let alloc_before = c.total_alloc();
        assert_eq!(
            c.migrate(VmId(0), PmId(99)).unwrap_err(),
            SimError::DeploymentFailed(VmId(0))
        );
        // The VM is still on its source with its capacity accounted.
        assert_eq!(c.location_of(VmId(0)), Some(PmId(0)));
        assert_eq!(c.total_alloc(), alloc_before);
        // And the placement map stayed consistent: removal works
        // (pre-fix this panicked — the host no longer held the VM).
        assert_eq!(c.remove(VmId(0)).unwrap(), PmId(0));
    }

    #[test]
    fn migrate_moves_and_rolls_back() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        // Two hosts: a big VM on each, a small one on host 0.
        c.deploy(VmId(0), spec(20, 100), &policy).unwrap();
        c.deploy(VmId(1), spec(20, 100), &policy).unwrap();
        c.deploy(VmId(2), spec(4, 8), &policy).unwrap();
        assert_eq!(c.location_of(VmId(2)), Some(PmId(0)));
        // A fitting migration moves the VM.
        c.migrate(VmId(2), PmId(1)).unwrap();
        assert_eq!(c.location_of(VmId(2)), Some(PmId(1)));
        // A destination that cannot host rolls back onto the source.
        assert!(c.migrate(VmId(0), PmId(1)).is_err());
        assert_eq!(c.location_of(VmId(0)), Some(PmId(0)));
        // A failed destination is refused up front.
        c.fail_host(PmId(0));
        assert!(c.migrate(VmId(2), PmId(0)).is_err());
        assert_eq!(c.location_of(VmId(2)), Some(PmId(1)));
    }

    #[test]
    fn mark_failed_restores_the_failed_set() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        // Two opened hosts, then mark host 1 failed as a restore would.
        c.deploy(VmId(0), spec(30, 30), &policy).unwrap();
        c.deploy(VmId(1), spec(30, 30), &policy).unwrap();
        c.remove(VmId(1)).unwrap();
        c.mark_failed(PmId(1));
        assert!(c.is_failed(PmId(1)));
        assert_eq!(c.opened(), 2, "marking does not open hosts");
        assert_eq!(c.failed_ids(), vec![PmId(1)]);
        // Deploys skip the marked host: a new one opens instead.
        c.deploy(VmId(2), spec(30, 30), &policy).unwrap();
        assert_eq!(c.location_of(VmId(2)), Some(PmId(2)));
        c.repair_host(PmId(1));
        assert_eq!(c.failed_ids(), Vec::<PmId>::new());
    }

    #[test]
    fn scheduled_deploys_hit_the_cap() {
        use slackvm_sched::{MaxVmsFilter, Scheduler};
        let mut c = premium_cluster().with_max_hosts(1);
        let scheduler =
            Scheduler::new(PlacementPolicy::FirstFit).with_filter(MaxVmsFilter { max_vms: 1 });
        c.deploy_scheduled(VmId(0), spec(1, 1), &scheduler).unwrap();
        let err = c
            .deploy_scheduled(VmId(1), spec(1, 1), &scheduler)
            .unwrap_err();
        assert_eq!(err, SimError::DeploymentFailed(VmId(1)));
    }
}
