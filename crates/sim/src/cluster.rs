//! An open-on-demand cluster, generic over the host implementation.

use std::collections::BTreeMap;

use slackvm_hypervisor::Host;
use slackvm_model::{AllocView, Millicores, PmId, VmId, VmSpec};
use slackvm_sched::{Candidate, PlacementPolicy};

use crate::error::SimError;

/// A growable pool of hosts of one concrete type.
///
/// Mirrors the paper's protocol: "starting from an empty cluster and
/// progressively increased until the minimal number of PMs was
/// determined" — a new host opens only when no existing host passes the
/// hard-constraint filter, so the number of opened hosts *is* the
/// minimal cluster size for the replayed sequence under the policy.
pub struct Cluster<H: Host> {
    hosts: Vec<H>,
    factory: Box<dyn Fn(PmId) -> H + Send>,
    placements: BTreeMap<VmId, PmId>,
    max_hosts: Option<u32>,
    failed: std::collections::BTreeSet<PmId>,
}

impl<H: Host> Cluster<H> {
    /// Creates an unbounded cluster with a host factory.
    pub fn new(factory: impl Fn(PmId) -> H + Send + 'static) -> Self {
        Cluster {
            hosts: Vec::new(),
            factory: Box::new(factory),
            placements: BTreeMap::new(),
            max_hosts: None,
            failed: Default::default(),
        }
    }

    /// Caps the number of hosts that may be opened.
    pub fn with_max_hosts(mut self, max: u32) -> Self {
        self.max_hosts = Some(max);
        self
    }

    /// Hosts opened so far.
    pub fn hosts(&self) -> &[H] {
        &self.hosts
    }

    /// Mutable access to hosts (used by deployment models to refresh
    /// vCluster summaries).
    pub fn hosts_mut(&mut self) -> &mut [H] {
        &mut self.hosts
    }

    /// Number of opened hosts — the provisioned cluster size.
    pub fn opened(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// Number of hosts currently hosting at least one VM.
    pub fn active(&self) -> u32 {
        self.hosts.iter().filter(|h| !h.is_idle()).count() as u32
    }

    /// Where a VM is placed.
    pub fn location_of(&self, id: VmId) -> Option<PmId> {
        self.placements.get(&id).copied()
    }

    /// Currently placed VM count.
    pub fn num_vms(&self) -> usize {
        self.placements.len()
    }

    /// Sum of host allocations.
    pub fn total_alloc(&self) -> AllocView {
        self.hosts.iter().fold(AllocView::EMPTY, |acc, h| {
            let a = h.alloc();
            AllocView::new(acc.cpu + a.cpu, acc.mem_mib + a.mem_mib)
        })
    }

    /// Sum of host capacities over the *opened* cluster.
    pub fn total_capacity(&self) -> AllocView {
        self.hosts.iter().fold(AllocView::EMPTY, |acc, h| {
            let c = h.config();
            AllocView::new(
                acc.cpu + Millicores::from_cores(c.cores),
                acc.mem_mib + c.mem_mib,
            )
        })
    }

    /// Places a VM: filters hosts on the hard constraints, delegates the
    /// choice to `policy`, and opens a new host when nothing fits.
    pub fn deploy(
        &mut self,
        id: VmId,
        spec: VmSpec,
        policy: &PlacementPolicy,
    ) -> Result<PmId, SimError> {
        self.deploy_recorded(id, spec, policy, 0, &mut slackvm_telemetry::NullRecorder)
    }

    /// [`Cluster::deploy`] with telemetry: the policy's scoring loop is
    /// timed (via [`PlacementPolicy::select_recorded`]) and opening a new
    /// host journals a `PmOpened` event at `time_secs`.
    pub fn deploy_recorded<R: slackvm_telemetry::Recorder>(
        &mut self,
        id: VmId,
        spec: VmSpec,
        policy: &PlacementPolicy,
        time_secs: u64,
        recorder: &mut R,
    ) -> Result<PmId, SimError> {
        let candidates: Vec<Candidate> = self
            .hosts
            .iter()
            .filter(|h| !self.failed.contains(&h.id()) && h.can_host(&spec))
            .map(|h| Candidate {
                id: h.id(),
                config: h.config(),
                alloc: h.alloc(),
                vms: h.num_vms(),
            })
            .collect();

        if let Some(pm) = policy.select_recorded(&candidates, &spec, recorder) {
            let host = self
                .hosts
                .iter_mut()
                .find(|h| h.id() == pm)
                .expect("candidate came from this cluster");
            host.deploy(id, spec)
                .expect("can_host was checked during filtering");
            self.placements.insert(id, pm);
            return Ok(pm);
        }

        // Nothing fits: open a new host.
        if let Some(max) = self.max_hosts {
            if self.opened() >= max {
                return Err(SimError::DeploymentFailed(id));
            }
        }
        let pm = PmId(self.hosts.len() as u32);
        let mut host = (self.factory)(pm);
        host.deploy(id, spec)
            .map_err(|_| SimError::Unsatisfiable(id))?;
        self.hosts.push(host);
        self.placements.insert(id, pm);
        if recorder.enabled() {
            recorder.record(time_secs, slackvm_telemetry::Event::PmOpened { pm });
        }
        Ok(pm)
    }

    /// Places a VM through a full [`slackvm_sched::Scheduler`] pipeline (hard-constraint
    /// filters + policy) instead of a bare policy. Filters apply to
    /// *existing* hosts only; when every host is filtered out a new one
    /// opens, exactly as with [`Cluster::deploy`].
    pub fn deploy_scheduled(
        &mut self,
        id: VmId,
        spec: VmSpec,
        scheduler: &slackvm_sched::Scheduler,
    ) -> Result<PmId, SimError> {
        let candidates: Vec<Candidate> = self
            .hosts
            .iter()
            .filter(|h| !self.failed.contains(&h.id()) && h.can_host(&spec))
            .map(|h| Candidate {
                id: h.id(),
                config: h.config(),
                alloc: h.alloc(),
                vms: h.num_vms(),
            })
            .collect();
        if let Some(pm) = scheduler.place(&candidates, &spec) {
            let host = self
                .hosts
                .iter_mut()
                .find(|h| h.id() == pm)
                .expect("candidate came from this cluster");
            host.deploy(id, spec)
                .expect("can_host was checked during filtering");
            self.placements.insert(id, pm);
            return Ok(pm);
        }
        if let Some(max) = self.max_hosts {
            if self.opened() >= max {
                return Err(SimError::DeploymentFailed(id));
            }
        }
        let pm = PmId(self.hosts.len() as u32);
        let mut host = (self.factory)(pm);
        host.deploy(id, spec)
            .map_err(|_| SimError::Unsatisfiable(id))?;
        self.hosts.push(host);
        self.placements.insert(id, pm);
        Ok(pm)
    }

    /// Moves a VM to a specific host — the migration primitive. The
    /// destination must fit the VM; on failure the VM stays where it
    /// was (the check happens before the removal).
    pub fn migrate(&mut self, id: VmId, to: PmId) -> Result<(), SimError> {
        let from = self
            .placements
            .get(&id)
            .copied()
            .ok_or(SimError::UnknownVm(id))?;
        if from == to {
            return Ok(());
        }
        if self.failed.contains(&to) {
            return Err(SimError::DeploymentFailed(id));
        }
        // The host trait has no spec lookup, so lift the VM off its
        // source and roll back if the destination refuses it.
        let spec = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == from)
            .expect("placement map is consistent")
            .remove(id)
            .expect("placement map is consistent");
        let dest = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == to)
            .ok_or(SimError::DeploymentFailed(id))?;
        if dest.can_host(&spec) {
            dest.deploy(id, spec).expect("can_host checked");
            self.placements.insert(id, to);
            Ok(())
        } else {
            // Roll back onto the source.
            let src = self
                .hosts
                .iter_mut()
                .find(|h| h.id() == from)
                .expect("source still exists");
            src.deploy(id, spec)
                .expect("the VM just vacated this capacity");
            Err(SimError::DeploymentFailed(id))
        }
    }

    /// Fails a host: it stops accepting deployments and every hosted VM
    /// is evicted and returned (for the caller to re-place or declare
    /// lost). Idempotent: failing a failed or unknown host evicts
    /// nothing.
    pub fn fail_host(&mut self, pm: PmId) -> Vec<(VmId, VmSpec)> {
        if !self.failed.insert(pm) {
            return Vec::new();
        }
        let Some(host) = self.hosts.iter_mut().find(|h| h.id() == pm) else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        for id in host.vm_ids() {
            let spec = host.remove(id).expect("vm_ids() lists hosted VMs");
            self.placements.remove(&id);
            evicted.push((id, spec));
        }
        evicted
    }

    /// Returns a failed host to service (e.g. after repair).
    pub fn repair_host(&mut self, pm: PmId) {
        self.failed.remove(&pm);
    }

    /// Whether a host is currently failed.
    pub fn is_failed(&self, pm: PmId) -> bool {
        self.failed.contains(&pm)
    }

    /// Number of hosts currently failed.
    pub fn failed_count(&self) -> u32 {
        self.failed.len() as u32
    }

    /// Removes a VM, returning the PM that hosted it.
    pub fn remove(&mut self, id: VmId) -> Result<PmId, SimError> {
        let pm = self.placements.remove(&id).ok_or(SimError::UnknownVm(id))?;
        let host = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == pm)
            .expect("placement map points at an opened host");
        host.remove(id).expect("placement map is consistent");
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_hypervisor::UniformMachine;
    use slackvm_model::{gib, OversubLevel, PmConfig};

    fn premium_cluster() -> Cluster<UniformMachine> {
        Cluster::new(|id| {
            UniformMachine::new(id, PmConfig::simulation_host(), OversubLevel::PREMIUM)
        })
    }

    fn spec(vcpus: u32, mem_gib: u64) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::PREMIUM)
    }

    #[test]
    fn opens_hosts_on_demand_first_fit() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        // Each VM takes 20 cores of the 32: two per host never fit.
        for i in 0..4 {
            c.deploy(VmId(i), spec(20, 20), &policy).unwrap();
        }
        assert_eq!(c.opened(), 4);
        // Small VMs backfill host 0 first.
        let pm = c.deploy(VmId(10), spec(4, 4), &policy).unwrap();
        assert_eq!(pm, PmId(0));
        assert_eq!(c.opened(), 4);
    }

    #[test]
    fn removal_frees_capacity_for_reuse() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(30, 30), &policy).unwrap();
        c.deploy(VmId(1), spec(30, 30), &policy).unwrap();
        assert_eq!(c.opened(), 2);
        assert_eq!(c.active(), 2);
        c.remove(VmId(0)).unwrap();
        assert_eq!(c.active(), 1);
        // The freed host 0 is reused instead of opening a third.
        let pm = c.deploy(VmId(2), spec(30, 30), &policy).unwrap();
        assert_eq!(pm, PmId(0));
        assert_eq!(c.opened(), 2);
    }

    #[test]
    fn cap_rejects_when_full() {
        let mut c = premium_cluster().with_max_hosts(1);
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(30, 30), &policy).unwrap();
        let err = c.deploy(VmId(1), spec(30, 30), &policy).unwrap_err();
        assert_eq!(err, SimError::DeploymentFailed(VmId(1)));
    }

    #[test]
    fn unsatisfiable_request_is_flagged() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        let err = c.deploy(VmId(0), spec(64, 1), &policy).unwrap_err();
        assert_eq!(err, SimError::Unsatisfiable(VmId(0)));
        // The tentative host is discarded: nothing opened, nothing placed.
        assert_eq!(c.opened(), 0);
        assert_eq!(c.location_of(VmId(0)), None);
    }

    #[test]
    fn totals_track_allocations() {
        let mut c = premium_cluster();
        let policy = PlacementPolicy::FirstFit;
        c.deploy(VmId(0), spec(8, 16), &policy).unwrap();
        c.deploy(VmId(1), spec(8, 16), &policy).unwrap();
        let alloc = c.total_alloc();
        assert_eq!(alloc.cpu, Millicores::from_cores(16));
        assert_eq!(alloc.mem_mib, gib(32));
        let cap = c.total_capacity();
        assert_eq!(cap.cpu, Millicores::from_cores(32));
        assert_eq!(cap.mem_mib, gib(128));
        assert_eq!(c.num_vms(), 2);
    }

    #[test]
    fn unknown_vm_removal_errors() {
        let mut c = premium_cluster();
        assert_eq!(c.remove(VmId(9)).unwrap_err(), SimError::UnknownVm(VmId(9)));
    }

    #[test]
    fn scheduled_deploys_respect_filters() {
        use slackvm_sched::{MaxVmsFilter, Scheduler};
        let mut c = premium_cluster();
        let scheduler =
            Scheduler::new(PlacementPolicy::FirstFit).with_filter(MaxVmsFilter { max_vms: 2 });
        // Two VMs land on host 0; the density cap pushes the third to a
        // fresh host even though host 0 has room.
        for i in 0..3 {
            c.deploy_scheduled(VmId(i), spec(1, 1), &scheduler).unwrap();
        }
        assert_eq!(c.opened(), 2);
        assert_eq!(c.location_of(VmId(2)), Some(PmId(1)));
        // Without the filter the same sequence stays on one host.
        let mut c2 = premium_cluster();
        let plain = Scheduler::new(PlacementPolicy::FirstFit);
        for i in 0..3 {
            c2.deploy_scheduled(VmId(i), spec(1, 1), &plain).unwrap();
        }
        assert_eq!(c2.opened(), 1);
    }

    #[test]
    fn scheduled_deploys_hit_the_cap() {
        use slackvm_sched::{MaxVmsFilter, Scheduler};
        let mut c = premium_cluster().with_max_hosts(1);
        let scheduler =
            Scheduler::new(PlacementPolicy::FirstFit).with_filter(MaxVmsFilter { max_vms: 1 });
        c.deploy_scheduled(VmId(0), spec(1, 1), &scheduler).unwrap();
        let err = c
            .deploy_scheduled(VmId(1), spec(1, 1), &scheduler)
            .unwrap_err();
        assert_eq!(err, SimError::DeploymentFailed(VmId(1)));
    }
}
