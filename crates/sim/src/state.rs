//! Serializable logical state of a deployment model.
//!
//! A [`ModelState`] captures what a deployment model *decided* — which
//! VMs live where, and how many PMs the cluster provisioned — rather
//! than the hypervisor's internal layout (core pins, vNode spans).
//! Restoring replays those decisions through the directed placement
//! primitive ([`crate::Cluster::restore_placement`]), which rebuilds a
//! valid internal layout for the same VM sets; per-host allocation
//! totals, opened-PM counts, and every admission-relevant observable
//! are functions of the VM set and therefore round-trip exactly. The
//! durability layer (`slackvm-durable`) serializes this type into its
//! snapshot files.

use serde::{Deserialize, Serialize};

use slackvm_model::{OversubLevel, PmId, VmId, VmSpec};

/// One live placement: a VM, its current (post-resize) spec, and the
/// PM hosting it. PM ids are cluster-local — the dedicated baseline
/// scopes them per oversubscription level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRecord {
    /// The placed VM.
    pub vm: VmId,
    /// Its current shape and level.
    pub spec: VmSpec,
    /// The hosting PM.
    pub pm: PmId,
}

/// Per-(sub)cluster state: provisioned size plus live placements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterState {
    /// Hosts opened (provisioned), including currently-idle ones.
    pub opened: u32,
    /// Live placements, in each host's internal (ascending VM id)
    /// order, hosts ascending.
    pub placements: Vec<PlacementRecord>,
    /// Hosts currently failed (out of service), ascending by id.
    /// Absent in pre-failure-plane captures, which defaults to none.
    #[serde(default)]
    pub failed: Vec<PmId>,
}

/// The logical state of a whole [`crate::DeploymentModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelState {
    /// One shared pool.
    Shared(ClusterState),
    /// One sub-cluster per oversubscription level, ascending by level.
    Dedicated(Vec<(OversubLevel, ClusterState)>),
}

impl ModelState {
    /// Live placements across every (sub)cluster.
    pub fn placements(&self) -> Box<dyn Iterator<Item = &PlacementRecord> + '_> {
        match self {
            ModelState::Shared(c) => Box::new(c.placements.iter()),
            ModelState::Dedicated(levels) => {
                Box::new(levels.iter().flat_map(|(_, c)| c.placements.iter()))
            }
        }
    }

    /// Number of live placements.
    pub fn num_vms(&self) -> usize {
        self.placements().count()
    }

    /// PMs provisioned across every (sub)cluster.
    pub fn opened_pms(&self) -> u32 {
        match self {
            ModelState::Shared(c) => c.opened,
            ModelState::Dedicated(levels) => levels.iter().map(|(_, c)| c.opened).sum(),
        }
    }

    /// An order-independent form: placements sorted by VM id, levels by
    /// ratio. Two states capturing the same logical cluster — however
    /// their hosts happened to iterate — normalize identically, which
    /// is the equality `slackvm fsck` checks.
    pub fn normalized(&self) -> ModelState {
        let norm = |c: &ClusterState| {
            let mut placements = c.placements.clone();
            placements.sort_by_key(|p| p.vm);
            let mut failed = c.failed.clone();
            failed.sort();
            ClusterState {
                opened: c.opened,
                placements,
                failed,
            }
        };
        match self {
            ModelState::Shared(c) => ModelState::Shared(norm(c)),
            ModelState::Dedicated(levels) => {
                let mut levels: Vec<_> = levels.iter().map(|(l, c)| (*l, norm(c))).collect();
                levels.sort_by_key(|(l, _)| *l);
                ModelState::Dedicated(levels)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::gib;

    fn rec(vm: u64, pm: u32) -> PlacementRecord {
        PlacementRecord {
            vm: VmId(vm),
            spec: VmSpec::of(2, gib(4), OversubLevel::of(1)),
            pm: PmId(pm),
        }
    }

    #[test]
    fn normalization_is_order_independent() {
        let a = ModelState::Shared(ClusterState {
            opened: 2,
            placements: vec![rec(3, 1), rec(1, 0), rec(2, 0)],
            failed: vec![PmId(1)],
        });
        let b = ModelState::Shared(ClusterState {
            opened: 2,
            placements: vec![rec(1, 0), rec(2, 0), rec(3, 1)],
            failed: vec![PmId(1)],
        });
        assert_ne!(a, b);
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.num_vms(), 3);
        assert_eq!(a.opened_pms(), 2);
    }

    #[test]
    fn serde_roundtrips() {
        let state = ModelState::Dedicated(vec![
            (
                OversubLevel::of(1),
                ClusterState {
                    opened: 1,
                    placements: vec![rec(1, 0)],
                    failed: vec![],
                },
            ),
            (
                OversubLevel::of(3),
                ClusterState {
                    opened: 0,
                    placements: vec![],
                    failed: vec![],
                },
            ),
        ]);
        let json = serde_json::to_string(&state).unwrap();
        let back: ModelState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
        assert_eq!(back.opened_pms(), 1);
    }
}
