//! Occupancy tracking and packing-outcome accounting.

use serde::{Deserialize, Serialize};

use slackvm_model::AllocView;

/// A point-in-time snapshot of the cluster taken after processing an
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancySample {
    /// Simulation time (seconds).
    pub time_secs: u64,
    /// VMs alive.
    pub alive_vms: u32,
    /// PMs opened so far.
    pub opened_pms: u32,
    /// Fraction of the opened cluster's CPU left unallocated.
    pub unallocated_cpu: f64,
    /// Fraction of the opened cluster's memory left unallocated.
    pub unallocated_mem: f64,
}

impl OccupancySample {
    /// Builds a sample from cluster totals.
    pub fn from_totals(
        time_secs: u64,
        alive_vms: u32,
        opened_pms: u32,
        alloc: AllocView,
        capacity: AllocView,
    ) -> Self {
        let unallocated_cpu = if capacity.cpu.0 == 0 {
            0.0
        } else {
            1.0 - alloc.cpu.0 as f64 / capacity.cpu.0 as f64
        };
        let unallocated_mem = if capacity.mem_mib == 0 {
            0.0
        } else {
            1.0 - alloc.mem_mib as f64 / capacity.mem_mib as f64
        };
        OccupancySample {
            time_secs,
            alive_vms,
            opened_pms,
            unallocated_cpu,
            unallocated_mem,
        }
    }
}

/// The result of replaying one workload against one deployment model —
/// the raw material of the paper's Figures 3 and 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingOutcome {
    /// Deployment-model label ("dedicated/first-fit", "slackvm/progress").
    pub model: String,
    /// Total PMs the workload required (opened hosts) — Fig. 4's input.
    pub opened_pms: u32,
    /// Peak simultaneously-alive VM count.
    pub peak_alive_vms: u32,
    /// The snapshot at peak occupancy (maximum alive VMs, latest such
    /// instant) — Fig. 3's unallocated shares are read from here.
    pub at_peak: OccupancySample,
    /// Time-weighted mean unallocated CPU share over the run.
    pub mean_unallocated_cpu: f64,
    /// Time-weighted mean unallocated memory share over the run.
    pub mean_unallocated_mem: f64,
    /// Deployments that failed (0 on unbounded clusters).
    pub rejections: u32,
    /// Total deployments attempted.
    pub deployments: u32,
}

impl PackingOutcome {
    /// PM savings of `self` relative to a baseline outcome, in percent —
    /// Fig. 4's cell value.
    pub fn savings_vs(&self, baseline: &PackingOutcome) -> f64 {
        if baseline.opened_pms == 0 {
            return 0.0;
        }
        (baseline.opened_pms as f64 - self.opened_pms as f64) / baseline.opened_pms as f64 * 100.0
    }
}

/// Streaming collector of samples and time-weighted means.
#[derive(Debug, Default)]
pub struct OccupancyTracker {
    peak: Option<OccupancySample>,
    last: Option<OccupancySample>,
    weighted_cpu: f64,
    weighted_mem: f64,
    total_time: f64,
    peak_alive: u32,
}

impl OccupancyTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a snapshot; must be called with non-decreasing times.
    pub fn observe(&mut self, sample: OccupancySample) {
        if let Some(prev) = self.last {
            let dt = sample.time_secs.saturating_sub(prev.time_secs) as f64;
            self.weighted_cpu += prev.unallocated_cpu * dt;
            self.weighted_mem += prev.unallocated_mem * dt;
            self.total_time += dt;
        }
        self.last = Some(sample);
        if sample.alive_vms >= self.peak_alive {
            self.peak_alive = sample.alive_vms;
            self.peak = Some(sample);
        }
    }

    /// The snapshot at peak occupancy, if any sample was observed.
    pub fn peak(&self) -> Option<OccupancySample> {
        self.peak
    }

    /// Peak alive-VM count.
    pub fn peak_alive(&self) -> u32 {
        self.peak_alive
    }

    /// Time-weighted mean unallocated (cpu, mem) shares.
    pub fn means(&self) -> (f64, f64) {
        if self.total_time <= 0.0 {
            match self.last {
                Some(s) => (s.unallocated_cpu, s.unallocated_mem),
                None => (0.0, 0.0),
            }
        } else {
            (
                self.weighted_cpu / self.total_time,
                self.weighted_mem / self.total_time,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::Millicores;

    fn sample(t: u64, alive: u32, cpu_free: f64, mem_free: f64) -> OccupancySample {
        OccupancySample {
            time_secs: t,
            alive_vms: alive,
            opened_pms: 1,
            unallocated_cpu: cpu_free,
            unallocated_mem: mem_free,
        }
    }

    #[test]
    fn from_totals_computes_shares() {
        let alloc = AllocView::new(Millicores::from_cores(8), 1024);
        let cap = AllocView::new(Millicores::from_cores(32), 4096);
        let s = OccupancySample::from_totals(10, 3, 1, alloc, cap);
        assert!((s.unallocated_cpu - 0.75).abs() < 1e-12);
        assert!((s.unallocated_mem - 0.75).abs() < 1e-12);
        // Zero capacity (no PM opened yet) is defined as fully allocated.
        let z = OccupancySample::from_totals(0, 0, 0, AllocView::EMPTY, AllocView::EMPTY);
        assert_eq!(z.unallocated_cpu, 0.0);
    }

    #[test]
    fn tracker_finds_latest_peak() {
        let mut t = OccupancyTracker::new();
        t.observe(sample(0, 1, 0.9, 0.9));
        t.observe(sample(10, 5, 0.5, 0.4));
        t.observe(sample(20, 5, 0.3, 0.2)); // same alive count, later
        t.observe(sample(30, 2, 0.8, 0.8));
        let peak = t.peak().unwrap();
        assert_eq!(peak.time_secs, 20);
        assert_eq!(t.peak_alive(), 5);
    }

    #[test]
    fn tracker_time_weights_means() {
        let mut t = OccupancyTracker::new();
        t.observe(sample(0, 1, 1.0, 0.0));
        t.observe(sample(10, 1, 0.0, 1.0)); // first 10s at (1.0, 0.0)
        t.observe(sample(30, 1, 0.0, 1.0)); // next 20s at (0.0, 1.0)
        let (cpu, mem) = t.means();
        assert!((cpu - 10.0 / 30.0).abs() < 1e-12);
        assert!((mem - 20.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_means_fall_back() {
        let mut t = OccupancyTracker::new();
        t.observe(sample(5, 1, 0.4, 0.6));
        assert_eq!(t.means(), (0.4, 0.6));
        assert_eq!(OccupancyTracker::new().means(), (0.0, 0.0));
    }

    #[test]
    fn savings_formula() {
        let mk = |pms| PackingOutcome {
            model: "x".into(),
            opened_pms: pms,
            peak_alive_vms: 0,
            at_peak: sample(0, 0, 0.0, 0.0),
            mean_unallocated_cpu: 0.0,
            mean_unallocated_mem: 0.0,
            rejections: 0,
            deployments: 0,
        };
        let baseline = mk(83);
        let slackvm = mk(75);
        assert!((slackvm.savings_vs(&baseline) - 9.6385).abs() < 0.01);
        assert_eq!(mk(5).savings_vs(&mk(0)), 0.0);
    }
}
