//! The discrete-event core: a deterministic time-ordered queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use slackvm_model::VmId;
use slackvm_workload::VmInstance;

/// An event the engine processes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A VM requests placement.
    Arrival(Box<VmInstance>),
    /// A placed VM terminates and frees its resources.
    Departure(VmId),
    /// A placed VM requests a vertical resize.
    Resize {
        /// Which VM.
        id: VmId,
        /// New vCPU count.
        vcpus: u32,
        /// New memory (MiB).
        mem_mib: u64,
    },
}

/// Priority key: earlier time first; at equal times, insertion order
/// (FIFO). The workload generator emits same-instant departures before
/// arrivals, and FIFO preserves that.
type Key = (u64, u64);

/// A deterministic event queue.
///
/// `BinaryHeap` alone is not deterministic for equal keys, so each push
/// carries a monotonically increasing sequence number.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Key, EventSlot)>>,
    next_seq: u64,
}

/// Wrapper giving `SimEvent` the ordering the heap needs without
/// requiring `Ord` on workload types: ordering is fully decided by the
/// key, so the slot comparison is never consulted meaningfully.
#[derive(Debug)]
struct EventSlot(SimEvent);

impl PartialEq for EventSlot {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EventSlot {}
impl PartialOrd for EventSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventSlot {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time_secs`.
    pub fn push(&mut self, time_secs: u64, event: SimEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse(((time_secs, seq), EventSlot(event))));
    }

    /// Pops the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(u64, SimEvent)> {
        self.heap
            .pop()
            .map(|Reverse(((time, _), slot))| (time, slot.0))
    }

    /// Next event time without popping.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(((time, _), _))| *time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, SimEvent::Departure(VmId(3)));
        q.push(10, SimEvent::Departure(VmId(1)));
        q.push(20, SimEvent::Departure(VmId(2)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.push(5, SimEvent::Departure(VmId(i)));
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                SimEvent::Departure(id) => id.0,
                _ => unreachable!(),
            })
            .collect();
        let expected: Vec<u64> = (0..50).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, SimEvent::Departure(VmId(0)));
        q.push(3, SimEvent::Departure(VmId(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }
}
